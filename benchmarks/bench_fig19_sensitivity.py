"""Fig. 19 — sensitivity to ``T_RTT_high`` and ``∆_RTT``.

Paper shape: FCT is stable around the suggested settings; the two
workloads trend *oppositely* as the thresholds grow — conservative
settings (high thresholds, fewer reroutes) suit the bursty web-search
workload, aggressive settings suit the steady data-mining workload.
"""

from _common import emit, mean_over_seeds
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_cells
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology

LOAD = 0.7
N_FLOWS = 150
SIZE_SCALE = 0.2
TIME_SCALE = 0.2
SEEDS = (1,)

#: Multipliers of the one-hop delay used to derive each threshold.
T_HIGH_HOPS = (0.9, 1.2, 1.8)
DELTA_HOPS = (0.5, 1.0, 2.0)


def point_config(workload, overrides, seed) -> ExperimentConfig:
    return ExperimentConfig(
        topology=bench_topology(asymmetric=True),
        lb="hermes",
        workload=workload,
        load=LOAD,
        n_flows=N_FLOWS,
        seed=seed,
        size_scale=SIZE_SCALE,
        time_scale=TIME_SCALE,
        hermes_overrides=overrides,
    )


def reproduce():
    topo = bench_topology(asymmetric=True)
    hop = topo.one_hop_delay_ns()
    base = topo.base_rtt_ns()
    # Flatten every sweep point into one batch so all cells fan out over
    # the worker pool together, then unflatten in the same order.
    points = []
    for workload in ("web-search", "data-mining"):
        for hops in T_HIGH_HOPS:
            points.append(
                ("t_rtt_high", workload, hops,
                 {"t_rtt_high_ns": base + int(hops * hop)})
            )
        for hops in DELTA_HOPS:
            points.append(
                ("delta_rtt", workload, hops, {"delta_rtt_ns": int(hops * hop)})
            )
    configs = [
        point_config(workload, overrides, seed)
        for (_, workload, _, overrides) in points
        for seed in SEEDS
    ]
    runs = iter(run_cells(configs))
    sweeps = {"t_rtt_high": {}, "delta_rtt": {}}
    for param, workload, hops, _ in points:
        by_workload = sweeps[param].setdefault(workload, {})
        by_workload[hops] = [next(runs) for _ in SEEDS]
    return sweeps


def test_fig19_sensitivity(once):
    sweeps = once(reproduce)
    body = ""
    for param, hops_list in (
        ("t_rtt_high", T_HIGH_HOPS),
        ("delta_rtt", DELTA_HOPS),
    ):
        headers = ["workload"] + [
            f"{param}={h}xhop" for h in hops_list
        ]
        rows = []
        for workload, by_hops in sweeps[param].items():
            rows.append(
                [workload]
                + [
                    mean_over_seeds(by_hops[h], lambda r: r.mean_fct_ms)
                    for h in hops_list
                ]
            )
        body += format_table(headers, rows) + "\n\n"
    body += (
        "paper: stable near the suggested values; conservative settings"
        " favour bursty web-search, aggressive settings favour steady"
        " data-mining"
    )
    emit("fig19_sensitivity", "Fig. 19: parameter sensitivity", body)

    # Stability: across the sweep, FCT varies by less than 2x per workload.
    for param in sweeps:
        for workload, by_hops in sweeps[param].items():
            values = [
                mean_over_seeds(runs, lambda r: r.mean_fct_ms)
                for runs in by_hops.values()
            ]
            assert max(values) < 2.0 * min(values)
