"""Fig. 3 — congestion mismatch persists with capacity-weighted spraying.

The paper's Example 3: a heterogeneous fabric with a 1 Gbps and a
10 Gbps path.  Presto sprays flowcells 1:10 to match capacities, hoping
to fill both paths (11 Gbps); but a single congestion window cannot
track two very different paths — marks from the 1 Gbps path throttle the
10 Gbps path and vice versa — so the flow achieves roughly half the
aggregate capacity.

Reported: flow A goodput under capacity-weighted Presto vs the 11 Gbps
ideal and vs Hermes (which pins the flow to the fast path: 10 Gbps).
"""

from _common import emit
from repro.experiments.report import format_table
from repro.lb.factory import install_lb
from repro.net.fabric import Fabric
from repro.net.topology import TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS

RUN_NS = 40_000_000


def build_fabric():
    config = TopologyConfig(
        n_leaves=2,
        n_spines=2,
        hosts_per_leaf=2,
        host_link_gbps=20.0,  # hosts can source more than either path
        spine_link_gbps=10.0,
        link_overrides={(0, 0): 1.0, (1, 0): 1.0},  # path 0 is 1 Gbps
        prop_delay_ns=1_000,
        ecn_threshold_bytes=97_500,
    )
    return Fabric(Simulator(), config, RngStreams(1))


def run_scheme(lb: str):
    fabric = build_fabric()
    if lb == "presto":
        install_lb(fabric, "presto", flowcell_bytes=64 * 1024,
                   weight_by_capacity=True)
    else:
        install_lb(fabric, lb)
    mask = 500_000 if lb == "presto" else None
    flow = DctcpFlow(fabric, 0, 2, 100_000 * MSS, reorder_mask_ns=mask,
                     max_cwnd=2_000.0)
    fabric.register_flow(flow)
    flow.start()
    fabric.sim.run(until=RUN_NS)
    return flow.bytes_sent * 8 / RUN_NS


def reproduce():
    return {lb: run_scheme(lb) for lb in ("presto", "hermes")}


def test_fig3_weighted_presto(once):
    results = once(reproduce)
    rows = [[lb, gbps] for lb, gbps in results.items()]
    body = format_table(["scheme", "flow A goodput (Gbps)"], rows)
    body += (
        "\nideal aggregate = 11 Gbps; paper: weighted Presto reaches only"
        " ~5 Gbps (congestion mismatch); single-path ~10 Gbps"
    )
    emit("fig3_weighted_presto", "Fig. 3: weighted spraying mismatch", body)

    presto = results["presto"]
    hermes = results["hermes"]
    # Far below the 11 Gbps aggregate the weights were meant to unlock...
    assert presto < 8.0
    # ...and below what simply pinning to the fast path achieves.
    assert hermes > presto
    assert hermes > 7.0
