"""Fig. 9 — testbed experiments, symmetric topology: overall average FCT.

Paper setup: 12 servers, 2 leaves, 2 spines, 1 Gbps links (3:2 leaf
oversubscription), DCTCP, web-search and data-mining workloads.

Paper shape: Hermes beats ECMP by 10-38% (growing with load), beats
CLOVE-ECN by 9-15% at 30-70% load, and tracks Presto* closely.

Reproduction: the same testbed fabric, unscaled flow sizes and timers
(1 Gbps keeps packet counts affordable), fewer flows than the paper's
multi-minute runs.
"""

from _common import emit, fct_table, run_grid
from repro.experiments.scenarios import testbed_topology

LOADS = (0.3, 0.6, 0.9)
SCHEMES = ("ecmp", "clove-ecn", "presto", "hermes")
N_FLOWS = 100
SIZE_SCALE = 0.3
TIME_SCALE = 0.3


def reproduce():
    grids = {}
    for workload in ("web-search", "data-mining"):
        grids[workload] = run_grid(
            testbed_topology(),
            SCHEMES,
            LOADS,
            workload,
            n_flows=N_FLOWS,
            size_scale=SIZE_SCALE,
            time_scale=TIME_SCALE,
            seeds=(1,),
        )
    return grids


def test_fig9_testbed_symmetric(once):
    grids = once(reproduce)
    body = ""
    for workload, grid in grids.items():
        body += f"[{workload}]\n" + fct_table(grid, LOADS) + "\n\n"
    body += (
        "paper: Hermes 10-38% better than ECMP (growing with load), "
        "9-15% better than CLOVE-ECN, close to Presto*"
    )
    emit("fig9_testbed_symmetric", "Fig. 9: testbed symmetric avg FCT", body)

    for workload, grid in grids.items():
        def mean(lb, load):
            runs = grid[lb][load]
            return sum(r.mean_fct_ms for r in runs) / len(runs)

        # Hermes at least matches ECMP at mid/high load (the paper's
        # 10-38% margin needs multi-minute steady-state runs; see
        # EXPERIMENTS.md for why short bursts compress the gap).
        assert mean("hermes", 0.6) < 1.05 * mean("ecmp", 0.6)
        assert mean("hermes", 0.9) < 1.05 * mean("ecmp", 0.9)
        # And is in Presto*'s ballpark at moderate load.
        assert mean("hermes", 0.6) < 1.5 * mean("presto", 0.6)
