"""Fig. 4 — the hidden-terminal scenario: CONGA flips on stale state.

The paper's Example 4: flow A (leaf0 -> leaf2) pauses 3 ms every 10 ms,
creating flowlet gaps; flow B (leaf1 -> leaf2) sends steadily.  Whatever
path A picks, it gets no feedback about the *other* path, whose table
entry ages out (10 ms) and reads "idle" — so A keeps flipping between
the spines, and each flip dumps A's full window onto the path B shares,
spiking the queue.

Reported: number of path flips by flow A and the peak/quiet queue at
spine-to-leaf2 ports, CONGA vs Hermes (whose probes keep both path
states fresh, and whose cautious margins suppress blind flips).
"""

from _common import emit
from repro.experiments.report import format_table
from repro.lb.factory import install_lb
from repro.telemetry.series import QueueSampler
from repro.net.fabric import Fabric
from repro.net.topology import TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS

RUN_NS = 100_000_000  # 100 ms: ten pause cycles
PAUSE_EVERY_NS = 10_000_000
PAUSE_FOR_NS = 3_000_000


class PausingFlow(DctcpFlow):
    """DCTCP flow that pauses 3 ms every 10 ms (creates flowlet gaps)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._paused = False
        self.path_history = []

    def start(self):
        super().start()
        self.sim.schedule(PAUSE_EVERY_NS - PAUSE_FOR_NS, self._pause)

    def _pause(self):
        self._paused = True
        self.sim.schedule(PAUSE_FOR_NS, self._resume)

    def _resume(self):
        self._paused = False
        self._maybe_send()
        self.sim.schedule(PAUSE_EVERY_NS - PAUSE_FOR_NS, self._pause)

    def _maybe_send(self):
        if self._paused:
            return
        super()._maybe_send()

    def _transmit(self, seq, retx):
        super()._transmit(seq, retx)
        if not self.path_history or self.path_history[-1] != self.current_path:
            self.path_history.append(self.current_path)


def build_fabric():
    config = TopologyConfig(
        n_leaves=3,
        n_spines=2,
        hosts_per_leaf=2,
        host_link_gbps=10.0,
        spine_link_gbps=10.0,
        prop_delay_ns=1_000,
        ecn_threshold_bytes=97_500,
    )
    return Fabric(Simulator(), config, RngStreams(2))


def run_scheme(lb: str):
    fabric = build_fabric()
    install_lb(fabric, lb)
    ports = [fabric.topology.spine_down[s][2] for s in (0, 1)]
    sampler = QueueSampler(fabric.sim, ports, period_ns=50_000)
    sampler.start()
    flow_a = PausingFlow(fabric, 0, 4, 10**6 * MSS)
    flow_b = DctcpFlow(fabric, 2, 5, 10**6 * MSS)
    for flow in (flow_b, flow_a):
        fabric.register_flow(flow)
        flow.start()
    fabric.sim.run(until=RUN_NS)
    flips = max(0, len(flow_a.path_history) - 1)
    peak_kb = max(sampler.max_backlog(p.name) for p in ports) / 1_000
    return flips, peak_kb


def reproduce():
    return {lb: run_scheme(lb) for lb in ("conga", "hermes")}


def test_fig4_conga_flipflop(once):
    results = once(reproduce)
    rows = [[lb, flips, peak] for lb, (flips, peak) in results.items()]
    body = format_table(
        ["scheme", "flow A path flips", "peak spine->leaf2 queue (KB)"], rows
    )
    body += (
        "\npaper: CONGA's flow A flips at nearly every flowlet (stale"
        " 10 ms-aged state); each flip spikes the queue at the shared port"
    )
    emit("fig4_conga_flipflop", "Fig. 4: hidden terminal flip-flop", body)

    conga_flips, _conga_peak = results["conga"]
    hermes_flips, _hermes_peak = results["hermes"]
    assert conga_flips >= 5       # flips on stale information
    assert hermes_flips <= conga_flips / 2
