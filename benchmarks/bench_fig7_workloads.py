"""Fig. 7 — the traffic distributions used for evaluation.

Prints both empirical CDFs (size vs cumulative probability) and the
headline statistics the paper quotes: both distributions are
heavy-tailed; data-mining is the more skewed one, with 95% of bytes in
the ~3.6% of flows larger than 35 MB.
"""

import random

from _common import emit
from repro.experiments.report import format_table
from repro.workload.distributions import DATA_MINING, WEB_SEARCH

N_SAMPLES = 100_000


def reproduce():
    stats = {}
    rng = random.Random(7)
    for dist in (WEB_SEARCH, DATA_MINING):
        samples = sorted(dist.sample(rng) for _ in range(N_SAMPLES))
        total = sum(samples)
        big = [s for s in samples if s > 35_000_000]
        stats[dist.name] = {
            "mean_mb": dist.mean() / 1e6,
            "median_kb": samples[len(samples) // 2] / 1e3,
            "frac_flows_over_35mb": len(big) / len(samples),
            "frac_bytes_over_35mb": sum(big) / total,
            "frac_small_flows": sum(1 for s in samples if s < 100_000)
            / len(samples),
        }
    return stats


def test_fig7_workloads(once):
    stats = once(reproduce)
    rows = []
    for name, s in stats.items():
        rows.append([
            name, s["mean_mb"], s["median_kb"], s["frac_flows_over_35mb"],
            s["frac_bytes_over_35mb"], s["frac_small_flows"],
        ])
    body = format_table(
        ["workload", "mean (MB)", "median (KB)", "flows >35MB",
         "bytes from >35MB", "flows <100KB"],
        rows,
    )
    body += "\n\nCDF knots:\n"
    for dist in (WEB_SEARCH, DATA_MINING):
        knots = "  ".join(f"({int(s)}B,{c:.2f})" for s, c in dist.points())
        body += f"{dist.name}: {knots}\n"
    body += (
        "paper: data-mining has 95% of bytes in the 3.6% of flows >35MB;"
        " web-search is less skewed but more bursty"
    )
    emit("fig7_workloads", "Fig. 7: workload distributions", body)

    dm = stats["data-mining"]
    ws = stats["web-search"]
    assert dm["frac_bytes_over_35mb"] > 0.75
    assert dm["frac_flows_over_35mb"] < 0.06
    assert dm["median_kb"] < 10          # mostly tiny flows
    assert ws["mean_mb"] > 1.0           # heavy tailed too
    assert dm["frac_small_flows"] > ws["frac_small_flows"]
