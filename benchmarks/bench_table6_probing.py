"""Table 6 — probing schemes: visibility versus overhead.

Paper values (100x100 leaf-spine, 64 B probes every 500 us):

    scheme      piggyback  brute force  power-of-two  Hermes
    visibility  < 0.01     100          > 3           > 3
    overhead    n/a        100x         3x            3%

Reproduced two ways: (a) the analytical model with the conventions
derived in EXPERIMENTS.md; (b) a measured data point — a live prober's
probe rate on a small fabric, confirming the per-rack amortization.
"""

from _common import emit
from repro.experiments.report import format_table
from repro.lb.factory import install_lb
from repro.core.probing import probe_overhead_model
from repro.net.packet import PROBE_BYTES
from tests.conftest import make_fabric


def analytic():
    return probe_overhead_model(
        n_leaves=100, n_spines=100, hosts_per_leaf=100,
        link_gbps=10.0, probe_bytes=PROBE_BYTES, probe_interval_us=500.0,
        piggyback_visibility=0.009,
    )


def measured_probe_overhead():
    """Run a live prober for 10 ms and measure its send rate."""
    fabric = make_fabric(n_leaves=4, n_spines=4, hosts_per_leaf=4)
    shared = install_lb(fabric, "hermes")
    horizon_ns = 10_000_000
    fabric.sim.run(until=horizon_ns)
    prober = shared["probers"][0]
    bits = prober.probes_sent * PROBE_BYTES * 8
    rate_bps = bits / (horizon_ns / 1e9)
    return rate_bps / (fabric.config.host_link_gbps * 1e9)


def test_table6_probing(once):
    model = once(analytic)
    live = measured_probe_overhead()
    headers = ["scheme", "visibility", "overhead (x capacity)"]
    rows = [
        [name, vals["visibility"], vals["overhead"]]
        for name, vals in model.items()
    ]
    body = format_table(headers, rows)
    body += (
        f"\npaper:      piggyback <0.01/-, brute 100/100x, po2c >3/3x, "
        f"hermes >3/3%"
        f"\nmeasured:   live 4x4 prober agent overhead = {live:.5f}x capacity"
    )
    emit("table6_probing", "Table 6: probing visibility vs overhead", body)

    assert model["brute-force"]["overhead"] > 50
    assert 1 < model["power-of-two-choices"]["overhead"] < 10
    assert 0.01 < model["hermes"]["overhead"] < 0.1
    assert model["piggyback"]["overhead"] == 0.0
    # The live prober's overhead is tiny (well under 1% of the edge link).
    assert live < 0.01
