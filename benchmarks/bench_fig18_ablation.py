"""Fig. 18 — Hermes deep dive: probing/rerouting ablation and
probe-interval sweep (data-mining workload, asymmetric fabric).

Paper shape (18a): active probing contributes ~20% and timely rerouting
~10% to the overall average FCT; (18b): a 500 us probe interval buys
11-15% over no probing, and shortening it to 100 us adds only another
1-3%.
"""

from _common import emit, mean_over_seeds
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_cells
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology
from repro.sim.engine import microseconds

LOAD = 0.7
N_FLOWS = 150
SIZE_SCALE = 0.2
TIME_SCALE = 0.2
SEEDS = (1,)

VARIANTS = {
    "hermes (full)": {},
    "without probing": {"probing_enabled": False},
    "without rerouting": {"timely_rerouting": False},
    "without both": {"probing_enabled": False, "timely_rerouting": False},
}

INTERVALS_US = (100, 500)


def variant_config(overrides, seed) -> ExperimentConfig:
    return ExperimentConfig(
        topology=bench_topology(asymmetric=True),
        lb="hermes",
        workload="data-mining",
        load=LOAD,
        n_flows=N_FLOWS,
        seed=seed,
        size_scale=SIZE_SCALE,
        time_scale=TIME_SCALE,
        hermes_overrides=overrides,
    )


def reproduce():
    names = list(VARIANTS) + [f"{us}us probes" for us in INTERVALS_US]
    overrides = [dict(ov) for ov in VARIANTS.values()] + [
        {"probe_interval_ns": microseconds(us)} for us in INTERVALS_US
    ]
    configs = [
        variant_config(ov, seed) for ov in overrides for seed in SEEDS
    ]
    runs = iter(run_cells(configs))
    by_name = {name: [next(runs) for _ in SEEDS] for name in names}
    ablation = {name: by_name[name] for name in VARIANTS}
    intervals = {
        f"{us}us probes": by_name[f"{us}us probes"] for us in INTERVALS_US
    }
    return ablation, intervals


def test_fig18_ablation(once):
    ablation, intervals = once(reproduce)
    rows = [
        [
            name,
            mean_over_seeds(runs, lambda r: r.mean_fct_ms),
            mean_over_seeds(runs, lambda r: r.stats.large.mean_ms()),
            mean_over_seeds(runs, lambda r: float(r.total_reroutes)),
        ]
        for name, runs in {**ablation, **intervals}.items()
    ]
    body = format_table(
        ["variant", "avg FCT (ms)", "large avg (ms)", "reroutes"], rows
    )
    body += (
        "\npaper: probing ~20% and rerouting ~10% of the overall FCT;"
        " 500us probes give 11-15% over none, 100us adds 1-3% more"
    )
    emit("fig18_ablation", "Fig. 18: Hermes ablation", body)

    def mean(name, source=ablation):
        return mean_over_seeds(source[name], lambda r: r.mean_fct_ms)

    full = mean("hermes (full)")
    # Full Hermes is never notably worse than any ablated variant.
    for name in VARIANTS:
        assert full <= mean(name) * 1.1
