"""Fig. 15 — CONGA under different flowlet timeout values.

Paper setup: asymmetric fabric, web-search at 80% load, packet
reordering masked, flowlet timeout in {50, 150, 500} us.

Paper shape: 150 us beats 500 us by ~6% (more rerouting opportunities)
but 50 us is ~30% *worse* than 150 us — with such small gaps CONGA
changes paths vigorously and congestion mismatch bites even though
reordering is masked.
"""

from _common import emit, mean_over_seeds
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_cells
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology
from repro.sim.engine import microseconds

TIMEOUTS_US = (50, 150, 500)
LOAD = 0.8
N_FLOWS = 200
SIZE_SCALE = 0.2
TIME_SCALE = 0.2
SEEDS = (1,)


def timeout_config(timeout_us: float, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        topology=bench_topology(asymmetric=True),
        lb="conga",
        lb_params={"flowlet_timeout_ns": microseconds(timeout_us)},
        workload="web-search",
        load=LOAD,
        n_flows=N_FLOWS,
        seed=seed,
        size_scale=SIZE_SCALE,
        time_scale=TIME_SCALE,
        reorder_mask_us=100.0,  # mask reordering, as the paper does
    )


def reproduce():
    configs = [
        timeout_config(us, seed) for us in TIMEOUTS_US for seed in SEEDS
    ]
    runs = iter(run_cells(configs))
    return {us: [next(runs) for _ in SEEDS] for us in TIMEOUTS_US}


def test_fig15_conga_timeout(once):
    results = once(reproduce)
    rows = [
        [
            f"{us}us",
            mean_over_seeds(runs, lambda r: r.mean_fct_ms),
            mean_over_seeds(runs, lambda r: float(r.total_reroutes)),
        ]
        for us, runs in results.items()
    ]
    body = format_table(
        ["flowlet timeout", "avg FCT (ms)", "flowlet reroutes"], rows
    )
    body += (
        "\npaper: 150us ~6% better than 500us; 50us ~30% worse than 150us"
        " (congestion mismatch from vigorous path changing)"
    )
    emit("fig15_conga_timeout", "Fig. 15: CONGA flowlet-timeout sweep", body)

    fct = {
        us: mean_over_seeds(runs, lambda r: r.mean_fct_ms)
        for us, runs in results.items()
    }
    reroutes = {
        us: mean_over_seeds(runs, lambda r: float(r.total_reroutes))
        for us, runs in results.items()
    }
    # Smaller timeout => more vigorous path changing...
    assert reroutes[50] > reroutes[150] > reroutes[500]
    # ...and no benefit (usually a penalty) from the 50us vigour.
    assert fct[50] > 0.95 * fct[150]
