"""Fig. 13 — asymmetric fabric, web-search workload, normalized FCT.

Paper setup: the Fig. 12 fabric with 20% of randomly chosen leaf-spine
links reduced from 10 to 2 Gbps; FCT normalized to Hermes.

Paper shape: with web-search (bursty, many flowlet gaps) CONGA leads by
~10%; Hermes, CLOVE-ECN and LetFlow are comparable overall — but small
flows' average and 99th percentile blow up 1.5-3.3x for flowlet-based
schemes at high load (excessive rerouting), where Hermes' cautious
rerouting protects them.
"""

from _common import emit, mean_over_seeds, normalized_table, run_grid
from repro.experiments.scenarios import bench_topology

LOADS = (0.5, 0.8)
SCHEMES = ("conga", "letflow", "clove-ecn", "presto", "hermes")
N_FLOWS = 200
SIZE_SCALE = 0.2
TIME_SCALE = 0.2


def reproduce():
    return run_grid(
        bench_topology(asymmetric=True),
        SCHEMES,
        LOADS,
        "web-search",
        n_flows=N_FLOWS,
        size_scale=SIZE_SCALE,
        time_scale=TIME_SCALE,
        seeds=(1,),
        presto_weighted=True,
    )


def test_fig13_asym_websearch(once):
    grid = once(reproduce)
    body = "[overall avg]\n" + normalized_table(grid, LOADS) + "\n\n"
    body += "[small avg]\n" + normalized_table(
        grid, LOADS, metric=lambda r: r.stats.small.mean_ms(),
        metric_name="small",
    ) + "\n\n"
    body += "[small p99]\n" + normalized_table(
        grid, LOADS, metric=lambda r: r.stats.small.p99_ms(),
        metric_name="small p99",
    ) + "\n\n"
    body += (
        "paper: CONGA ~10% ahead overall; Hermes/CLOVE/LetFlow comparable;"
        " flowlet schemes' small-flow FCT degrades 1.5-3.3x at 90% load"
    )
    emit("fig13_asym_websearch", "Fig. 13: asymmetric web-search", body)

    def mean(lb, load):
        return mean_over_seeds(grid[lb][load], lambda r: r.mean_fct_ms)

    # Hermes in the same league as the flowlet schemes overall.
    assert mean("hermes", 0.5) < 1.4 * min(
        mean("conga", 0.5), mean("letflow", 0.5), mean("clove-ecn", 0.5)
    )
    # Weighted Presto* does not beat Hermes under asymmetry.
    assert mean("presto", 0.8) > 0.9 * mean("hermes", 0.8)
