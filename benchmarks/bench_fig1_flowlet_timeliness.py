"""Fig. 1 — flowlet switching cannot timely react to congestion.

The paper's example: earlier traffic leaves the load balancer with
several large DCTCP flows sharing one path while a parallel path sits
idle.  DCTCP adjusts its window smoothly, so no inactivity gaps form,
flowlet schemes cannot split the collision, and appropriate rerouting
would almost halve the large flows' FCT.

Reproduction notes (see EXPERIMENTS.md):

* 12 large flows are pinned onto path 1 with staggered starts; path 0 is
  idle.  A heavy collision is needed because with DCTCP the standing
  queue sits at the marking threshold — exactly one hop delay — so only
  aggregate-window pressure pushes RTT and ECN fraction into Hermes'
  *congested* region.
* ``hermes`` runs with the paper's Fig. 19-endorsed aggressive
  ``T_RTT_high`` (base + 0.9 x hop delay): the paper itself reports that
  aggressive settings win for steady, data-mining-like traffic; the
  default conservative setting (base + 1.5 x hop) deliberately ignores
  single-hop congestion and is shown as ``hermes-passive``.
* our New Reno's slow-start transients give CONGA/LetFlow a few
  accidental flowlet gaps, so they escape partially rather than not at
  all — the paper's ns-3 DCTCP is less bursty still.
"""

from _common import emit
from repro.core.parameters import HermesParams
from repro.experiments.report import format_table
from repro.lb.factory import install_lb
from repro.sim.engine import microseconds
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS
from tests.conftest import make_fabric

N_FLOWS = 12
SIZE = 3_000 * MSS  # ~4.4 MB each


def run_scheme(lb: str, aggressive: bool = False):
    fabric = make_fabric(seed=3, hosts_per_leaf=N_FLOWS)
    kwargs = {}
    if lb == "hermes":
        if aggressive:
            cfg = fabric.config
            kwargs["params"] = HermesParams(
                t_rtt_high_ns=cfg.base_rtt_ns()
                + int(0.9 * cfg.one_hop_delay_ns())
            )
    else:
        kwargs["flowlet_timeout_ns"] = microseconds(150)
    install_lb(fabric, lb, **kwargs)
    flows = []
    for i in range(N_FLOWS):
        flow = DctcpFlow(fabric, i, N_FLOWS + i, SIZE)
        flow.current_path = 1  # the figure's starting state
        agent = fabric.hosts[i].lb
        if hasattr(agent, "_paths"):
            agent._paths[flow.flow_id] = 1
        fabric.register_flow(flow)
        flows.append(flow)
        fabric.sim.schedule_at(i * 500_000, flow.start)
    fabric.sim.run(until=200_000_000_000)
    fcts = [f.fct_ns / 1e6 for f in flows if f.finished]
    reroutes = sum(h.lb.reroutes for h in fabric.hosts if h.lb)
    return sum(fcts) / len(fcts), reroutes, len(fcts) == N_FLOWS


def reproduce():
    return {
        "conga": run_scheme("conga"),
        "letflow": run_scheme("letflow"),
        "hermes-passive": run_scheme("hermes", aggressive=False),
        "hermes": run_scheme("hermes", aggressive=True),
    }


def test_fig1_flowlet_timeliness(once):
    results = once(reproduce)
    rows = [[lb, fct, reroutes] for lb, (fct, reroutes, _) in results.items()]
    body = format_table(["scheme", "avg FCT (ms)", "reroutes"], rows)
    body += (
        "\npaper: without rerouting the collision persists (~2x FCT); "
        "timely rerouting nearly halves it"
    )
    emit("fig1_flowlet_timeliness", "Fig. 1: flowlet passiveness", body)

    stuck_fct = results["hermes-passive"][0]
    hermes_fct, hermes_rer, hermes_done = results["hermes"]
    assert all(done for _, _, done in results.values())
    assert hermes_rer >= 1          # acts without waiting for flowlet gaps
    assert hermes_fct < 0.7 * stuck_fct   # close to halving the stuck FCT
    best_flowlet = min(results["conga"][0], results["letflow"][0])
    assert hermes_fct < 1.3 * best_flowlet
