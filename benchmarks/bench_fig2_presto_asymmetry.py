"""Fig. 2 — congestion mismatch: Presto under an asymmetric topology.

The paper's Example 2: a 3x2 leaf-spine with the leaf0->spine1 link
broken.  Flow B is a 9 Gbps rate-limited UDP flow from leaf 0 to leaf 2
(forced through spine 0), flow A is a DCTCP flow from leaf 1 to leaf 2
sprayed by Presto equally over both spines.  The ECN feedback from the
congested bottom path throttles the whole flow, so A achieves only
~1 Gbps instead of the ~11 Gbps the two paths could jointly offer, and
the spine0->leaf2 queue oscillates.

Reported: flow A goodput and the queue standard deviation at
spine0->leaf2, for Presto vs Hermes (which keeps A on the clean path).
"""

from _common import emit
from repro.experiments.report import format_table
from repro.lb.factory import install_lb
from repro.telemetry.series import QueueSampler
from repro.net.fabric import Fabric
from repro.net.topology import TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS
from repro.transport.udp import UdpFlow

RUN_NS = 30_000_000  # 30 ms
A_SIZE = 50_000 * MSS  # effectively unbounded within the run


def build_fabric(seed=1):
    config = TopologyConfig(
        n_leaves=3,
        n_spines=2,
        hosts_per_leaf=2,
        host_link_gbps=10.0,
        spine_link_gbps=10.0,
        link_overrides={(0, 1): 0.0},  # broken leaf0 - spine1 link
        prop_delay_ns=1_000,
        ecn_threshold_bytes=97_500,
    )
    return Fabric(Simulator(), config, RngStreams(seed))


def run_scheme(lb: str):
    fabric = build_fabric()
    if lb == "presto":
        install_lb(fabric, "presto", flowcell_bytes=64 * 1024)
    else:
        install_lb(fabric, lb)
    hot_port = fabric.topology.spine_down[0][2]  # spine0 -> leaf2
    sampler = QueueSampler(fabric.sim, [hot_port], period_ns=100_000)
    sampler.start()

    flow_b = UdpFlow(fabric, 0, 4, rate_bps=9e9, fixed_path=0)
    mask = 200_000 if lb == "presto" else None
    flow_a = DctcpFlow(fabric, 2, 5, A_SIZE, reorder_mask_ns=mask)
    for flow in (flow_b, flow_a):
        fabric.register_flow(flow)
        flow.start()
    fabric.sim.run(until=RUN_NS)
    goodput_gbps = flow_a.bytes_sent * 8 / RUN_NS  # ~delivered within run
    return goodput_gbps, sampler.stddev_backlog(hot_port.name) / 1_000


def reproduce():
    return {lb: run_scheme(lb) for lb in ("presto", "hermes")}


def test_fig2_presto_asymmetry(once):
    results = once(reproduce)
    rows = [
        [lb, goodput, stddev] for lb, (goodput, stddev) in results.items()
    ]
    body = format_table(
        ["scheme", "flow A goodput (Gbps)", "spine0->leaf2 queue stddev (KB)"],
        rows,
    )
    body += (
        "\npaper: Presto's flow A collapses to ~1 Gbps with large queue"
        " oscillations; a path-aware scheme keeps A at ~10 Gbps"
    )
    emit("fig2_presto_asymmetry", "Fig. 2: congestion mismatch (Presto)", body)

    presto_goodput, presto_stddev = results["presto"]
    hermes_goodput, hermes_stddev = results["hermes"]
    # Congestion mismatch collapses Presto's throughput...
    assert presto_goodput < 0.5 * hermes_goodput
    # ...while the clean upper path could serve A at near line rate.
    assert hermes_goodput > 6.0
