"""Fig. 11 — testbed asymmetric case, web-search FCT breakdown.

The paper splits the asymmetric-testbed web-search results into small
(<100 KB) average, small 99th-percentile, and large (>10 MB) average
(normalized to Hermes).  Hermes leads across groups at 30-65% load.
"""

from _common import emit, mean_over_seeds, run_grid
from repro.experiments.report import format_table
from repro.experiments.scenarios import testbed_topology

LOADS = (0.3, 0.5)
SCHEMES = ("ecmp", "clove-ecn", "presto", "hermes")
N_FLOWS = 100
SIZE_SCALE = 0.3
TIME_SCALE = 0.3


def reproduce():
    return run_grid(
        testbed_topology(asymmetric=True),
        SCHEMES,
        LOADS,
        "web-search",
        n_flows=N_FLOWS,
        size_scale=SIZE_SCALE,
        time_scale=TIME_SCALE,
        seeds=(1,),
        presto_weighted=True,
    )


METRICS = [
    ("small avg (ms)", lambda r: r.stats.small.mean_ms()),
    ("small p99 (ms)", lambda r: r.stats.small.p99_ms()),
    ("large avg (ms)", lambda r: r.stats.large.mean_ms()),
]


def test_fig11_testbed_breakdown(once):
    grid = once(reproduce)
    body = ""
    for name, metric in METRICS:
        headers = ["scheme"] + [f"{name} @{int(l*100)}%" for l in LOADS]
        rows = [
            [lb] + [mean_over_seeds(grid[lb][load], metric) for load in LOADS]
            for lb in SCHEMES
        ]
        body += format_table(headers, rows) + "\n\n"
    body += "paper: Hermes leads every group at 30-65% load"
    emit(
        "fig11_testbed_breakdown",
        "Fig. 11: testbed asymmetric web-search breakdown",
        body,
    )

    def mean(lb, load, metric):
        return mean_over_seeds(grid[lb][load], metric)

    small_avg = METRICS[0][1]
    # Hermes' small flows do not collapse under the asymmetry.
    assert mean("hermes", 0.5, small_avg) < 1.5 * mean("ecmp", 0.5, small_avg)
