"""Fig. 12 — large-simulation baseline: symmetric fabric, overall avg FCT.

Paper setup: 8x8 leaf-spine, 128 hosts, 10 Gbps, 2:1 oversubscription,
DCTCP, loads 0.1-0.9.

Paper shape: for web-search Hermes beats ECMP by up to 55% and stays
within 17% of CONGA; for data-mining Hermes beats ECMP by ~29% at high
load and slightly *outperforms* CONGA (up to 4%) thanks to timely
rerouting of colliding large flows.

Reproduction: shape-preserving 4x4/32-host fabric (same 2:1
oversubscription and speeds), flow sizes scaled 0.2x with timers scaled
identically.
"""

from _common import emit, fct_table, run_grid
from repro.experiments.scenarios import bench_topology

LOADS = (0.6, 0.8)
SCHEMES = ("ecmp", "conga", "hermes")
N_FLOWS = 200
SIZE_SCALE = 0.2
TIME_SCALE = 0.2


def reproduce():
    grids = {}
    for workload in ("web-search", "data-mining"):
        grids[workload] = run_grid(
            bench_topology(),
            SCHEMES,
            LOADS,
            workload,
            n_flows=N_FLOWS,
            size_scale=SIZE_SCALE,
            time_scale=TIME_SCALE,
            seeds=(1,),
        )
    return grids


def test_fig12_baseline(once):
    grids = once(reproduce)
    body = ""
    for workload, grid in grids.items():
        body += f"[{workload}]\n" + fct_table(grid, LOADS) + "\n\n"
    body += (
        f"(4x4 fabric, {N_FLOWS} flows x2 seeds, size/time scale "
        f"{SIZE_SCALE})\n"
        "paper: web-search — Hermes beats ECMP up to 55%, within 17% of"
        " CONGA; data-mining — Hermes slightly beats CONGA"
    )
    emit("fig12_baseline", "Fig. 12: symmetric baseline avg FCT", body)

    for workload, grid in grids.items():
        def mean(lb, load):
            runs = grid[lb][load]
            return sum(r.mean_fct_ms for r in runs) / len(runs)

        # Hermes tracks CONGA and beats ECMP at high load.
        assert mean("hermes", 0.8) < mean("ecmp", 0.8)
        assert mean("hermes", 0.6) < 1.35 * mean("conga", 0.6)
    # Data-mining is where timeliness pays: Hermes at least matches CONGA.
    dm = grids["data-mining"]
    hermes = sum(r.mean_fct_ms for r in dm["hermes"][0.8]) / 2
    conga = sum(r.mean_fct_ms for r in dm["conga"][0.8]) / 2
    assert hermes < 1.15 * conga
