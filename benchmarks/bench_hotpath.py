"""Layered hot-path microbenchmark: where do the cycles go?

``BENCH_core.json`` answers "how fast is the whole thing"; this bench
answers "which layer pays for it".  Three layers, measured separately so
a regression shows up where it happened:

* **engine** — pure event dispatch (self-rescheduling timer set) and
  schedule/cancel churn, per engine (``heap`` vs ``wheel``).  No
  packets, no ports: this is the scheduler's own ceiling.
* **port_chain** — pooled DATA packets injected straight into the
  fabric (no transport, no load balancer): serialization, queueing,
  propagation, delivery, recycle.  Isolates the
  ``OutputPort``/``Fabric`` fast path plus the packet pool.
* **end_to_end** — a small experiment grid under ``heap``, ``wheel``
  and ``wheel:auto``, with allocation counts (``sys``/``gc`` deltas and
  the pool counters) around the default-engine run.

Results land in ``BENCH_hotpath.json`` at the repo root.  CI runs
``--smoke`` and gates the end-to-end wheel throughput against the
*committed* ``BENCH_hotpath.json`` (same grid shape, so the ratio is
meaningful; ``BENCH_core.json`` is also accepted via its
``events_per_sec_wheel`` key)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke \\
        --gate-baseline BENCH_hotpath.json --gate-ratio 0.95

How to read the numbers: ``engine.*.events_per_sec`` bounds everything
below it; ``port_chain.events_per_sec`` minus the engine rate is the
per-packet fabric cost; ``end_to_end`` adds transports/LB agents.  The
``allocation`` block should show ``blocks_per_event`` near zero — the
pools mean a steady-state run allocates almost nothing per event — and
``pool.reused`` far above ``pool.allocated``.
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, os.path.dirname(__file__))  # for direct execution

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.net.fabric import Fabric
from repro.net.packet import HEADER_BYTES, PacketKind
from repro.sim.engine import make_simulator
from repro.sim.rng import RngStreams

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_hotpath.json",
)

#: End-to-end grid.  Smoke keeps the full scheme mix (so the committed
#: baseline and the CI measurement have the same per-event cost profile)
#: and drops one load + most flows.
E2E_SCHEMES = ("ecmp", "letflow", "conga", "hermes")
E2E_LOADS = (0.5, 0.7)
SMOKE_SCHEMES = E2E_SCHEMES
SMOKE_LOADS = (0.5,)


# --------------------------------------------------------------------- #
# Layer 1: engine only
# --------------------------------------------------------------------- #


def _best_of(repeats: int, fn):
    """Run ``fn`` ``repeats`` times, keep the lowest-wall-clock report
    (least perturbed by whatever else the machine is doing)."""
    best = None
    for _ in range(repeats):
        report = fn()
        if best is None or report["wall_s"] < best["wall_s"]:
            best = report
    return best


def bench_engine_dispatch(engine: str, n_dispatch: int, timers: int = 256) -> Dict:
    """Self-rescheduling timer set: every fire schedules the next, via
    the pooled path — steady-state dispatch with zero net allocation."""
    sim = make_simulator(engine)
    budget = [n_dispatch]
    # Deterministic pseudo-random spacing, co-prime with the wheel slot
    # width so events scatter across slots instead of resonating.
    delays = [(i * 131) % 4093 + 1 for i in range(timers)]
    schedule = sim.schedule_pooled

    def tick(idx: int) -> None:
        if budget[0] > 0:
            budget[0] -= 1
            schedule(delays[idx], tick, idx)

    for i in range(timers):
        budget[0] -= 1
        schedule(delays[i], tick, i)
    start = time.perf_counter()
    fired = sim.run()
    wall = time.perf_counter() - start
    return {
        "events": fired,
        "wall_s": round(wall, 4),
        "events_per_sec": round(fired / wall, 1),
    }


def bench_engine_churn(engine: str, n_ops: int) -> Dict:
    """Schedule/cancel churn: the RTO re-arm pattern.  Half the events
    are cancelled before they fire; the wheel must purge them lazily
    rather than letting slots grow."""
    sim = make_simulator(engine)
    noop = lambda: None
    start = time.perf_counter()
    for i in range(n_ops):
        event = sim.schedule_pooled((i * 37) % 65_536 + 1, noop)
        if i & 1:
            event.cancel()
    fired = sim.run()
    wall = time.perf_counter() - start
    report = {
        "ops": n_ops,
        "fired": fired,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(n_ops / wall, 1),
    }
    if hasattr(sim, "wheel_stats"):
        report["purged"] = sim.wheel_stats()["purged"]
    return report


# --------------------------------------------------------------------- #
# Layer 2: port chain only
# --------------------------------------------------------------------- #


def bench_port_chain(n_packets: int, wave: int = 64) -> Dict:
    """Pooled DATA packets straight through the fabric: host → leaf →
    spine → leaf → host, no transport above.  Unknown flow ids are
    silently dropped at the receiving host, so the packets simply
    traverse, deliver and recycle."""
    topology = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4)
    fabric = Fabric(make_simulator(), topology, RngStreams(1))
    sim = fabric.sim
    pool = fabric.packet_pool
    n_spines = topology.n_spines
    hosts = topology.n_hosts
    sent = [0]
    size = HEADER_BYTES + 1460

    def inject() -> None:
        base = sent[0]
        burst = min(wave, n_packets - base)
        for i in range(burst):
            j = base + i
            src = j % (hosts // 2)
            dst = hosts // 2 + (j % (hosts // 2))
            packet = pool.acquire(
                j, src, dst, j, size, PacketKind.DATA,
                path_id=j % n_spines,
            )
            fabric.send(packet)
        sent[0] += burst
        if sent[0] < n_packets:
            # Next wave after roughly one wave's serialization time, so
            # queues stay busy without overflowing the buffers.
            sim.schedule_pooled(wave * 1_200, inject)

    inject()
    start = time.perf_counter()
    fired = sim.run()
    wall = time.perf_counter() - start
    stats = pool.stats()
    return {
        "packets": n_packets,
        "events": fired,
        "wall_s": round(wall, 4),
        "events_per_sec": round(fired / wall, 1),
        "packets_per_sec": round(n_packets / wall, 1),
        "pool": stats,
        "pool_reuse_fraction": round(
            stats["reused"] / max(1, stats["reused"] + stats["allocated"]), 4
        ),
    }


# --------------------------------------------------------------------- #
# Layer 3: end to end
# --------------------------------------------------------------------- #


def _e2e_grid(smoke: bool, n_flows: int) -> List[ExperimentConfig]:
    topology = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4)
    schemes = SMOKE_SCHEMES if smoke else E2E_SCHEMES
    loads = SMOKE_LOADS if smoke else E2E_LOADS
    return [
        ExperimentConfig(
            topology=topology,
            lb=lb,
            workload="web-search",
            load=load,
            n_flows=n_flows,
            seed=1,
            size_scale=0.05,
            time_scale=0.05,
        )
        for lb in schemes
        for load in loads
    ]


def bench_end_to_end(smoke: bool, n_flows: int, repeats: int = 3) -> Dict:
    """Best-of-``repeats`` per engine: the minimum wall clock is the
    least-perturbed measurement on a shared machine (standard
    microbenchmark practice), and every repeat's records are still
    cross-checked for bit-identity."""
    configs = _e2e_grid(smoke, n_flows)
    report: Dict = {
        "grid_cells": len(configs),
        "n_flows": n_flows,
        "repeats": repeats,
    }
    reference_records = None
    # Untimed warm-up (scheme imports, method caches) — same reasoning
    # as bench_perf_core.measure.
    run_experiment(configs[0])
    for scheduler in ("heap", "wheel", "wheel:auto"):
        best_wall = None
        total_events = 0
        pool = None
        allocation = None
        for _ in range(repeats):
            runs = []
            total_events = 0
            gc.collect()
            blocks_before = sys.getallocatedblocks()
            gc_before = sum(s["collections"] for s in gc.get_stats())
            start = time.perf_counter()
            for config in configs:
                result = run_experiment(
                    dataclasses.replace(config, scheduler=scheduler)
                )
                total_events += result.events
                runs.append(result)
            wall = time.perf_counter() - start
            blocks_after = sys.getallocatedblocks()
            gc_after = sum(s["collections"] for s in gc.get_stats())
            records = [r.stats.records for r in runs]
            if reference_records is None:
                reference_records = records
            else:
                assert records == reference_records, (
                    f"{scheduler} diverged from heap records"
                )
            if best_wall is None or wall < best_wall:
                best_wall = wall
                pool = runs[-1].fabric.packet_pool.stats()
                allocation = {
                    # Net allocated blocks per dispatched event over the
                    # whole phase (includes result objects; steady-state
                    # per-packet cost is far lower — see pool counters).
                    "net_blocks": blocks_after - blocks_before,
                    "blocks_per_event": round(
                        (blocks_after - blocks_before)
                        / max(1, total_events), 4
                    ),
                    "gc_collections": gc_after - gc_before,
                }
        report[scheduler] = {
            "total_events": total_events,
            "wall_s": round(best_wall, 3),
            "events_per_sec": round(total_events / best_wall, 1),
            "allocation": allocation,
            "pool_last_cell": pool,
        }
    report["wheel_speedup_x"] = round(
        report["wheel"]["events_per_sec"] / report["heap"]["events_per_sec"],
        3,
    )
    return report


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


def measure(smoke: bool) -> Dict:
    n_dispatch = 50_000 if smoke else 400_000
    n_churn = 50_000 if smoke else 400_000
    n_packets = 10_000 if smoke else 80_000
    n_flows = 40 if smoke else 150
    repeats = 3
    engines: Dict[str, Dict] = {}
    for engine in ("heap", "wheel"):
        engines[engine] = {
            "dispatch": _best_of(
                repeats, lambda e=engine: bench_engine_dispatch(e, n_dispatch)
            ),
            "churn": _best_of(
                repeats, lambda e=engine: bench_engine_churn(e, n_churn)
            ),
        }
    return {
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "engine": engines,
        "port_chain": _best_of(
            repeats, lambda: bench_port_chain(n_packets)
        ),
        "end_to_end": bench_end_to_end(smoke, n_flows, repeats=repeats),
    }


def _baseline_wheel_eps(path: str) -> Optional[float]:
    """Pull the committed wheel events/sec out of a baseline JSON —
    either ``BENCH_core.json`` (flat key) or a previous
    ``BENCH_hotpath.json`` (nested)."""
    with open(path) as fh:
        data = json.load(fh)
    if "events_per_sec_wheel" in data:
        return data["events_per_sec_wheel"]
    try:
        return data["end_to_end"]["wheel"]["events_per_sec"]
    except (KeyError, TypeError):
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--gate-baseline", default=None,
                        help="baseline JSON (BENCH_core.json or a prior "
                             "BENCH_hotpath.json) to gate end-to-end "
                             "wheel throughput against")
    parser.add_argument("--gate-ratio", type=float, default=0.95,
                        help="fail (exit 1) if end-to-end wheel "
                             "events/sec < ratio x baseline")
    args = parser.parse_args(argv)

    report = measure(args.smoke)
    gate: Optional[Dict] = None
    if args.gate_baseline:
        baseline = _baseline_wheel_eps(args.gate_baseline)
        measured = report["end_to_end"]["wheel"]["events_per_sec"]
        gate = {
            "baseline_file": os.path.basename(args.gate_baseline),
            "baseline_events_per_sec_wheel": baseline,
            "measured_events_per_sec_wheel": measured,
            "ratio_required": args.gate_ratio,
            "passed": (
                baseline is None or measured >= args.gate_ratio * baseline
            ),
        }
        report["gate"] = gate

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwritten to {out}")
    if gate is not None and not gate["passed"]:
        print(
            f"FAIL: wheel end-to-end {gate['measured_events_per_sec_wheel']}"
            f" ev/s < {args.gate_ratio} x baseline "
            f"{gate['baseline_events_per_sec_wheel']} ev/s",
            file=sys.stderr,
        )
        return 1
    return 0


def test_hotpath_smoke(tmp_path):
    """Pytest entry point: layer sanity without the perf gate."""
    out = tmp_path / "BENCH_hotpath.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    for engine in ("heap", "wheel"):
        assert report["engine"][engine]["dispatch"]["events_per_sec"] > 0
        assert report["engine"][engine]["churn"]["ops_per_sec"] > 0
    assert report["engine"]["wheel"]["churn"]["purged"] > 0
    chain = report["port_chain"]
    assert chain["events_per_sec"] > 0
    # The pool must actually recycle on the unobserved fast path.
    assert chain["pool_reuse_fraction"] > 0.9
    e2e = report["end_to_end"]
    for scheduler in ("heap", "wheel", "wheel:auto"):
        assert e2e[scheduler]["events_per_sec"] > 0


if __name__ == "__main__":
    sys.exit(main())
