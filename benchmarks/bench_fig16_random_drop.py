"""Fig. 16 — silent random packet drops at one spine switch.

Paper setup: baseline fabric, one spine dropping 2% of packets
silently, web-search, loads up to 70%.

Paper shape: Hermes detects the failure (retransmission fraction > 1%
on a non-congested path) and avoids the switch, beating everything by
over 32%.  ECMP is 1.7-2.3x worse than Hermes.  CONGA performs *like
ECMP or worse* — flows through the dropping switch send slowly, the
paths look underutilized, and CONGA shifts more traffic onto them.
Presto* is hit hardest (every flow crosses the failed switch); LetFlow
sits in between (drops create rerouting opportunities but it cannot
avoid the switch).

Reproduction note: run with *unscaled* sizes and timers on a smaller
fabric — failure detection versus RTO timescales cannot be size-scaled
without distorting the loss process (see EXPERIMENTS.md).
"""

from _common import emit, fct_table, run_grid, mean_over_seeds
from repro.experiments.config import FailureSpec
from repro.experiments.scenarios import bench_topology

LOADS = (0.3, 0.5)
SCHEMES = ("ecmp", "presto", "letflow", "conga", "hermes")
N_FLOWS = 100


def reproduce():
    return run_grid(
        bench_topology(n_leaves=4, n_spines=4, hosts_per_leaf=3),
        SCHEMES,
        LOADS,
        "web-search",
        n_flows=N_FLOWS,
        size_scale=1.0,
        seeds=(1,),
        failure=FailureSpec(kind="random_drop", spine=0, drop_rate=0.02),
        extra_drain_ns=3_000_000_000,
    )


def test_fig16_random_drop(once):
    grid = once(reproduce)
    body = fct_table(grid, LOADS)
    body += (
        "\npaper: Hermes best by >32%; ECMP 1.7-2.3x worse; CONGA tracks"
        " ECMP (paradoxically attracts traffic to the quiet failed paths);"
        " Presto* hit hardest; LetFlow in between"
    )
    emit("fig16_random_drop", "Fig. 16: silent random packet drops", body)

    def mean(lb, load):
        return mean_over_seeds(grid[lb][load], lambda r: r.mean_fct_ms)

    for load in LOADS:
        # Hermes (detects and avoids) beats the oblivious schemes.
        assert mean("hermes", load) < mean("ecmp", load)
        assert mean("hermes", load) < 1.05 * mean("conga", load)
