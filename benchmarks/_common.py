"""Shared helpers for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper: it runs the
matching scenario, prints the same rows/series the paper reports (plus
the scaling factors applied), and appends the output to
``benchmarks/results/<bench>.txt`` so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.parallel import (
    ResultSummary,
    grid_configs,
    grid_results,
    run_cells,
)
from repro.experiments.report import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Receiver reordering mask used for Presto*/DRB, per the paper's
#: methodology of masking reordering to isolate congestion mismatch.
#: The mask must cover cross-path skew, which scales with serialization
#: time — so 1 Gbps fabrics need a longer mask than 10 Gbps ones.
PRESTO_MASK_US = 100.0
PRESTO_MASK_US_1G = 800.0


def emit(name: str, title: str, body: str) -> str:
    """Print a bench report and persist it under ``benchmarks/results``."""
    text = f"\n=== {title} ===\n{body}\n"
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)
    return text


def scheme_kwargs(lb: str, topology) -> Dict:
    """Per-scheme ExperimentConfig extras (reorder masking for sprayers)."""
    if lb in ("presto", "drb"):
        mask = (
            PRESTO_MASK_US_1G
            if topology.host_link_gbps <= 2.0
            else PRESTO_MASK_US
        )
        return {"reorder_mask_us": mask}
    return {}


def run_grid(
    topology,
    schemes: Sequence[str],
    loads: Sequence[float],
    workload: str,
    n_flows: int,
    size_scale: float,
    seeds: Sequence[int] = (1,),
    time_scale: float = 1.0,
    failure: Optional[FailureSpec] = None,
    faults=None,
    lb_params: Optional[Dict[str, Dict]] = None,
    hermes_overrides: Optional[Dict] = None,
    extra_drain_ns: int = 2_000_000_000,
    presto_weighted: bool = False,
    jobs: Optional[int] = None,
    detector: Optional[str] = None,
) -> Dict[str, Dict[float, List[ResultSummary]]]:
    """Run a (scheme x load x seed) grid and return all results.

    Cells fan out over worker processes (``jobs`` arg, else the
    ``REPRO_JOBS`` env var, else every core) and finished cells are
    reused from the on-disk result cache — see
    :mod:`repro.experiments.parallel`.  ``jobs=1`` runs in-process.
    """

    def make_config(lb: str, load: float, seed: int) -> ExperimentConfig:
        params = dict((lb_params or {}).get(lb, {}))
        if lb == "presto":
            # Presto* sprays packets, not flowcells (paper §5.1).
            params.setdefault("flowcell_bytes", 1500)
            if presto_weighted:
                params["weight_by_capacity"] = True
        return ExperimentConfig(
            topology=topology,
            lb=lb,
            lb_params=params,
            workload=workload,
            load=load,
            n_flows=n_flows,
            seed=seed,
            size_scale=size_scale,
            time_scale=time_scale,
            failure=failure,
            faults=faults,
            detector=detector,
            hermes_overrides=hermes_overrides or {},
            extra_drain_ns=extra_drain_ns,
            **scheme_kwargs(lb, topology),
        )

    configs = grid_configs(schemes, loads, seeds, make_config)
    summaries = run_cells(configs, jobs=jobs)
    return grid_results(schemes, loads, seeds, summaries)


def mean_over_seeds(runs: Iterable[ResultSummary], metric) -> float:
    values = [metric(r) for r in runs]
    return sum(values) / len(values)


def fct_table(
    grid: Dict[str, Dict[float, List[ResultSummary]]],
    loads: Sequence[float],
    metric=lambda r: r.mean_fct_ms,
    metric_name: str = "avg FCT (ms)",
) -> str:
    """Render the classic paper layout: one row per scheme, one column
    per load."""
    headers = ["scheme"] + [f"{metric_name} @{load:.0%}" for load in loads]
    rows = []
    for lb, by_load in grid.items():
        rows.append([lb] + [mean_over_seeds(by_load[load], metric) for load in loads])
    return format_table(headers, rows)


def normalized_table(
    grid: Dict[str, Dict[float, List[ResultSummary]]],
    loads: Sequence[float],
    baseline: str = "hermes",
    metric=lambda r: r.mean_fct_ms,
    metric_name: str = "FCT",
) -> str:
    """The paper's Figs. 13/14 layout: FCT normalized to Hermes."""
    headers = ["scheme"] + [
        f"norm {metric_name} @{load:.0%}" for load in loads
    ]
    base = {
        load: mean_over_seeds(grid[baseline][load], metric) for load in loads
    }
    rows = []
    for lb, by_load in grid.items():
        rows.append(
            [lb]
            + [mean_over_seeds(by_load[load], metric) / base[load] for load in loads]
        )
    return format_table(headers, rows)
