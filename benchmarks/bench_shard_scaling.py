"""Shard-scaling microbenchmark: events/sec and barrier overhead vs shards.

One paper-scale cell (8x8 leaf-spine, 128 hosts, hermes) run three ways:

1. **serial** — the reference in-process run (``shards=1``), timed for
   baseline ``events_per_sec``;
2. **sharded in-process** — the same cell through the sharded runner at
   each shard count with ``jobs=1`` (round-robin, one OS process).  No
   parallelism can exist here, so the wall-clock delta over serial *is*
   the pure cost of the conservative-lookahead machinery: composite
   sequence keys, window barriers, boundary serialization.  Reported per
   shard count as ``sync_overhead_x`` plus per-window cost;
3. **sharded multi-process** — ``jobs=shards``, one OS process per
   shard.  On a single-core machine the speedup number would be
   process-spawn overhead wearing a misleading costume, so
   ``process_speedup`` is ``null`` with a ``process_speedup_skipped``
   reason and ``cpu_count`` recorded — the determinism cross-check (the
   multi-process records must equal the serial records bit for bit)
   still runs.

Correctness accounting is honest about the ordering model: composite
sequence keys reproduce the serial event order exactly *except* when two
same-instant events of mixed origin collide (counted per run as
``order_hazards``; see DESIGN.md on shard boundaries).  A hazard-free
run must therefore be bit-identical to the serial reference — asserted
hard.  A run with hazards records ``bit_identical`` as measured (the
golden 2-leaf grid, where CI enforces identity, is provably
hazard-free; the big 8x8 cell here is not at every flow count).
Results land in ``BENCH_shard.json`` at the repo root so successive PRs
can diff the barrier overhead.

Run directly (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, os.path.dirname(__file__))  # for direct execution

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import code_version
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import simulation_topology
from repro.shard.runner import run_sharded

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_shard.json"
)

SHARD_COUNTS = (2, 4, 8)
SMOKE_SHARD_COUNTS = (2, 4)


def build_cell(n_flows: int, size_scale: float) -> ExperimentConfig:
    return ExperimentConfig(
        topology=simulation_topology(),
        lb="hermes",
        workload="web-search",
        load=0.5,
        n_flows=n_flows,
        seed=1,
        size_scale=size_scale,
        time_scale=size_scale,
    )


def _compare(reference, candidate, mode: str) -> bool:
    """True iff ``candidate`` is bit-identical to the serial reference.

    Hazard-free runs must match — anything else is a sharding bug and
    asserts.  Runs with recorded ordering hazards may legitimately
    differ (two same-instant events whose serial order no shard can
    know); the caller records the measured outcome instead.
    """
    identical = (
        candidate.stats.records == reference.stats.records
        and candidate.events == reference.events
        and candidate.sim_time_ns == reference.sim_time_ns
    )
    hazards = candidate.shared["shard_diagnostics"]["hazards"]
    assert identical or hazards > 0, (
        f"{mode} run diverged from the serial reference with zero "
        f"recorded ordering hazards — that is a bug, not an ambiguity"
    )
    return identical


def measure(config: ExperimentConfig, shard_counts: Sequence[int]) -> Dict:
    cpu_count = os.cpu_count() or 1

    # Untimed warm-up (scheme imports, method caches).
    run_experiment(config)

    serial_start = time.perf_counter()
    serial = run_experiment(config)
    serial_wall = time.perf_counter() - serial_start

    per_shard: List[Dict] = []
    for shards in shard_counts:
        cell = dataclasses.replace(config, shards=shards)

        inline_start = time.perf_counter()
        inline = run_sharded(cell, jobs=1)
        inline_wall = time.perf_counter() - inline_start
        bit_identical = _compare(serial, inline, f"in-process shards={shards}")
        diag = inline.shared["shard_diagnostics"]
        windows = diag["windows"]

        process_start = time.perf_counter()
        processes = run_sharded(cell, jobs=shards)
        process_wall = time.perf_counter() - process_start
        _compare(serial, processes, f"multi-process shards={shards}")
        # jobs only picks HOW shards execute, never what they compute.
        assert processes.stats.records == inline.stats.records, (
            "multi-process shards diverged from in-process shards"
        )

        if cpu_count < 2:
            process_speedup = None
            process_speedup_skipped = (
                f"needs >=2 cpus (cpu_count={cpu_count}); multi-process "
                f"run kept for the determinism check only"
            )
        else:
            process_speedup = round(serial_wall / process_wall, 2)
            process_speedup_skipped = None

        per_shard.append({
            "shards": shards,
            "bit_identical": bit_identical,
            "events_per_sec_inline": round(inline.events / inline_wall, 1),
            "inline_wall_s": round(inline_wall, 3),
            "sync_overhead_x": round(inline_wall / serial_wall, 3),
            "sync_windows": windows,
            "boundary_messages": diag["messages"],
            "order_hazards": diag["hazards"],
            "barrier_cost_us_per_window": round(
                max(0.0, inline_wall - serial_wall) / windows * 1e6, 2
            ),
            "process_wall_s": round(process_wall, 3),
            "process_speedup": process_speedup,
            "process_speedup_skipped": process_speedup_skipped,
        })

    return {
        "code_version": code_version(),
        "cpu_count": cpu_count,
        "topology": "8x8 leaf-spine, 128 hosts",
        "lb": config.lb,
        "n_flows": config.n_flows,
        "total_events": serial.events,
        "serial_wall_s": round(serial_wall, 3),
        "events_per_sec_serial": round(serial.events / serial_wall, 1),
        "per_shard": per_shard,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, default=None,
                        help="flows in the cell (default 400; smoke 96)")
    parser.add_argument("--smoke", action="store_true",
                        help="small cell + {2,4} shards for CI")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    n_flows = args.flows or (96 if args.smoke else 400)
    size_scale = 0.02 if args.smoke else 0.05
    shard_counts = SMOKE_SHARD_COUNTS if args.smoke else SHARD_COUNTS
    config = build_cell(n_flows, size_scale)

    report = measure(config, shard_counts)
    report["smoke"] = args.smoke
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwritten to {out}")
    return 0


def test_shard_scaling_smoke(tmp_path):
    """Pytest entry point: the CI smoke run (96 flows, shards {2,4})."""
    out = tmp_path / "BENCH_shard.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["events_per_sec_serial"] > 0
    assert [row["shards"] for row in report["per_shard"]] == [2, 4]
    for row in report["per_shard"]:
        assert row["events_per_sec_inline"] > 0
        assert row["sync_windows"] > 0
        assert row["bit_identical"] or row["order_hazards"] > 0
        # Speedup is either a real multi-core number or an explicit
        # skip — never a misleading 1-core artifact.
        if report["cpu_count"] < 2:
            assert row["process_speedup"] is None
            assert row["process_speedup_skipped"]
        else:
            assert row["process_speedup"] is not None


if __name__ == "__main__":
    sys.exit(main())
