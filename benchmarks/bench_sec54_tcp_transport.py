"""§5.4 "Different transport protocols" — Hermes under plain TCP.

The paper re-runs the 8x8 simulations with TCP instead of DCTCP: Hermes
then senses with RTT only (no ECN), with ``∆_RTT`` and ``T_RTT_high``
set 1.5x larger.  Reported result (no figure in the paper): under
web-search Hermes stays within 10-25% of CONGA at all loads in both the
baseline and asymmetric topologies; under data-mining it performs almost
identically to CONGA.

TCP is burstier than DCTCP (loss-driven sawtooth), so flowlet schemes
get more gaps — CONGA's relative position improves, exactly what the
paper observes.
"""

from _common import emit, fct_table, mean_over_seeds
from repro.experiments.scenarios import bench_topology

LOADS = (0.6,)
SCHEMES = ("ecmp", "conga", "hermes")
N_FLOWS = 150
SIZE_SCALE = 0.2
TIME_SCALE = 0.2


def run_tcp_grid(workload):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.parallel import grid_configs, grid_results, run_cells

    topo = bench_topology(asymmetric=True)
    hop = topo.one_hop_delay_ns()
    base = topo.base_rtt_ns()
    hermes_tcp = {
        "use_ecn": False,
        "t_rtt_high_ns": base + int(1.5 * 1.2 * hop),
        "delta_rtt_ns": int(1.5 * hop),
    }

    def make_config(lb, load, seed):
        return ExperimentConfig(
            topology=topo,
            lb=lb,
            transport="tcp",
            workload=workload,
            load=load,
            n_flows=N_FLOWS,
            seed=seed,
            size_scale=SIZE_SCALE,
            time_scale=TIME_SCALE,
            hermes_overrides=hermes_tcp if lb == "hermes" else {},
        )

    seeds = (1,)
    configs = grid_configs(SCHEMES, LOADS, seeds, make_config)
    return grid_results(SCHEMES, LOADS, seeds, run_cells(configs))


def test_sec54_tcp_transport(once):
    grids = once(
        lambda: {w: run_tcp_grid(w) for w in ("web-search", "data-mining")}
    )
    body = ""
    for workload, grid in grids.items():
        body += f"[{workload}, plain TCP]\n" + fct_table(grid, LOADS) + "\n\n"
    body += (
        "paper (no figure): with TCP, Hermes senses via RTT only and stays"
        " within 10-25% of CONGA (web-search) / matches it (data-mining)"
    )
    emit("sec54_tcp_transport", "§5.4: plain-TCP transport", body)

    for workload, grid in grids.items():
        for load in LOADS:
            hermes = mean_over_seeds(grid["hermes"][load], lambda r: r.mean_fct_ms)
            conga = mean_over_seeds(grid["conga"][load], lambda r: r.mean_fct_ms)
            assert hermes < 1.5 * conga
        # All flows finish under loss-driven TCP too.
        for lb in SCHEMES:
            for load in LOADS:
                assert all(
                    r.stats.unfinished_count == 0 for r in grid[lb][load]
                )
