"""Bench-suite configuration.

Each bench runs once (rounds=1): the interesting output is the printed
paper table, not the timing statistics, though pytest-benchmark still
records wall time per experiment grid.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
