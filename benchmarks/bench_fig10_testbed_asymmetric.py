"""Fig. 10 — testbed experiments, asymmetric topology (one link cut).

Same testbed as Fig. 9 with one physical leaf0-spine1 link cut (the
trunk halves; bisection drops to 75%), loads up to 70%.

Paper shape: ECMP deteriorates past 40-50% load (the surviving link
saturates); Hermes is 12-30% better than CLOVE-ECN at 30-65% load;
Presto* — even with topology-dependent weights — collapses past 60%
load from congestion mismatch.
"""

from _common import emit, fct_table, run_grid
from repro.experiments.scenarios import testbed_topology

LOADS = (0.3, 0.5, 0.7)
SCHEMES = ("ecmp", "clove-ecn", "presto", "hermes")
N_FLOWS = 100
SIZE_SCALE = 0.3
TIME_SCALE = 0.3


def reproduce():
    grids = {}
    for workload in ("web-search", "data-mining"):
        grids[workload] = run_grid(
            testbed_topology(asymmetric=True),
            SCHEMES,
            LOADS,
            workload,
            n_flows=N_FLOWS,
            size_scale=SIZE_SCALE,
            time_scale=TIME_SCALE,
            seeds=(1,),
            presto_weighted=True,   # the paper's static weighting
        )
    return grids


def test_fig10_testbed_asymmetric(once):
    grids = once(reproduce)
    body = ""
    for workload, grid in grids.items():
        body += f"[{workload}]\n" + fct_table(grid, LOADS) + "\n\n"
    body += (
        "paper: ECMP degrades past 40-50% load; Hermes 12-30% better than"
        " CLOVE-ECN; weighted Presto* still suffers congestion mismatch"
    )
    emit(
        "fig10_testbed_asymmetric",
        "Fig. 10: testbed asymmetric avg FCT",
        body,
    )

    for workload, grid in grids.items():
        def mean(lb, load):
            runs = grid[lb][load]
            return sum(r.mean_fct_ms for r in runs) / len(runs)

        # Hermes handles the asymmetry at least as well as ECMP everywhere.
        assert mean("hermes", 0.5) < mean("ecmp", 0.5)
        assert mean("hermes", 0.7) < mean("ecmp", 0.7)
