"""Table 2 — network visibility: concurrent flows observed on parallel
paths by a ToR-switch pair versus an end-host pair.

Paper values (8x8 leaf-spine, 128 hosts, 10 Gbps, 2 s):

    workload      data-mining  data-mining  web-search  web-search
                  60% load     80% load     60% load    80% load
    switch pair   1.725        2.344        4.173       5.859
    host pair     0.007        0.009        0.016       0.022

The shape to reproduce: switch pairs see *hundreds of times* more
concurrent flows than host pairs (the reason piggybacking-only edge
schemes are nearly blind and Hermes probes actively).
"""

from _common import emit
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_cells
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology

SIZE_SCALE = 0.1
N_FLOWS = 250


def cell_config(workload: str, load: float) -> ExperimentConfig:
    return ExperimentConfig(
        topology=bench_topology(),
        lb="ecmp",
        workload=workload,
        load=load,
        n_flows=N_FLOWS,
        seed=1,
        size_scale=SIZE_SCALE,
        visibility_sampling=True,
    )


def reproduce():
    keys = [
        (workload, load)
        for workload in ("data-mining", "web-search")
        for load in (0.6, 0.8)
    ]
    summaries = run_cells([cell_config(w, l) for w, l in keys])
    return {
        key: (s.visibility_switch_pair, s.visibility_host_pair)
        for key, s in zip(keys, summaries)
    }


def test_table2_visibility(once):
    cells = once(reproduce)
    headers = ["observer"] + [
        f"{w} @{int(l * 100)}%"
        for w in ("data-mining", "web-search")
        for l in (0.6, 0.8)
    ]
    order = [(w, l) for w in ("data-mining", "web-search") for l in (0.6, 0.8)]
    switch_row = ["switch pair"] + [cells[k][0] for k in order]
    host_row = ["host pair"] + [cells[k][1] for k in order]
    body = format_table(headers, [switch_row, host_row])
    body += (
        f"\n(scaled run: 4x4 leaf-spine, {N_FLOWS} flows, "
        f"size_scale={SIZE_SCALE}; paper: 8x8, 2s trace)"
    )
    emit("table2_visibility", "Table 2: visibility (concurrent flows)", body)
    # The paper's qualitative claim: ToR pairs observe 2-3 orders of
    # magnitude more concurrent flows than host pairs.
    for key in order:
        switch, host = cells[key]
        assert switch > 50 * host
    # Visibility grows with load.
    assert cells[("web-search", 0.8)][0] > cells[("web-search", 0.6)][0]
