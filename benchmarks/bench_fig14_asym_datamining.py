"""Fig. 14 — asymmetric fabric, data-mining workload, normalized FCT.

Same fabric as Fig. 13, data-mining traffic (large steady flows, few
flowlet gaps).

Paper shape: Hermes beats CONGA by 5-10% (timely rerouting resolves
large-flow collisions on the 2 Gbps links) and beats CLOVE-ECN/LetFlow
by 13-20% (starved of flowlets, they cannot rebalance).
"""

from _common import emit, mean_over_seeds, normalized_table, run_grid
from repro.experiments.scenarios import bench_topology

LOADS = (0.5, 0.8)
SCHEMES = ("conga", "letflow", "clove-ecn", "presto", "hermes")
N_FLOWS = 150
SIZE_SCALE = 0.2
TIME_SCALE = 0.2


def reproduce():
    return run_grid(
        bench_topology(asymmetric=True),
        SCHEMES,
        LOADS,
        "data-mining",
        n_flows=N_FLOWS,
        size_scale=SIZE_SCALE,
        time_scale=TIME_SCALE,
        seeds=(1,),
        presto_weighted=True,
    )


def test_fig14_asym_datamining(once):
    grid = once(reproduce)
    body = "[overall avg]\n" + normalized_table(grid, LOADS) + "\n\n"
    body += "[large avg]\n" + normalized_table(
        grid, LOADS, metric=lambda r: r.stats.large.mean_ms(),
        metric_name="large",
    ) + "\n\n"
    body += (
        "paper: Hermes 5-10% better than CONGA and 13-20% better than"
        " CLOVE-ECN/LetFlow (no flowlet gaps in steady traffic)"
    )
    emit("fig14_asym_datamining", "Fig. 14: asymmetric data-mining", body)

    def mean(lb, load):
        return mean_over_seeds(grid[lb][load], lambda r: r.mean_fct_ms)

    for load in LOADS:
        # Timeliness wins on steady traffic: Hermes leads the flowlet pack.
        assert mean("hermes", load) < mean("letflow", load)
        assert mean("hermes", load) < 1.05 * mean("clove-ecn", load)
        assert mean("hermes", load) < 1.15 * mean("conga", load)
