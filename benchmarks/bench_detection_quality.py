"""Detection-quality frontier: detector x fault shape on the Fig. 16 grid.

The pluggable detection plane (:mod:`repro.detect`) trades detection
latency against false positives: transport-evidence detection is free
but waits out an RTO; BFD heartbeats detect in ``mult x tx`` but burn
bandwidth and can condemn a path that was merely slow; circuit breakers
sit in between, tripping on observed traffic only.  This bench maps
that frontier empirically.

Every cell runs the Fig. 16 recovery shape (4x4 fabric, web-search at
50% load, one leaf-spine link faulted mid-run) under ECMP — a scheme
with *no* detector of its own, so every detection, false positive and
suppression in the summary belongs to the detection plane alone — and
sweeps detector x fault shape:

* ``clean``      — no fault; any detection at all is a false positive;
* ``link_down``  — admin-down at 20 ms, healed at 55 ms (Fig. 16);
* ``flap``       — 2 ms period down/up cycling, the flap-suppression
  stress case;
* ``blackhole``  — silent partial drop (no link-down signal at all);
* ``degrade``    — link squeezed to 0.1 Gbps: alive but useless, the
  gray-failure case that splits liveness from usefulness.

Gates (the ISSUE's acceptance bars):

* BFD ``detection_ns`` on ``link_down`` must be >= 10x lower than
  transport detection on the same shape;
* every detector must report zero detections and zero false positives
  on the ``clean`` shape.

Run directly (CI uses ``--smoke``, which keeps only clean+link_down)::

    PYTHONPATH=src python benchmarks/bench_detection_quality.py \
        [--smoke] [--jobs N] [--out BENCH_detection.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from _common import emit
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ResultSummary, run_cells
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology
from repro.faults.spec import (
    blackhole_off,
    blackhole_on,
    flap,
    link_degrade,
    link_down,
    link_restore,
    link_up,
    schedule,
)

MS = 1_000_000
LOAD = 0.5
N_FLOWS = 100
SEED = 2

#: The detection planes under test.  Defaults throughout: BFD at
#: tx=100us mult=3 (300 us detection), breaker at 50% failure rate /
#: 50 ms open; the combiners compose the first two.
DETECTORS = (
    "transport",
    "bfd",
    "breaker",
    "quorum:transport+bfd",
    "fastest:transport+bfd",
)

FAULT_SHAPES = {
    "clean": None,
    "link_down": schedule(
        link_down(20 * MS, leaf=0, spine=0),
        link_up(55 * MS, leaf=0, spine=0),
    ),
    "flap": schedule(
        flap(20 * MS, leaf=0, spine=0, period_ns=2 * MS, duty=0.5,
             until_ns=40 * MS),
    ),
    "blackhole": schedule(
        blackhole_on(20 * MS, spine=0, src_leaf=0, dst_leaf=1, fraction=0.5),
        blackhole_off(55 * MS, spine=0),
    ),
    "degrade": schedule(
        link_degrade(20 * MS, leaf=0, spine=0, rate_gbps=0.1),
        link_restore(55 * MS, leaf=0, spine=0),
    ),
}

#: CI subset: the bit-identity shape plus the shape the latency gate
#: runs on.  The full sweep adds the qualitative columns.
SMOKE_SHAPES = ("clean", "link_down")


def _configs(shapes: Sequence[str]) -> List[ExperimentConfig]:
    topology = bench_topology(n_leaves=4, n_spines=4, hosts_per_leaf=3)
    return [
        ExperimentConfig(
            topology=topology,
            lb="ecmp",
            workload="web-search",
            load=LOAD,
            n_flows=N_FLOWS,
            seed=SEED,
            size_scale=1.0,
            faults=FAULT_SHAPES[shape],
            detector=detector,
            extra_drain_ns=40 * MS,
        )
        for detector in DETECTORS
        for shape in shapes
    ]


def reproduce(
    shapes: Sequence[str] = tuple(FAULT_SHAPES),
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, ResultSummary]]:
    """detector -> shape -> summary for the requested fault shapes."""
    summaries = run_cells(_configs(shapes), jobs=jobs)
    grid: Dict[str, Dict[str, ResultSummary]] = {}
    it = iter(summaries)
    for detector in DETECTORS:
        grid[detector] = {shape: next(it) for shape in shapes}
    return grid


def _fmt_ms(value_ns) -> str:
    return "-" if value_ns is None else f"{value_ns / MS:.3f}"


def frontier_rows(grid: Dict[str, Dict[str, ResultSummary]]) -> List[List]:
    """One frontier point per (detector, shape): latency vs noise."""
    rows = []
    for detector, by_shape in grid.items():
        for shape, r in by_shape.items():
            m = r.detector_metrics
            rows.append([
                detector,
                shape,
                _fmt_ms(m.get("detection_ns")),
                m.get("detections", 0),
                m.get("false_positive_count", 0),
                m.get("flap_suppressions", 0),
                r.probe_losses,
                r.stats.unfinished_count,
            ])
    return rows


FRONTIER_HEADERS = [
    "detector", "fault", "detect (ms)", "detections", "false pos",
    "suppressed", "probe losses", "unfinished",
]


def check_gates(grid: Dict[str, Dict[str, ResultSummary]]) -> List[str]:
    """The acceptance bars, as a list of violations (empty = pass)."""
    violations: List[str] = []
    for detector, by_shape in grid.items():
        clean = by_shape.get("clean")
        if clean is not None:
            m = clean.detector_metrics
            if m.get("detections", 0) or m.get("false_positive_count", 0):
                violations.append(
                    f"{detector}: fired on the clean grid "
                    f"(detections={m.get('detections')}, "
                    f"fp={m.get('false_positive_count')})"
                )
    down = {d: by_shape.get("link_down") for d, by_shape in grid.items()}
    for detector, r in down.items():
        if r is not None and r.detector_metrics.get("detection_ns") is None:
            violations.append(
                f"{detector}: no finite detection_ns on link_down"
            )
    transport = down.get("transport")
    bfd = down.get("bfd")
    if transport is not None and bfd is not None:
        t_ns = transport.detector_metrics.get("detection_ns")
        b_ns = bfd.detector_metrics.get("detection_ns")
        if t_ns is None or b_ns is None:
            violations.append(
                f"link_down went undetected (transport={t_ns}, bfd={b_ns})"
            )
        elif b_ns * 10 > t_ns:
            violations.append(
                f"bfd detection {b_ns} ns is not >=10x faster than "
                f"transport {t_ns} ns on link_down"
            )
        if bfd.detector_metrics.get("false_positive_count", 0):
            violations.append(
                "bfd reported false positives on the link_down shape"
            )
    return violations


def report_dict(grid: Dict[str, Dict[str, ResultSummary]]) -> Dict:
    cells = {}
    for detector, by_shape in grid.items():
        for shape, r in by_shape.items():
            m = r.detector_metrics
            cells[f"{detector}@{shape}"] = {
                "detection_ns": m.get("detection_ns"),
                "detections": m.get("detections", 0),
                "false_positive_count": m.get("false_positive_count", 0),
                "flap_suppressions": m.get("flap_suppressions", 0),
                "probe_losses": r.probe_losses,
                "unfinished": r.stats.unfinished_count,
                "avg_fct_ms": r.mean_fct_ms,
            }
    return {
        "meta": {
            "shape": "bench_topology(4,4,3) ecmp web-search "
                     f"load={LOAD} flows={N_FLOWS} seed={SEED}",
            "detectors": list(DETECTORS),
            "gates": [
                "bfd >= 10x faster than transport on link_down",
                "zero detections / false positives on clean",
            ],
        },
        "cells": cells,
    }


def test_detection_quality(once):
    grid = once(reproduce, SMOKE_SHAPES)
    body = format_table(FRONTIER_HEADERS, frontier_rows(grid))
    emit("detection_quality", "Detection-quality frontier (smoke subset)",
         body)
    violations = check_gates(grid)
    assert not violations, "\n".join(violations)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="clean + link_down only (the gated shapes)")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--out", default="BENCH_detection.json",
                        help="machine-readable frontier report")
    args = parser.parse_args(argv)

    shapes = SMOKE_SHAPES if args.smoke else tuple(FAULT_SHAPES)
    grid = reproduce(shapes, jobs=args.jobs)
    body = format_table(FRONTIER_HEADERS, frontier_rows(grid))
    emit("detection_quality",
         "Detection-quality frontier (detector x fault shape)", body)

    with open(args.out, "w") as fh:
        json.dump(report_dict(grid), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report written to {args.out}")

    violations = check_gates(grid)
    if violations:
        for line in violations:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    print("gates passed: bfd >=10x transport on link_down; "
          "clean grid silent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
