"""Core performance microbenchmark: engine throughput + grid scaling.

Tracks the repo's performance trajectory from PR 1 onward.  Phases over
one (scheme x load x seed) grid:

1. **serial** — every cell in-process on the **default engine** (the
   calendar wheel since PR 7), timed per cell: ``events_per_sec`` (and
   its alias ``events_per_sec_wheel``, kept for cross-PR diffing) plus
   per-scheme wall-clock;
2. **parallel cold** — the same grid through
   :func:`repro.experiments.parallel.run_cells` with ``--jobs`` workers
   and an empty cache.  On single-core machines the speedup number is
   meaningless (pure process-spawn overhead), so ``parallel_speedup`` is
   ``null`` with a ``parallel_speedup_skipped`` reason and ``cpu_count``
   recorded — the determinism cross-check still runs;
3. **warm** — the same call again, now served entirely from the cache;
4. **traced** — the serial grid re-run with ``trace=True``
   (:mod:`repro.telemetry` fully attached), to record what observability
   costs when it is ON;
5. **heap** — the serial grid re-run with ``scheduler="heap"`` (the
   reference binary-heap engine), asserting bit-identical per-flow
   records and recording ``events_per_sec_heap`` + the heap→wheel
   speedup ratio ``wheel_speedup_x``;
6. **wheel:auto** — the serial grid with autotuned wheel geometry,
   asserting bit-identity again and that the chosen geometry is
   recorded in ``scheduler_info`` (reproducibility contract);
7. **streaming** — the serial grid re-run with ``streaming_stats=True``
   (t-digest + reservoir collector, per-flow records dropped),
   asserting event counts and exact aggregates match the exact-mode run
   and recording ``events_per_sec_streaming``, plus a pure-estimator
   accuracy probe: a seeded heavy-tailed stream through
   :class:`~repro.telemetry.digest.TDigest` whose p99 relative error
   against the sorted truth lands in ``digest_p99_rel_err``.

It also asserts that the parallel run's per-flow records are
bit-identical to the serial run's — the determinism contract, checked on
every invocation, not just in the test suite.

Results land in ``BENCH_core.json`` at the repo root so successive PRs
can diff events/sec, parallel speedup, and warm-cache latency.  The
layered hot-path breakdown (engine-only, port-chain, allocation counts)
lives in ``benchmarks/bench_hotpath.py`` → ``BENCH_hotpath.json``.

Run directly (CI uses ``--smoke --jobs 2``)::

    PYTHONPATH=src python benchmarks/bench_perf_core.py [--smoke] [--jobs N]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, os.path.dirname(__file__))  # for direct execution

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    code_version,
    resolve_jobs,
    run_cells,
)
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_core.json"
)

#: Default grid: 4 schemes x 2 loads = 8 cells, the shape of a small
#: paper figure.  ``--smoke`` shrinks it to 4 fast cells for CI.
SCHEMES = ("ecmp", "letflow", "conga", "hermes")
LOADS = (0.5, 0.7)
SMOKE_SCHEMES = ("ecmp", "letflow")
SMOKE_LOADS = (0.4, 0.6)


def build_grid(
    schemes: Sequence[str],
    loads: Sequence[float],
    seeds: Sequence[int],
    n_flows: int,
    size_scale: float,
) -> List[ExperimentConfig]:
    topology = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4)
    return [
        ExperimentConfig(
            topology=topology,
            lb=lb,
            workload="web-search",
            load=load,
            n_flows=n_flows,
            seed=seed,
            size_scale=size_scale,
            time_scale=size_scale,
        )
        for lb in schemes
        for load in loads
        for seed in seeds
    ]


def measure(
    configs: List[ExperimentConfig], jobs: Optional[int] = None
) -> Dict:
    """Time the phases over ``configs``; returns the report dict."""
    jobs = resolve_jobs(jobs)
    cpu_count = os.cpu_count() or 1

    # Untimed warm-up: the first cell otherwise pays one-off costs
    # (scheme module imports, method-cache warm-up) that belong to
    # process start, not engine throughput.
    run_experiment(configs[0])

    # Phase 1: serial on the default engine (wheel), timed per cell.
    per_scheme_wall: Dict[str, float] = {}
    serial_results = []
    total_events = 0
    serial_start = time.perf_counter()
    for config in configs:
        cell_start = time.perf_counter()
        result = run_experiment(config)
        elapsed = time.perf_counter() - cell_start
        per_scheme_wall[config.lb] = per_scheme_wall.get(config.lb, 0.0) + elapsed
        total_events += result.events
        serial_results.append(result)
    serial_wall = time.perf_counter() - serial_start
    default_engine = serial_results[0].scheduler_info.get("name", "?")

    # Phases 2 + 3: parallel cold then warm, against a throwaway cache.
    # Always run — they double as the determinism + cache correctness
    # check — but only *report* a speedup where it can physically exist.
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_start = time.perf_counter()
        parallel_results = run_cells(
            configs, jobs=jobs, use_cache=True, cache_dir=cache_dir
        )
        cold_wall = time.perf_counter() - cold_start

        warm_start = time.perf_counter()
        warm_results = run_cells(
            configs, jobs=jobs, use_cache=True, cache_dir=cache_dir
        )
        warm_wall = time.perf_counter() - warm_start

    # Determinism contract: parallel == serial == warm, bit for bit.
    for serial, cold, warm in zip(serial_results, parallel_results, warm_results):
        assert serial.stats.records == cold.stats.records, (
            "parallel run diverged from serial run"
        )
        assert cold.stats.records == warm.stats.records, (
            "cache returned different records"
        )

    parallel_speedup: Optional[float]
    parallel_speedup_skipped: Optional[str]
    if cpu_count < 2 or jobs < 2:
        # A "speedup" measured here is process-spawn overhead wearing a
        # misleading costume (the 0.93x this used to report on 1-core
        # CI runners); refuse to publish a number.
        parallel_speedup = None
        parallel_speedup_skipped = (
            f"needs >=2 cpus and >=2 jobs (cpu_count={cpu_count}, "
            f"jobs={jobs}); cold run kept for determinism check only"
        )
    else:
        parallel_speedup = round(serial_wall / cold_wall, 2)
        parallel_speedup_skipped = None

    # Phase 4: the same serial grid with full telemetry attached.  The
    # traced run must reproduce the untraced records exactly (tracing is
    # pure observation); the wall-clock ratio is the cost of having it ON.
    traced_events = 0
    traced_start = time.perf_counter()
    for config, untraced in zip(configs, serial_results):
        traced = run_experiment(dataclasses.replace(config, trace=True))
        traced_events += traced.events
        assert traced.stats.records == untraced.stats.records, (
            "traced run diverged from untraced run"
        )
    traced_wall = time.perf_counter() - traced_start

    # Phase 5: the same grid on the reference heap engine.  The default
    # wheel must reproduce the heap's records bit-for-bit (the scheduler
    # equivalence contract); the throughput ratio is the payoff.
    heap_events = 0
    heap_start = time.perf_counter()
    for config, wheel_result in zip(configs, serial_results):
        heap = run_experiment(dataclasses.replace(config, scheduler="heap"))
        heap_events += heap.events
        assert heap.stats.records == wheel_result.stats.records, (
            "heap scheduler diverged from wheel scheduler"
        )
        assert heap.events == wheel_result.events, (
            "heap scheduler fired a different event count"
        )
    heap_wall = time.perf_counter() - heap_start

    # Phase 6: autotuned wheel geometry.  Same records, and the chosen
    # geometry must be recorded so the run is reproducible from its
    # summary alone.
    auto_events = 0
    auto_start = time.perf_counter()
    auto_geometry = None
    for config, wheel_result in zip(configs, serial_results):
        auto = run_experiment(
            dataclasses.replace(config, scheduler="wheel:auto")
        )
        auto_events += auto.events
        assert auto.stats.records == wheel_result.stats.records, (
            "wheel:auto diverged from fixed-geometry wheel"
        )
        geometry = auto.scheduler_info.get("geometry")
        assert geometry, "wheel:auto did not record its geometry"
        auto_geometry = geometry
    auto_wall = time.perf_counter() - auto_start

    # Phase 7: streaming statistics.  Same simulation with the bounded-
    # memory collector: event counts and exact aggregates (count, mean)
    # must match the exact-mode run; the throughput delta is what the
    # fold-on-completion path costs.
    import random as _random

    from repro.metrics.fct import percentile
    from repro.telemetry.digest import TDigest

    streaming_events = 0
    streaming_start = time.perf_counter()
    for config, exact_result in zip(configs, serial_results):
        streaming = run_experiment(
            dataclasses.replace(config, streaming_stats=True)
        )
        streaming_events += streaming.events
        assert streaming.events == exact_result.events, (
            "streaming-stats run fired a different event count"
        )
        assert streaming.stats.count == exact_result.stats.count
        exact_mean = exact_result.stats.mean_ms()
        if exact_mean == exact_mean:  # skip NaN (no finished flows)
            assert abs(streaming.stats.mean_ms() - exact_mean) <= (
                1e-9 * abs(exact_mean)
            ), "streaming mean diverged from exact mean"
        assert streaming.stats.records == (), (
            "streaming run retained per-flow records"
        )
    streaming_wall = time.perf_counter() - streaming_start

    # Estimator accuracy probe, decoupled from the (small) grid: a
    # seeded heavy-tailed stream large enough that the digest — not the
    # exact reservoir — is the estimator of record.
    rng = _random.Random(1)
    digest_values = [rng.lognormvariate(12.0, 1.6) for _ in range(100_000)]
    digest = TDigest()
    digest_start = time.perf_counter()
    digest.extend(digest_values)
    digest_wall = time.perf_counter() - digest_start
    digest_values.sort()
    p99_truth = percentile(digest_values, 99.0)
    digest_p99_rel_err = abs(digest.quantile(0.99) - p99_truth) / p99_truth
    assert digest_p99_rel_err < 0.01, (
        f"digest p99 off by {digest_p99_rel_err:.2%} (contract: <1%)"
    )

    events_per_sec = round(total_events / serial_wall, 1)
    return {
        "code_version": code_version(),
        "grid_cells": len(configs),
        "n_flows": configs[0].n_flows,
        "jobs": jobs,
        "cpu_count": cpu_count,
        "default_scheduler": default_engine,
        "total_events": total_events,
        "events_per_sec": events_per_sec,
        # Alias of events_per_sec now that the wheel IS the default
        # engine; kept so cross-PR diffs and the hotpath gate have a
        # stable key.
        "events_per_sec_wheel": events_per_sec,
        "serial_wall_s": round(serial_wall, 3),
        "per_scheme_wall_s": {
            lb: round(wall, 3) for lb, wall in per_scheme_wall.items()
        },
        "parallel_cold_wall_s": round(cold_wall, 3),
        "parallel_speedup": parallel_speedup,
        "parallel_speedup_skipped": parallel_speedup_skipped,
        "warm_cache_wall_s": round(warm_wall, 3),
        "warm_cache_fraction_of_cold": round(warm_wall / cold_wall, 4),
        "events_per_sec_traced": round(traced_events / traced_wall, 1),
        "traced_wall_s": round(traced_wall, 3),
        "tracing_overhead_x": round(traced_wall / serial_wall, 3),
        "events_per_sec_heap": round(heap_events / heap_wall, 1),
        "heap_wall_s": round(heap_wall, 3),
        "wheel_speedup_x": round(heap_wall / serial_wall, 3),
        "events_per_sec_wheel_auto": round(auto_events / auto_wall, 1),
        "wheel_auto_wall_s": round(auto_wall, 3),
        "wheel_auto_geometry": auto_geometry,
        "events_per_sec_streaming": round(streaming_events / streaming_wall, 1),
        "streaming_wall_s": round(streaming_wall, 3),
        "streaming_overhead_x": round(streaming_wall / serial_wall, 3),
        "digest_p99_rel_err": round(digest_p99_rel_err, 6),
        "digest_ingest_values_per_sec": round(
            len(digest_values) / digest_wall, 1
        ),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel workers (default: $REPRO_JOBS, "
                             "else all cores)")
    parser.add_argument("--flows", type=int, default=None,
                        help="flows per cell (default 200; smoke 40)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="seeds per (scheme, load) cell")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny 4-cell grid for CI")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--min-wheel-speedup", type=float, default=None,
                        help="fail (exit 1) if the wheel engine's "
                             "speedup over the heap falls below this "
                             "ratio (CI uses 0.95 as a regression gate)")
    args = parser.parse_args(argv)

    schemes = SMOKE_SCHEMES if args.smoke else SCHEMES
    loads = SMOKE_LOADS if args.smoke else LOADS
    n_flows = args.flows or (40 if args.smoke else 200)
    size_scale = 0.05 if args.smoke else 0.1
    configs = build_grid(
        schemes, loads, range(1, args.seeds + 1), n_flows, size_scale
    )

    report = measure(configs, jobs=args.jobs)
    report["smoke"] = args.smoke
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwritten to {out}")
    if (
        args.min_wheel_speedup is not None
        and report["wheel_speedup_x"] < args.min_wheel_speedup
    ):
        print(
            f"FAIL: wheel speedup {report['wheel_speedup_x']}x < "
            f"required {args.min_wheel_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_perf_core_smoke(tmp_path):
    """Pytest entry point: the CI smoke run (4 cells, 2 workers)."""
    out = tmp_path / "BENCH_core.json"
    assert main(["--smoke", "--jobs", "2", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["grid_cells"] == 4
    assert report["default_scheduler"] == "wheel"
    assert report["events_per_sec"] > 0
    assert report["events_per_sec_heap"] > 0
    assert report["wheel_auto_geometry"] is not None
    assert report["events_per_sec_streaming"] > 0
    assert report["digest_p99_rel_err"] < 0.01
    # A warm rerun must come from the cache, far faster than simulating.
    assert report["warm_cache_fraction_of_cold"] < 0.5
    # The speedup field is either a real multi-core number or an
    # explicit skip — never a misleading 1-core artifact.
    if report["cpu_count"] < 2:
        assert report["parallel_speedup"] is None
        assert report["parallel_speedup_skipped"]
    else:
        assert report["parallel_speedup"] is not None


if __name__ == "__main__":
    sys.exit(main())
