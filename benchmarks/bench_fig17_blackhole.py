"""Fig. 17 — packet blackhole at one spine switch.

Paper setup: baseline fabric; one spine deterministically drops packets
for half of the (src, dst) IP pairs from rack 1 to rack 8; web-search.

Paper shape (17a avg FCT, 17b unfinished fraction):

* Hermes detects the blackhole after 3 timeouts, every flow finishes,
  and it is >1.6x better than everything else;
* ECMP leaves ~1.5% of flows unfinished, inflating its average FCT
  9-22x over Hermes;
* CONGA shifts *more* flows onto the blackholed switch (it looks idle)
  — as bad as or worse than ECMP;
* Presto* finishes all flows (round robin) but with a hugely inflated
  FCT; LetFlow is second best.

Unfinished flows are charged the full run length in the penalized mean,
matching how the paper's averages account for them.
"""

from _common import emit, mean_over_seeds, run_grid
from repro.experiments.config import FailureSpec
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology

LOAD = 0.4
SCHEMES = ("ecmp", "presto", "letflow", "conga", "hermes")
N_FLOWS = 120


def reproduce():
    return run_grid(
        bench_topology(n_leaves=4, n_spines=4, hosts_per_leaf=3),
        SCHEMES,
        (LOAD,),
        "web-search",
        n_flows=N_FLOWS,
        size_scale=1.0,
        seeds=(1,),
        failure=FailureSpec(
            kind="blackhole", spine=0, src_leaf=0, dst_leaf=1,
            pair_fraction=0.5,
        ),
        extra_drain_ns=3_000_000_000,
    )


def test_fig17_blackhole(once):
    grid = once(reproduce)
    rows = []
    for lb in SCHEMES:
        runs = grid[lb][LOAD]
        rows.append([
            lb,
            mean_over_seeds(runs, lambda r: r.mean_fct_ms_with_penalty()),
            mean_over_seeds(runs, lambda r: r.stats.unfinished_fraction),
        ])
    body = format_table(
        ["scheme", "avg FCT incl. unfinished (ms)", "unfinished fraction"],
        rows,
    )
    body += (
        "\npaper: Hermes finishes everything and is >1.6x better; ECMP"
        " ~1.5% unfinished (9-22x worse); CONGA as bad or worse than ECMP;"
        " Presto* finishes but slowly; LetFlow second best"
    )
    emit("fig17_blackhole", "Fig. 17: packet blackhole", body)

    def penalized(lb):
        return mean_over_seeds(
            grid[lb][LOAD], lambda r: r.mean_fct_ms_with_penalty()
        )

    def unfinished(lb):
        return mean_over_seeds(
            grid[lb][LOAD], lambda r: r.stats.unfinished_fraction
        )

    assert unfinished("hermes") == 0.0   # detection after 3 timeouts
    assert unfinished("presto") <= unfinished("ecmp")
    assert penalized("hermes") < penalized("ecmp")
    assert penalized("hermes") < penalized("presto")
    assert penalized("hermes") <= penalized("letflow") * 1.15
