"""Fig. 16-style detection/recovery timeline on a scheduled link outage.

Paper context (§5.3, Figs. 16-18): Hermes' value is not just lower FCT
under a *standing* malfunction but how fast it *detects* a fresh one and
how cleanly it *recovers* once the network heals.  The static failure
benches cannot show that — their malfunction exists from t=0 and never
goes away.  This bench drives the dynamic fault plane instead: one
leaf-spine link goes admin-down mid-run and comes back 35 ms later,
and the run reports the paper's two timeline metrics per scheme:

* **time-to-detect** — first applied fault to the scheme's first failure
  detection (τ-sweep, RTO attribution or per-flow blackhole evidence);
* **time-to-recover** — last reverted fault until the last
  timeout-afflicted flow drained.

Paper shape: Hermes detects within its timeout/sweep timescale and
recovers promptly; ECMP never detects (it has no failure detector) and
strands the flows hashed onto the dark link — they surface as
``unrecovered`` timeouts, the Fig. 17b signature.

Reproduction note: unscaled sizes and timers on the small bench fabric —
detection runs on wall-clock timers (10 ms RTO, τ sweep), which cannot
be size-scaled without collapsing the detection-to-FCT ratio
(see EXPERIMENTS.md).
"""

from _common import emit, run_grid
from repro.experiments.report import format_table
from repro.experiments.scenarios import bench_topology
from repro.faults.spec import link_down, link_up, schedule

MS = 1_000_000
LOAD = 0.5
SCHEMES = ("ecmp", "letflow", "conga", "hermes")
N_FLOWS = 100

#: One clean outage cycle: down at 20 ms (mid-run, traffic flowing),
#: healed at 55 ms — long enough to outlast several RTOs, so detection
#: has unambiguous evidence to fire on.
FAULTS = schedule(
    link_down(20 * MS, leaf=0, spine=0),
    link_up(55 * MS, leaf=0, spine=0),
)


def reproduce():
    return run_grid(
        bench_topology(n_leaves=4, n_spines=4, hosts_per_leaf=3),
        SCHEMES,
        (LOAD,),
        "web-search",
        n_flows=N_FLOWS,
        size_scale=1.0,
        seeds=(2,),
        faults=FAULTS,
        extra_drain_ns=40 * MS,
    )


def _fmt_ms(value_ns):
    return "-" if value_ns is None else f"{value_ns / MS:.3f}"


def test_recovery_timeline(once):
    grid = once(reproduce)
    rows = []
    for lb in SCHEMES:
        r = grid[lb][LOAD][0]
        rows.append([
            lb,
            _fmt_ms(r.detection_ns),
            _fmt_ms(r.recovery_ns),
            r.unrecovered_timeouts,
            f"{r.mean_fct_ms_with_penalty():.3f}",
        ])
    body = format_table(
        ["scheme", "detect (ms)", "recover (ms)", "unrecovered",
         "FCT+penalty (ms)"],
        rows,
    )
    timeline = grid[SCHEMES[0]][LOAD][0].fault_timeline
    body += "\nfault timeline: " + "; ".join(
        f"t={r['t'] / MS:g}ms {r['action']} {r['target']} ({r['phase']})"
        for r in timeline
    )
    body += (
        "\npaper: Hermes detects within its timeout/sweep timescale and"
        " drains the damage once the link heals; ECMP never detects and"
        " strands the flows hashed onto the dark link"
    )
    emit("recovery_timeline", "Detection/recovery on a link outage", body)

    hermes = grid["hermes"][LOAD][0]
    assert hermes.detection_ns is not None, "Hermes must detect the outage"
    assert hermes.recovery_ns is not None, "Hermes must drain the damage"
    assert hermes.unrecovered_timeouts == 0

    ecmp = grid["ecmp"][LOAD][0]
    assert ecmp.detection_ns is None, "ECMP has no failure detector"
    assert ecmp.unrecovered_timeouts > 0, "ECMP must strand hashed flows"
