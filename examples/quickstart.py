#!/usr/bin/env python3
"""Quickstart: compare ECMP against Hermes on a leaf-spine fabric.

Builds a 4x4 leaf-spine fabric (32 hosts, 10 Gbps, 2:1 oversubscribed),
offers a web-search workload at 60% load, and prints the flow completion
time statistics for both schemes.

Run:  python examples/quickstart.py
"""

from repro.api import ExperimentConfig, bench_topology, format_table, run_experiment


def main() -> None:
    rows = []
    for scheme in ("ecmp", "hermes"):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(),
                lb=scheme,
                workload="web-search",
                load=0.6,
                n_flows=200,
                seed=1,
                # Scale flow sizes and protocol timers 5x down so the run
                # finishes in seconds; relative results are preserved.
                size_scale=0.2,
                time_scale=0.2,
            )
        )
        stats = result.stats
        rows.append(
            [
                scheme,
                result.mean_fct_ms,
                stats.small.mean_ms(),
                stats.small.p99_ms(),
                stats.large.mean_ms(),
                result.total_reroutes,
            ]
        )
    print(
        format_table(
            [
                "scheme",
                "avg FCT (ms)",
                "small avg",
                "small p99",
                "large avg",
                "reroutes",
            ],
            rows,
        )
    )
    print("\nHermes senses path conditions from ECN/RTT, probes with")
    print("power-of-two-choices, and reroutes timely yet cautiously.")


if __name__ == "__main__":
    main()
