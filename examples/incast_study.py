#!/usr/bin/env python3
"""Incast study: a synchronized many-to-one burst under each scheme.

The paper's discussion (§6) notes Hermes avoids herd behaviour — it
leverages power-of-two-choices and never reroutes small or fast flows —
but takes at least one RTT to sense, so it does not *directly* handle
microbursts.  This study fires a 12-to-1 incast of 256 KB flows and
reports burst completion time and the receiver downlink's peak queue.

Run:  python examples/incast_study.py
"""

from repro.api import (
    Fabric,
    QueueSampler,
    RngStreams,
    TopologyConfig,
    format_table,
    incast,
    install_lb,
    DctcpFlow,
    make_simulator,
)

FLOW_BYTES = 256_000
N_SENDERS = 12


def run_scheme(scheme: str):
    config = TopologyConfig(
        n_leaves=4, n_spines=4, hosts_per_leaf=4,
        host_link_gbps=10.0, spine_link_gbps=10.0,
        prop_delay_ns=1_000, ecn_threshold_bytes=97_500,
    )
    fabric = Fabric(make_simulator(), config, RngStreams(11))
    install_lb(fabric, scheme)
    target = 0
    arrivals = incast(
        config, target, N_SENDERS, FLOW_BYTES, fabric.rng.get("incast")
    )
    down = fabric.topology.leaf_down[target]
    sampler = QueueSampler(fabric.sim, [down], period_ns=20_000)
    sampler.start()
    flows = []
    for arrival in arrivals:
        flow = DctcpFlow(fabric, arrival.src, arrival.dst, arrival.size_bytes)
        fabric.register_flow(flow)
        flows.append(flow)
        fabric.sim.schedule_at(arrival.time_ns, flow.start)
    fabric.sim.run(until=5_000_000_000)
    done = [f for f in flows if f.finished]
    burst_ms = max(f.finish_time for f in done) / 1e6 if done else float("nan")
    return (
        burst_ms,
        sampler.max_backlog(down.name) / 1_000,
        sum(f.timeout_count for f in flows),
        len(done),
    )


def main() -> None:
    rows = []
    for scheme in ("ecmp", "presto", "conga", "hermes"):
        burst_ms, peak_kb, timeouts, done = run_scheme(scheme)
        rows.append([scheme, burst_ms, peak_kb, timeouts, f"{done}/{N_SENDERS}"])
    print(
        format_table(
            ["scheme", "burst completion (ms)", "peak rx queue (KB)",
             "timeouts", "finished"],
            rows,
        )
    )
    print("\nThe bottleneck is the receiver downlink — no load balancer can")
    print("remove it; the point is that none of them should make it worse")
    print("(and DCTCP's ECN keeps the queue from overflowing).")


if __name__ == "__main__":
    main()
