#!/usr/bin/env python3
"""Switch-failure drill: watch Hermes detect a blackhole and random drops.

Injects the two Microsoft-reported switch malfunctions the paper studies
(§2.1) into a fabric and shows Hermes' sensing machinery at work:

* a **packet blackhole** (all packets of some src-dst pairs dropped on
  one spine) — detected per pair after 3 timeouts with zero ACKs;
* **silent random packet drops** (2% on one spine) — detected by the
  10 ms retransmission-fraction sweep on non-congested paths.

Run:  python examples/switch_failure_drill.py
"""

from repro.api import (
    ExperimentConfig,
    FailureSpec,
    bench_topology,
    format_table,
    run_experiment,
)


def drill(kind: str) -> None:
    print(f"--- {kind} on spine 0 ---")
    failure = FailureSpec(
        kind=kind, spine=0, drop_rate=0.02, src_leaf=0, dst_leaf=1,
        pair_fraction=0.5,
    )
    rows = []
    detections = {}
    for scheme in ("ecmp", "hermes"):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(n_leaves=4, n_spines=4, hosts_per_leaf=3),
                lb=scheme,
                workload="web-search",
                load=0.4,
                n_flows=120,
                seed=3,
                failure=failure,
                extra_drain_ns=3_000_000_000,
            )
        )
        rows.append(
            [
                scheme,
                result.mean_fct_ms_with_penalty(),
                result.stats.unfinished_count,
                result.total_reroutes,
            ]
        )
        if scheme == "hermes":
            leaf_states = result.shared["leaf_states"]
            detections["sweep detections"] = sum(
                st.failed_detections for st in leaf_states.values()
            )
            # Blackhole detections live in the per-host agents.
            agents = [h.lb for h in result.fabric.hosts if h.lb is not None]
            detections["blackholed pairs found"] = sum(
                len(agent.failed_pairs) for agent in agents
            )
    print(
        format_table(
            ["scheme", "avg FCT incl. unfinished (ms)", "unfinished",
             "reroutes"],
            rows,
        )
    )
    for key, value in detections.items():
        print(f"{key}: {value}")
    print()


def main() -> None:
    drill("blackhole")
    drill("random_drop")
    print("Hermes routes around failed switches; ECMP cannot — blackholed")
    print("flows never finish and randomly-dropped ones crawl.")


if __name__ == "__main__":
    main()
