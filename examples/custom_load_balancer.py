#!/usr/bin/env python3
"""Extending the library: write and evaluate your own load balancer.

Implements a tiny custom scheme — "least-loaded uplink at flow start"
(a static variant of DRILL) — registers it under the factory, and races
it against ECMP and Hermes with the standard harness.  This is the
pattern for prototyping new datacenter load-balancing ideas on top of
this library.

Run:  python examples/custom_load_balancer.py
"""

from repro.api import (
    LB_REGISTRY,
    ExperimentConfig,
    LoadBalancer,
    bench_topology,
    format_table,
    run_experiment,
)


class LeastQueueAtStartLB(LoadBalancer):
    """Pick the least-backlogged local uplink once, at flow start.

    Congestion-aware at placement time only: no rerouting, no remote
    visibility.  A useful strawman between ECMP and DRILL.
    """

    name = "least-queue-start"

    def select_path(self, flow, wire_bytes: int) -> int:
        if flow.current_path >= 0:
            return flow.current_path
        uplinks = self.topology.leaf_up[self.host.leaf]
        paths = self.paths_to(flow.dst)
        return min(paths, key=lambda p: uplinks[p].backlog_bytes)


def install_least_queue(fabric, **params):
    for host in fabric.hosts:
        host.lb = LeastQueueAtStartLB(
            host, fabric, fabric.rng.spawn("least-queue", host.host_id)
        )
    return {}


def main() -> None:
    LB_REGISTRY["least-queue-start"] = install_least_queue

    rows = []
    for scheme in ("ecmp", "least-queue-start", "hermes"):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(),
                lb=scheme,
                workload="web-search",
                load=0.7,
                n_flows=200,
                seed=5,
                size_scale=0.2,
                time_scale=0.2,
            )
        )
        rows.append([scheme, result.mean_fct_ms, result.stats.small.p99_ms()])
    print(format_table(["scheme", "avg FCT (ms)", "small p99 (ms)"], rows))
    print("\nAny scheme implementing LoadBalancer plugs into the harness;")
    print("register an installer in LB_REGISTRY and name it in the config.")


if __name__ == "__main__":
    main()
