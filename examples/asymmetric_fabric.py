#!/usr/bin/env python3
"""Asymmetric fabric: how each load balancer copes with degraded links.

The scenario the paper's introduction motivates: a datacenter evolves,
some leaf-spine links run at 2 Gbps instead of 10 Gbps (or get cut), and
the load balancer must route around the slow paths.  This script
degrades 20% of the links and compares every implemented scheme on the
steady data-mining workload — the case where flowlet-based schemes
starve (no gaps to reroute on) and congestion-oblivious spraying suffers
congestion mismatch.

Run:  python examples/asymmetric_fabric.py
"""

from repro.api import (
    ExperimentConfig,
    bench_topology,
    format_table,
    run_experiment,
    scheme_names,
    spraying_schemes,
)

SCHEMES = scheme_names()  # the whole factory registry, new schemes included


def main() -> None:
    topology = bench_topology(asymmetric=True)
    degraded = [
        f"leaf{l}->spine{s}@{rate:g}G"
        for (l, s), rate in topology.link_overrides.items()
    ]
    print(f"degraded links: {', '.join(degraded)}\n")

    rows = []
    for scheme in SCHEMES:
        extra = {}
        if scheme in spraying_schemes():
            # Paper methodology: mask reordering for the spraying schemes.
            extra["reorder_mask_us"] = 100.0
        result = run_experiment(
            ExperimentConfig(
                topology=topology,
                lb=scheme,
                workload="data-mining",
                load=0.6,
                n_flows=150,
                seed=2,
                size_scale=0.2,
                time_scale=0.2,
                **extra,
            )
        )
        rows.append(
            [
                scheme,
                result.mean_fct_ms,
                result.stats.large.mean_ms(),
                result.total_reroutes,
            ]
        )
    print(
        format_table(
            ["scheme", "avg FCT (ms)", "large avg (ms)", "reroutes"], rows
        )
    )
    print("\nExpected shape (paper Fig. 14): Hermes leads; CONGA close;")
    print("flowlet schemes (LetFlow/CLOVE) trail on steady traffic;")
    print("spraying (Presto/DRB) suffers congestion mismatch.")


if __name__ == "__main__":
    main()
