"""Worker pool: pulls jobs off the queue, runs them, survives crashes.

Isolation is layered:

* **Cell level** — every cell runs in a worker *process* via the
  crash-tolerant :func:`~repro.experiments.parallel.run_cells` grid
  runner, which already restarts broken process pools and falls back
  to serial execution; a segfaulting or OOM-killed cell worker costs
  that pool round, never the service.
* **Job level (bulkhead)** — each job executes inside a catch-all on
  its worker thread: any exception marks *that job* failed and the
  thread moves on to the next one.  One poisoned job cannot take the
  pool down.
* **Pool level** — a supervisor respawns worker threads that died
  anyway (the catch-all makes this near-impossible, but an always-on
  service does not get to assume "near").  ``ensure_workers`` runs on
  every submission and health probe, so the pool self-heals on the
  paths that matter.

Per-job budgets: ``cell_timeout_s`` is threaded *explicitly* into
``run_cells`` — service threads must not mutate ``REPRO_CELL_TIMEOUT``
(process-global, races across concurrent jobs).
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.parallel import run_cells
from repro.serve.queue import JobQueue
from repro.serve.state import DONE, FAILED, RUNNING, JobTable, UnknownJob

__all__ = ["WorkerPool"]


class WorkerPool:
    """``n_workers`` daemon threads draining a :class:`JobQueue`.

    Args:
        queue / table: the shared service plumbing.
        n_workers: concurrent jobs (each job fans its *cells* out over
            processes on its own; keep this small).
        use_cache / cache_dir: forwarded to ``run_cells``.
        default_cell_timeout_s: budget for jobs that set none.
        publish: event-broker callback for per-cell telemetry events.
    """

    def __init__(
        self,
        queue: JobQueue,
        table: JobTable,
        n_workers: int = 2,
        use_cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
        default_cell_timeout_s: Optional[float] = None,
        publish: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.queue = queue
        self.table = table
        self.n_workers = n_workers
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.default_cell_timeout_s = default_cell_timeout_s
        self._publish = publish
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        #: Worker threads respawned after an unexpected death — the
        #: restart-on-crash counter the health endpoint reports.
        self.restarts = 0
        #: Jobs completed/failed since start (metrics).
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        with self._lock:
            for i in range(self.n_workers):
                self._spawn(i)

    def _spawn(self, index: int) -> None:
        thread = threading.Thread(
            target=self._work_loop,
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def ensure_workers(self) -> int:
        """Respawn dead worker threads; returns how many are alive.

        Called from submission and health paths so the pool self-heals
        without a dedicated supervisor thread.
        """
        if self._stop.is_set():
            return 0
        with self._lock:
            for i, thread in enumerate(self._threads):
                if not thread.is_alive():
                    self.restarts += 1
                    thread = threading.Thread(
                        target=self._work_loop,
                        name=f"repro-serve-worker-r{self.restarts}",
                        daemon=True,
                    )
                    self._threads[i] = thread
                    thread.start()
            return sum(1 for t in self._threads if t.is_alive())

    def alive(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def stop(self, timeout: float = 5.0) -> None:
        """Stop pulling new jobs and wait briefly for in-flight ones."""
        self._stop.set()
        self.queue.close()
        for thread in list(self._threads):
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def _work_loop(self) -> None:
        while not self._stop.is_set():
            job_id = self.queue.pop(timeout=0.2)
            if job_id is None:
                continue
            try:
                self._run_job(job_id)
            except Exception:  # noqa: BLE001 — bulkhead, see module doc
                # _run_job already tried to mark the job failed; if even
                # that failed the job table is gone and so is the point
                # of crashing the worker over it.
                traceback.print_exc()

    def _run_job(self, job_id: str) -> None:
        try:
            job = self.table.get(job_id)
        except UnknownJob:
            return
        self.table.transition(job_id, RUNNING)
        timeout = (
            job.cell_timeout_s
            if job.cell_timeout_s is not None
            else self.default_cell_timeout_s
        )
        try:
            results = run_cells(
                job.configs,
                jobs=job.jobs_per_cell,
                use_cache=self.use_cache,
                cache_dir=self.cache_dir,
                cell_timeout_s=timeout,
            )
        except Exception as exc:  # noqa: BLE001 — job bulkhead
            self.table.transition(
                job_id, FAILED, error=f"{type(exc).__name__}: {exc}"
            )
            with self._lock:
                self.failed += 1
            return
        failed_cells = [r for r in results if r.error is not None]
        self._emit_cells(job_id, results)
        if failed_cells:
            self.table.transition(
                job_id,
                FAILED,
                error=(
                    f"{len(failed_cells)}/{len(results)} cells failed: "
                    + "; ".join(r.error for r in failed_cells[:3])
                ),
                results=list(results),
            )
            with self._lock:
                self.failed += 1
        else:
            self.table.transition(job_id, DONE, results=list(results))
            with self._lock:
                self.completed += 1

    def _emit_cells(self, job_id: str, results: List[Any]) -> None:
        """Publish one telemetry event per finished cell — the series
        SSE clients chart while a grid completes."""
        if self._publish is None:
            return
        for i, summary in enumerate(results):
            mean = summary.stats.mean_ms()
            self._publish(
                {
                    "kind": "telemetry",
                    "event": "cell",
                    "job_id": job_id,
                    "cell": i,
                    "lb": summary.config.lb,
                    "load": summary.config.load,
                    # NaN (no finished flows) is not JSON — send null.
                    "mean_fct_ms": None if mean != mean else mean,
                    "events": summary.events,
                    "error": summary.error,
                }
            )
