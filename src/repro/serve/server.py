"""Always-on experiment service: stdlib HTTP JSON API + SSE.

One :class:`ExperimentService` object owns the whole stack — job table,
bounded queue, worker pool, event broker, and a
``ThreadingHTTPServer`` speaking a small JSON protocol:

====================  ======================================================
``POST /submit``      body ``{"configs": [...], "priority": 0, ...}`` →
                      ``{"job_id", "deduplicated", "state"}``; **429** with
                      a backpressure error once the queue is full.
``GET /jobs``         every job's public view, submission order.
``GET /status/<id>``  one job's public view.
``GET /result/<id>``  per-cell summaries (``summary_dict`` shape) of a
                      finished job; 409 while it is still active.
``POST /cancel/<id>`` cancel a queued job; 409 if it already left the queue.
``GET /healthz``      liveness: queue depth, workers alive (respawning any
                      that died), restart counter.
``GET /metrics``      counters in JSON (jobs by state, completed/failed,
                      queue depth, cache size).
``GET /events``       ``text/event-stream`` of job lifecycle + telemetry
                      events (optionally ``?job_id=`` filtered), with
                      keep-alive comments so proxies do not reap it.
====================  ======================================================

Everything is stdlib — the service adds no dependency, just like the
rest of the repo.  The in-process surface (``service.submit(...)``)
is the exact same code path the HTTP layer calls, so tests and
notebooks can drive a service without sockets.
"""

from __future__ import annotations

import json
import queue as _queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import summary_dict
from repro.experiments.parallel import ResultCache, cache_enabled
from repro.serve.queue import JobQueue, QueueFull, Submission
from repro.serve.state import (
    ACTIVE_STATES,
    DONE,
    FAILED,
    JobTable,
    UnknownJob,
)
from repro.serve.workers import WorkerPool

__all__ = ["EventBroker", "ExperimentService", "serve"]


class EventBroker:
    """Fan-out of service events to any number of SSE subscribers.

    Subscribers get a bounded queue; a subscriber that stops draining
    (dead connection, slow client) overflows *its own* queue and loses
    events — never blocking publishers or other subscribers.
    """

    def __init__(self, buffer: int = 256) -> None:
        self._lock = threading.Lock()
        self._subscribers: List[_queue.Queue] = []
        self._buffer = buffer
        #: Monotone event counter (metrics).
        self.published = 0

    def subscribe(self) -> _queue.Queue:
        sub: _queue.Queue = _queue.Queue(maxsize=self._buffer)
        with self._lock:
            self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: _queue.Queue) -> None:
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def publish(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self.published += 1
            subscribers = list(self._subscribers)
        for sub in subscribers:
            try:
                sub.put_nowait(event)
            except _queue.Full:
                pass  # slow subscriber sheds; publishers never block


class ExperimentService:
    """The assembled service (queue + pool + broker + job table).

    Usable entirely in-process — :meth:`submit` / :meth:`wait` /
    :meth:`result` — or over HTTP via :meth:`start_http`.

    Args:
        n_workers: concurrent jobs.
        queue_capacity: queued-job bound (backpressure past it).
        use_cache / cache_dir: result-cache knobs for ``run_cells``.
        default_cell_timeout_s: per-cell budget for jobs that set none.
    """

    def __init__(
        self,
        n_workers: int = 2,
        queue_capacity: int = 64,
        use_cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
        default_cell_timeout_s: Optional[float] = None,
    ) -> None:
        self.broker = EventBroker()
        self.table = JobTable(publish=self.broker.publish)
        self.queue = JobQueue(self.table, capacity=queue_capacity)
        self.pool = WorkerPool(
            self.queue,
            self.table,
            n_workers=n_workers,
            use_cache=use_cache,
            cache_dir=cache_dir,
            default_cell_timeout_s=default_cell_timeout_s,
            publish=self.broker.publish,
        )
        self._cache_dir = cache_dir
        self._use_cache = use_cache
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # In-process surface
    # ------------------------------------------------------------------ #

    def start(self) -> "ExperimentService":
        self.pool.start()
        return self

    def submit(
        self,
        configs: Sequence[ExperimentConfig],
        priority: int = 0,
        jobs_per_cell: Optional[int] = None,
        cell_timeout_s: Optional[float] = None,
    ) -> Submission:
        """Enqueue a grid; see :meth:`JobQueue.submit` for semantics
        (raises :class:`QueueFull` under backpressure)."""
        self.pool.ensure_workers()
        return self.queue.submit(
            configs,
            priority=priority,
            jobs_per_cell=jobs_per_cell,
            cell_timeout_s=cell_timeout_s,
        )

    def wait(self, job_id: str, timeout_s: float = 60.0) -> Dict[str, Any]:
        """Block until the job leaves the active states (or timeout);
        returns its public view either way."""
        import time

        deadline = time.monotonic() + timeout_s
        while True:
            job = self.table.get(job_id)
            if job.state not in ACTIVE_STATES:
                return job.to_dict()
            if time.monotonic() >= deadline:
                return job.to_dict()
            time.sleep(0.05)

    def result(self, job_id: str) -> List[Any]:
        """The finished job's :class:`ResultSummary` list (input order).

        Raises ``RuntimeError`` while the job is still active or was
        cancelled without producing results.
        """
        job = self.table.get(job_id)
        if job.state in ACTIVE_STATES or job.results is None:
            raise RuntimeError(
                f"{job_id} has no results (state: {job.state})"
            )
        return job.results

    def cancel(self, job_id: str) -> bool:
        self.table.get(job_id)  # raises UnknownJob for bad ids
        return self.queue.cancel(job_id)

    def health(self) -> Dict[str, Any]:
        """Liveness view; also self-heals the pool (respawn-on-probe)."""
        alive = self.pool.ensure_workers()
        return {
            "ok": alive > 0,
            "workers_alive": alive,
            "worker_restarts": self.pool.restarts,
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.capacity,
        }

    def metrics(self) -> Dict[str, Any]:
        cache_entries = None
        cache_bytes = None
        caching = (
            self._use_cache if self._use_cache is not None else cache_enabled()
        )
        if caching:
            cache = ResultCache(self._cache_dir)
            cache_entries = cache.size()
            cache_bytes = cache.total_bytes()
        out = {
            "jobs": self.table.counts(),
            "jobs_completed": self.pool.completed,
            "jobs_failed": self.pool.failed,
            "queue_depth": self.queue.depth,
            "worker_restarts": self.pool.restarts,
            "events_published": self.broker.published,
            "cache_entries": cache_entries,
            "cache_bytes": cache_bytes,
        }
        return out

    def stop(self) -> None:
        self.stop_http()
        self.pool.stop()

    # ------------------------------------------------------------------ #
    # HTTP surface
    # ------------------------------------------------------------------ #

    def start_http(
        self, host: str = "127.0.0.1", port: int = 8642
    ) -> ThreadingHTTPServer:
        """Bind and serve on a daemon thread; returns the server (its
        ``server_address`` carries the actual port when ``port=0``)."""
        service = self

        class Handler(_ServiceHandler):
            pass

        Handler.service = service
        httpd = ThreadingHTTPServer((host, port), Handler)
        httpd.daemon_threads = True
        self._httpd = httpd
        self._http_thread = threading.Thread(
            target=httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._http_thread.start()
        return httpd

    def stop_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None

    @property
    def http_address(self) -> Optional[tuple]:
        return self._httpd.server_address if self._httpd else None


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto one shared :class:`ExperimentService`."""

    service: ExperimentService  # installed by start_http
    protocol_version = "HTTP/1.1"

    # -------------------------- plumbing ------------------------------ #

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        pass  # the service publishes events; access logs are noise

    def _json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0"))
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON") from None
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    # --------------------------- routes ------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, _, query = self.path.partition("?")
        try:
            if path == "/healthz":
                health = self.service.health()
                self._json(200 if health["ok"] else 503, health)
            elif path == "/metrics":
                self._json(200, self.service.metrics())
            elif path == "/jobs":
                self._json(200, {"jobs": self.service.table.snapshot()})
            elif path.startswith("/status/"):
                job_id = path[len("/status/"):]
                self._json(200, self.service.table.get(job_id).to_dict())
            elif path.startswith("/result/"):
                self._get_result(path[len("/result/"):])
            elif path == "/events":
                self._stream_events(query)
            else:
                self._error(404, f"unknown path {path!r}")
        except UnknownJob as exc:
            self._error(404, f"unknown job {exc.args[0]!r}")
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — handler bulkhead
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/submit":
                self._post_submit()
            elif self.path.startswith("/cancel/"):
                self._post_cancel(self.path[len("/cancel/"):])
            else:
                self._error(404, f"unknown path {self.path!r}")
        except UnknownJob as exc:
            self._error(404, f"unknown job {exc.args[0]!r}")
        except ValueError as exc:
            self._error(400, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001 — handler bulkhead
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def _post_submit(self) -> None:
        doc = self._read_body()
        raw_configs = doc.get("configs")
        if not isinstance(raw_configs, list) or not raw_configs:
            raise ValueError("'configs' must be a non-empty list")
        configs = [ExperimentConfig.from_dict(c) for c in raw_configs]
        try:
            submission = self.service.submit(
                configs,
                priority=int(doc.get("priority", 0)),
                jobs_per_cell=doc.get("jobs_per_cell"),
                cell_timeout_s=doc.get("cell_timeout_s"),
            )
        except QueueFull as exc:
            # 429: the canonical "shed load, retry later" status.
            self._json(429, {"error": str(exc), "backpressure": True})
            return
        self._json(
            202 if not submission.deduplicated else 200,
            {
                "job_id": submission.job.job_id,
                "state": submission.job.state,
                "deduplicated": submission.deduplicated,
            },
        )

    def _post_cancel(self, job_id: str) -> None:
        if self.service.cancel(job_id):
            self._json(200, {"job_id": job_id, "state": "cancelled"})
        else:
            self._error(
                409, f"{job_id} already left the queue; cannot cancel"
            )

    def _get_result(self, job_id: str) -> None:
        job = self.service.table.get(job_id)
        if job.state in ACTIVE_STATES:
            self._error(409, f"{job_id} is still {job.state}")
            return
        if job.results is None:
            self._error(409, f"{job_id} produced no results ({job.state})")
            return
        cells = []
        for summary in job.results:
            if summary.error is not None:
                cells.append({"error": summary.error})
            else:
                cells.append(summary_dict(summary))
        self._json(
            200,
            {
                "job_id": job_id,
                "state": job.state,
                "error": job.error,
                "cells": cells,
            },
        )

    # ----------------------------- SSE -------------------------------- #

    def _stream_events(self, query: str) -> None:
        """Server-sent events: every broker event (optionally filtered
        to one job), 15s keep-alive comments between them."""
        job_filter: Optional[str] = None
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key == "job_id" and value:
                job_filter = value
        sub = self.service.broker.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            while True:
                try:
                    event = sub.get(timeout=15.0)
                except _queue.Empty:
                    # SSE comment line: keeps proxies/clients from
                    # reaping an idle stream.
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if job_filter and event.get("job_id") != job_filter:
                    continue
                data = json.dumps(event, sort_keys=True)
                kind = event.get("kind", "event")
                payload = f"event: {kind}\ndata: {data}\n\n".encode()
                self.wfile.write(payload)
                self.wfile.flush()
                if (
                    job_filter
                    and event.get("kind") == "job"
                    and event.get("state") in (DONE, FAILED, "cancelled")
                ):
                    return  # the watched job is over; end the stream
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client disconnected; normal SSE termination
        finally:
            self.service.broker.unsubscribe(sub)


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    n_workers: int = 2,
    queue_capacity: int = 64,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    default_cell_timeout_s: Optional[float] = None,
) -> ExperimentService:
    """Build, start and HTTP-bind an :class:`ExperimentService`.

    Returns the running service; callers own its lifetime
    (``service.stop()``).  ``port=0`` binds an ephemeral port —
    ``service.http_address`` tells you which.
    """
    service = ExperimentService(
        n_workers=n_workers,
        queue_capacity=queue_capacity,
        use_cache=use_cache,
        cache_dir=cache_dir,
        default_cell_timeout_s=default_cell_timeout_s,
    )
    service.start()
    service.start_http(host=host, port=port)
    return service
