"""Job lifecycle state for the experiment service.

A job is one grid submission (a list of :class:`ExperimentConfig`
cells).  Its lifecycle is a small monotone state machine::

    queued ──> running ──> done
       │           │
       │           └─────> failed
       └─────────────────> cancelled      (running jobs cannot be
                                           cancelled — cells are
                                           processes mid-simulation)

Transitions are validated (``running -> queued`` is a bug, not a
state), timestamped, and published to the event broker so SSE clients
watch jobs move without polling.  All state lives behind one lock in
:class:`JobTable`; the table is the single source of truth the queue,
the worker pool and the HTTP layer all share.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobTable",
    "InvalidTransition",
    "UnknownJob",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States from which a job can still produce a result.
ACTIVE_STATES = (QUEUED, RUNNING)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

_TRANSITIONS = {
    QUEUED: (RUNNING, CANCELLED),
    RUNNING: (DONE, FAILED),
    DONE: (),
    FAILED: (),
    CANCELLED: (),
}


class InvalidTransition(RuntimeError):
    """A lifecycle move the state machine forbids."""


class UnknownJob(KeyError):
    """Lookup of a job id the table has never seen."""


@dataclass
class Job:
    """One grid submission and everything that happened to it."""

    job_id: str
    configs: List[ExperimentConfig]
    #: Content address of the work (cell keys + run options); identical
    #: resubmissions dedup onto the live or finished job with this key.
    job_key: str
    priority: int = 0
    #: Worker-process fan-out inside the job (``run_cells(jobs=...)``).
    jobs_per_cell: Optional[int] = None
    #: Per-cell wall-clock budget (``run_cells(cell_timeout_s=...)``).
    cell_timeout_s: Optional[float] = None
    state: str = QUEUED
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Why the job failed (``None`` otherwise).
    error: Optional[str] = None
    #: One ResultSummary per config, input order, once ``done``.
    results: Optional[List[Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe public view (results are exposed by the result
        endpoint, not the status one — they can be large)."""
        return {
            "job_id": self.job_id,
            "job_key": self.job_key,
            "state": self.state,
            "priority": self.priority,
            "cells": len(self.configs),
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
        }


class JobTable:
    """Thread-safe registry of every job the service has seen.

    Args:
        publish: callback receiving one JSON-safe event dict per
            lifecycle transition (the SSE broker's ``publish``); ``None``
            disables publication.
    """

    def __init__(
        self, publish: Optional[Callable[[Dict[str, Any]], None]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = itertools.count(1)
        self._publish = publish

    def new_job(
        self,
        configs: Sequence[ExperimentConfig],
        job_key: str,
        priority: int = 0,
        jobs_per_cell: Optional[int] = None,
        cell_timeout_s: Optional[float] = None,
    ) -> Job:
        with self._lock:
            job_id = f"job-{next(self._counter):06d}"
            job = Job(
                job_id=job_id,
                configs=list(configs),
                job_key=job_key,
                priority=priority,
                jobs_per_cell=jobs_per_cell,
                cell_timeout_s=cell_timeout_s,
            )
            self._jobs[job_id] = job
        self._emit(job, "submitted")
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None

    def transition(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        results: Optional[List[Any]] = None,
    ) -> Job:
        """Move a job to ``state`` (validated), stamping timestamps and
        attaching the outcome; publishes the event."""
        with self._lock:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None
            if state not in _TRANSITIONS[job.state]:
                raise InvalidTransition(
                    f"{job_id}: {job.state} -> {state} is not a legal "
                    f"lifecycle move (allowed: {_TRANSITIONS[job.state]})"
                )
            job.state = state
            now = time.time()
            if state == RUNNING:
                job.started_s = now
            else:
                job.finished_s = now
            if error is not None:
                job.error = error
            if results is not None:
                job.results = results
        self._emit(job, state)
        return job

    def find_by_key(
        self, job_key: str, states: Tuple[str, ...]
    ) -> Optional[Job]:
        """Most recent job with this content key in one of ``states``
        (dedup lookup).  Jobs are scanned newest-first so a resubmission
        after a failure pairs with the latest attempt, not the first."""
        with self._lock:
            for job in reversed(list(self._jobs.values())):
                if job.job_key == job_key and job.state in states:
                    return job
        return None

    def snapshot(self) -> List[Dict[str, Any]]:
        """Public view of every job, submission order."""
        with self._lock:
            return [job.to_dict() for job in self._jobs.values()]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (the metrics endpoint's core numbers)."""
        out = {state: 0 for state in _TRANSITIONS}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def _emit(self, job: Job, event: str) -> None:
        if self._publish is None:
            return
        payload = job.to_dict()
        payload["event"] = event
        payload["kind"] = "job"
        self._publish(payload)
