"""repro.serve — the always-on experiment service.

Instead of one-shot bench scripts, a long-lived daemon owns the result
cache and a worker pool; clients submit experiment grids as jobs and
stream progress:

* :mod:`repro.serve.state` — job lifecycle (queued → running →
  done/failed/cancelled) behind one thread-safe table;
* :mod:`repro.serve.queue` — bounded priority queue: backpressure
  rejection past capacity, content-addressed dedup of identical work;
* :mod:`repro.serve.workers` — worker pool over the crash-tolerant
  grid runner, per-job timeouts, bulkhead isolation, restart-on-crash;
* :mod:`repro.serve.server` — stdlib ``ThreadingHTTPServer`` JSON API
  (submit/status/result/cancel/healthz/metrics) + SSE event stream;
* :mod:`repro.serve.client` — urllib client speaking the same protocol.

CLI: ``repro serve`` (daemon), ``repro submit`` (send a grid and wait),
``repro jobs`` (inspect).  In-process: ``repro.api.serve()``.
"""

from repro.serve.client import BackpressureError, ServiceClient, ServiceError
from repro.serve.queue import JobQueue, QueueFull, Submission, job_key_for
from repro.serve.server import EventBroker, ExperimentService, serve
from repro.serve.state import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobTable,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "ExperimentService",
    "serve",
    "ServiceClient",
    "ServiceError",
    "BackpressureError",
    "EventBroker",
    "JobQueue",
    "QueueFull",
    "Submission",
    "job_key_for",
    "WorkerPool",
    "Job",
    "JobTable",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
]
