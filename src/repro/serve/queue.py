"""Bounded, prioritised, deduplicating job queue.

Three properties the service leans on:

* **Backpressure.**  The queue has a hard capacity; a submission past
  it raises :class:`QueueFull` *immediately* instead of blocking the
  submitter or growing without bound.  An always-on service that
  accepts everything eventually dies of its own backlog — rejecting at
  the door is the resilient behaviour (and mirrors how the paper's
  sender reacts to congestion: shed early, not late).
* **Priorities.**  Higher ``priority`` pops first; within a priority,
  FIFO (a monotone sequence number breaks ties, so equal-priority jobs
  never starve each other).
* **Dedup.**  Work is content-addressed: a job's key hashes its cells'
  :func:`~repro.experiments.parallel.config_key` (config + code
  version) plus the run options.  Submitting work identical to a
  queued/running job joins it; identical to a finished job returns its
  result.  Cell-level dedup happens a layer below in the on-disk
  :class:`~repro.experiments.parallel.ResultCache` — even a *partially*
  overlapping job only simulates the cells nobody ran before.
"""

from __future__ import annotations

import hashlib
import heapq
import threading
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import config_key
from repro.serve.state import ACTIVE_STATES, DONE, Job, JobTable

__all__ = ["JobQueue", "QueueFull", "Submission", "job_key_for"]


class QueueFull(RuntimeError):
    """Backpressure: the queue is at capacity; retry later or shed."""


def job_key_for(
    configs: Sequence[ExperimentConfig],
    jobs_per_cell: Optional[int],
    cell_timeout_s: Optional[float],
) -> str:
    """Content address of a submission.

    Cell order matters (results come back in input order, so the same
    cells permuted are a different job); run options matter (the same
    grid under a different timeout can legitimately differ in which
    cells fail).  Code version is already inside each cell key.
    """
    digest = hashlib.sha256()
    for config in configs:
        digest.update(config_key(config).encode())
        digest.update(b"|")
    digest.update(f"opts:{jobs_per_cell}:{cell_timeout_s}".encode())
    return digest.hexdigest()[:32]


class Submission:
    """What :meth:`JobQueue.submit` hands back."""

    __slots__ = ("job", "deduplicated")

    def __init__(self, job: Job, deduplicated: bool) -> None:
        #: The job now representing this work (new or pre-existing).
        self.job = job
        #: True when no new job was created (joined a live one or
        #: matched a finished one's content key).
        self.deduplicated = deduplicated


class JobQueue:
    """Priority queue of :class:`Job` ids, bounded and deduplicating.

    Args:
        table: the shared job registry.
        capacity: maximum *queued* jobs (running ones have already left
            the queue); submissions past it raise :class:`QueueFull`.
    """

    def __init__(self, table: JobTable, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.table = table
        self.capacity = capacity
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # Entries: (-priority, seq, job_id); heapq pops smallest, so
        # negated priority makes higher-priority jobs pop first and the
        # sequence number keeps equal priorities FIFO.
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    def submit(
        self,
        configs: Sequence[ExperimentConfig],
        priority: int = 0,
        jobs_per_cell: Optional[int] = None,
        cell_timeout_s: Optional[float] = None,
    ) -> Submission:
        """Enqueue a grid (or join identical work already known).

        Raises:
            QueueFull: the queue is at capacity — backpressure; the
                submitter should retry later or drop the work.
            ValueError: an empty config list (nothing to run).
        """
        if not configs:
            raise ValueError("a job needs at least one config")
        key = job_key_for(configs, jobs_per_cell, cell_timeout_s)
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            live = self.table.find_by_key(key, ACTIVE_STATES)
            if live is not None:
                return Submission(live, deduplicated=True)
            finished = self.table.find_by_key(key, (DONE,))
            if finished is not None:
                return Submission(finished, deduplicated=True)
            if len(self._heap) >= self.capacity:
                raise QueueFull(
                    f"queue at capacity ({self.capacity} queued jobs); "
                    "retry later"
                )
            job = self.table.new_job(
                configs,
                job_key=key,
                priority=priority,
                jobs_per_cell=jobs_per_cell,
                cell_timeout_s=cell_timeout_s,
            )
            self._seq += 1
            heapq.heappush(self._heap, (-priority, self._seq, job.job_id))
            self._available.notify()
            return Submission(job, deduplicated=False)

    def cancel(self, job_id: str) -> bool:
        """Remove a still-queued job; ``False`` if it already left the
        queue (running/terminal jobs are not interruptible)."""
        with self._lock:
            for i, (_, _, queued_id) in enumerate(self._heap):
                if queued_id == job_id:
                    self._heap[i] = self._heap[-1]
                    self._heap.pop()
                    heapq.heapify(self._heap)
                    self.table.transition(job_id, "cancelled")
                    return True
        return False

    def close(self) -> None:
        """Stop accepting and wake every blocked consumer."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer side (worker pool)
    # ------------------------------------------------------------------ #

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Highest-priority queued job id, blocking up to ``timeout``
        seconds; ``None`` on timeout or queue closure."""
        with self._lock:
            while not self._heap:
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None
            _, _, job_id = heapq.heappop(self._heap)
            return job_id

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)
