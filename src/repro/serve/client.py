"""Client for the experiment service — HTTP (urllib, stdlib-only).

The in-process client is :class:`~repro.serve.server.ExperimentService`
itself (``submit``/``wait``/``result`` are its methods); this module is
the *remote* half: the same verbs against a running ``repro serve``
daemon, plus an SSE reader for the event stream.

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit([config.to_dict() for config in grid])
    client.wait(job["job_id"])
    rows = client.result(job["job_id"])["cells"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.experiments.config import ExperimentConfig

__all__ = ["ServiceClient", "ServiceError", "BackpressureError"]


class ServiceError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BackpressureError(ServiceError):
    """429 — the queue is full; retry later or shed the work."""


class ServiceClient:
    """Talks the service's JSON protocol over urllib.

    Args:
        base_url: e.g. ``http://127.0.0.1:8642`` (no trailing slash
            needed).
        timeout_s: per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #

    def submit(
        self,
        configs: Sequence[Union[ExperimentConfig, Dict[str, Any]]],
        priority: int = 0,
        jobs_per_cell: Optional[int] = None,
        cell_timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a grid; returns ``{"job_id", "state", "deduplicated"}``.

        Raises :class:`BackpressureError` on a 429 (queue full).
        """
        payload = {
            "configs": [
                c.to_dict() if isinstance(c, ExperimentConfig) else c
                for c in configs
            ],
            "priority": priority,
            "jobs_per_cell": jobs_per_cell,
            "cell_timeout_s": cell_timeout_s,
        }
        return self._request("POST", "/submit", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/status/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """Finished job's per-cell summaries; raises :class:`ServiceError`
        (409) while it is still running."""
        return self._request("GET", f"/result/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/cancel/{job_id}")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the last
        status either way (check ``state``)."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                return status
            time.sleep(poll_s)

    # ------------------------------------------------------------------ #
    # SSE
    # ------------------------------------------------------------------ #

    def events(
        self,
        job_id: Optional[str] = None,
        timeout_s: float = 60.0,
    ) -> Iterator[Dict[str, Any]]:
        """Yield decoded events from ``/events`` (optionally one job's).

        Ends when the server closes the stream (watched job finished)
        or the socket timeout expires with no traffic — keep-alive
        comments reset the timer, so an idle-but-healthy stream keeps
        yielding nothing rather than dying.
        """
        url = self.base_url + "/events"
        if job_id:
            url += f"?job_id={job_id}"
        request = urllib.request.Request(url, method="GET")
        with urllib.request.urlopen(request, timeout=timeout_s) as stream:
            data_lines: List[str] = []
            while True:
                raw = stream.readline()
                if not raw:
                    return  # server closed the stream
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and data_lines:
                    yield json.loads("\n".join(data_lines))
                    data_lines = []

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        url = self.base_url + path
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:  # noqa: BLE001 — error body is best-effort
                message = str(exc)
            if exc.code == 429:
                raise BackpressureError(exc.code, message) from None
            raise ServiceError(exc.code, message) from None
