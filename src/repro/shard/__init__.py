"""Spatial sharding: one simulation, one process per fabric partition.

A sharded run cuts the fabric along its :meth:`TopologySpec.shard_plan`
(contiguous leaf groups for leaf–spine) and simulates each partition in
its own event engine, synchronized by conservative lookahead: the only
coupling between partitions is inter-switch propagation delay, so every
shard can safely run ``prop_delay_ns`` ahead of the globally earliest
pending event before it must see the others' packets.

The point of the exercise is *bit identity*: ``--shards N`` must produce
the same flow records, the same event count and the same final clock as
the in-process run, for every scheme (enforced by the golden-grid shard
tests and the CI ``shard-smoke`` job).  See DESIGN.md §14 for the
boundary/ordering model and the composite-sequence argument.

Public surface:

* :func:`run_sharded` — run one :class:`ExperimentConfig` across
  ``config.shards`` partitions (``run_experiment`` dispatches here
  automatically when ``shards > 1``);
* :class:`ShardedSimulator` / :class:`ShardedWheelSimulator` — engines
  whose sequence numbers are composite ``(generation time, origin)``
  tuples, making the dispatch order reconstructible across processes.
"""

from repro.shard.engine import ShardedSimulator, ShardedWheelSimulator
from repro.shard.runner import run_sharded

__all__ = [
    "ShardedSimulator",
    "ShardedWheelSimulator",
    "run_sharded",
]
