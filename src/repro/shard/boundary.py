"""Shard boundary: packet serialization and the uplink diversion sink.

A boundary crossing replaces exactly one serial engine event.  Serially,
a packet leaving ``leaf_up`` is handed to
``sim.schedule_pooled(prop_delay_ns, fabric.forward, packet)``; in a
sharded run the owning shard's :class:`BoundaryRouter` intercepts that
call (via :meth:`OutputPort.divert_propagation`).  A packet whose
destination rack is local propagates normally.  A packet bound for
another shard is encoded to a plain tuple and queued in the **outbox**
with its arrival instant (``now + prop_delay_ns``), generation instant
and a monotone emission index; the coordinator ferries it across, and
the destination shard injects one event that decodes the tuple and calls
its own ``fabric.forward`` — same instant, same composite-order position,
same downstream state touched (the spine's down-port queue is owned by
the destination shard, so queue/DRE/ECN state is exact, not
approximated).

The codec round-trips every :class:`Packet` field except ``route``
(recomputed from the destination shard's identically-built topology) —
``PacketPool.acquire`` resets all fields bit-for-bit, so pool-order
differences between shards are semantically invisible.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

#: Outbox entry: (arrival_ns, gen_ns, emission_idx, dst_shard, encoded).
Message = Tuple[int, int, int, int, tuple]


def encode_packet(packet: Packet) -> tuple:
    """Flatten a packet to a picklable tuple (everything but ``route``)."""
    return (
        packet.flow_id,
        packet.src,
        packet.dst,
        packet.seq,
        packet.size,
        packet.kind,
        packet.ack_seq,
        packet.path_id,
        packet.ecn_capable,
        packet.ce,
        packet.ece,
        packet.ts_echo,
        packet.is_retx,
        packet.priority,
        packet.conga_metric,
        packet.hop,
    )


def decode_packet(fabric: "Fabric", data: tuple) -> Packet:
    """Rebuild a boundary packet inside the destination shard.

    The route is recomputed from this shard's topology — structurally
    identical to the source shard's (both built from the same spec) —
    and ``hop`` restored, so the next ``forward()`` enqueues exactly the
    port the serial run would have (the spine down-port toward the
    destination rack).
    """
    (flow_id, src, dst, seq, size, kind, ack_seq, path_id, ecn_capable,
     ce, ece, ts_echo, is_retx, priority, conga_metric, hop) = data
    packet = fabric.packet_pool.acquire(
        flow_id, src, dst, seq, size, kind,
        path_id=path_id, ecn_capable=ecn_capable, priority=priority,
    )
    packet.ack_seq = ack_seq
    packet.ce = ce
    packet.ece = ece
    packet.ts_echo = ts_echo
    packet.is_retx = is_retx
    packet.conga_metric = conga_metric
    packet.route = fabric.topology.route(src, dst, path_id)
    packet.hop = hop
    return packet


class BoundaryRouter:
    """Per-shard uplink diversion sink + outbox.

    Installed on every *local* leaf's up-ports.  Signature-compatible
    with ``sim.schedule_pooled`` as :meth:`OutputPort.divert_propagation`
    requires: called as ``sink(prop_delay_ns, forward, packet)`` at the
    serialization-complete instant.
    """

    __slots__ = ("fabric", "sim", "shard_id", "_shard_of_leaf", "_leaf_of",
                 "_emission_idx", "outbox")

    def __init__(
        self,
        fabric: "Fabric",
        shard_id: int,
        shard_of_leaf: List[int],
    ) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.shard_id = shard_id
        self._shard_of_leaf = shard_of_leaf
        self._leaf_of = fabric.topology.leaf_of
        self._emission_idx = 0
        self.outbox: List[Message] = []

    def __call__(
        self, delay_ns: int, forward: Callable[[Packet], None], packet: Packet
    ) -> Optional[object]:
        dst_shard = self._shard_of_leaf[self._leaf_of(packet.dst)]
        if dst_shard == self.shard_id:
            return self.sim.schedule_pooled(delay_ns, forward, packet)
        now = self.sim.now
        idx = self._emission_idx
        self._emission_idx = idx + 1
        self.outbox.append(
            (now + delay_ns, now, idx, dst_shard, encode_packet(packet))
        )
        self.fabric.packet_pool.release(packet)
        return None

    def drain(self) -> List[Message]:
        """Hand the window's emissions to the coordinator."""
        out = self.outbox
        self.outbox = []
        return out

    def install(self, local_leaves) -> None:
        """Divert the up-ports of every local leaf through this router.

        Only local leaves forward traffic in this shard (a local flow's
        route reaches remote port objects strictly *after* the cut, and
        those hops execute in the owning shard), so remote up-ports are
        left untouched.
        """
        for leaf in local_leaves:
            for _spine, port in self.fabric.topology.uplink_ports(leaf):
                port.divert_propagation(self)


class WindowLog:
    """Per-window dispatch log, attached as the engine's profiler.

    Records each fired event's ``(time, seq)`` key — the reconciliation
    currency: the coordinator picks the globally last flow-finish key and
    every shard truncates its final-window count to keys at or before it,
    reproducing the serial engine's exact stop point.

    Also counts **hazards**: adjacent same-``(time, gen_ns)`` events of
    different origins (local vs injected, or injected from different
    source shards), whose serial relative order is unreconstructible.
    Equal-key-prefix events are contiguous in dispatch order, so checking
    adjacent pairs detects every ambiguous run.
    """

    __slots__ = ("keys", "hazards")

    def __init__(self) -> None:
        self.keys: List[tuple] = []
        self.hazards = 0

    def on_event(self, event) -> None:
        keys = self.keys
        seq = event.seq
        if keys:
            prev_time, prev_seq = keys[-1]
            if prev_time == event.time and prev_seq[0] == seq[0]:
                a, b = prev_seq[1], seq[1]
                if a[0] != b[0] or (a[0] == 1 and a[1] != b[1]):
                    self.hazards += 1
        keys.append((event.time, seq))

    def start_window(self) -> None:
        self.keys.clear()
