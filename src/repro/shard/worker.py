"""One shard of a partitioned experiment.

A :class:`ShardWorker` owns one leaf group of the fabric.  Its setup
mirrors :func:`repro.experiments.runner.run_experiment` **exactly** —
same construction order, same RNG stream names, same scale-derived
parameters (shared helpers, not copies) — because bit identity demands
that every shard's view of shared setup state (workload arrivals,
failure draws, per-entity RNG streams) match the serial run's.  The
differences are surgical:

* the engine draws composite sequence tuples (:mod:`repro.shard.engine`);
* local leaves' up-ports divert through a :class:`BoundaryRouter`;
* periodic state owned by remote racks (Hermes probers and τ-sweeps) is
  stopped before the clock starts — the owning shard runs those events;
* flows are split by locality: a flow whose **source** rack is local is
  started by its arrival event, exactly like the serial run; a flow
  whose **destination** rack (only) is local gets an eagerly registered
  receiver replica — the flow constructor is inert (no RNG, no events),
  and the replica's state advances only when DATA arrives, so early
  registration is invisible.  Flow ids are pinned to the global arrival
  index, which is precisely the serial allocation order.
* nothing stops the local loop: the run ends globally, by coordinator
  reconciliation (:meth:`finish`), truncating each shard's final window
  at the globally last flow-finish key ``K*`` — the serial engine's
  exact ``sim.stop()`` point.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    _arrival_list,
    _flow_kwargs,
    _flow_record,
    _install_failure,
    _resolved_lb_params,
)
from repro.lb.factory import install_lb
from repro.net.fabric import Fabric
from repro.shard.boundary import BoundaryRouter, WindowLog, decode_packet
from repro.shard.engine import make_sharded_simulator
from repro.sim.engine import resolve_scheduler
from repro.sim.rng import RngStreams
from repro.sim.tuning import wheel_geometry_for
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import TcpFlow


class ShardWorker:
    """Builds and drives one shard (see module docstring).

    Args:
        config: the full experiment config (``config.shards`` partitions).
        shard_id: which entry of ``plan`` this worker owns.
        plan: the leaf groups from ``spec.shard_plan(config.shards)``.
    """

    def __init__(self, config: ExperimentConfig, shard_id: int, plan) -> None:
        self.config = config
        self.shard_id = shard_id
        self.local_leaves = frozenset(plan[shard_id])
        shard_of_leaf: List[int] = [0] * sum(len(g) for g in plan)
        for sid, group in enumerate(plan):
            for leaf in group:
                shard_of_leaf[leaf] = sid

        scheduler_name = resolve_scheduler(config.scheduler)
        if scheduler_name == "wheel:auto":
            geometry = wheel_geometry_for(config.topology, config.time_scale)
            sim = make_sharded_simulator(
                scheduler_name,
                slot_ns_bits=geometry.slot_ns_bits,
                num_slot_bits=geometry.num_slot_bits,
            )
        else:
            sim = make_sharded_simulator(scheduler_name)
        self.sim = sim
        self.log = WindowLog()
        # Private-attribute attach, same as HookSet does: the public
        # ``profiler`` surface is reserved for telemetry (which sharded
        # runs reject), and the log must see *every* fired event.
        sim._profiler = self.log

        rng = RngStreams(config.seed)
        fabric = Fabric(sim, config.topology, rng)
        self.fabric = fabric
        shared = install_lb(fabric, config.lb, **_resolved_lb_params(config))
        # Remote racks' periodic state: cancel before the clock starts.
        # The events exist so far only as setup-time schedules; cancelled
        # events never fire and are never counted, so each probe round /
        # sweep fires in exactly one shard — the owner's.
        for leaf, prober in shared.get("probers", {}).items():
            if leaf not in self.local_leaves:
                prober.stop()
        for leaf, state in shared.get("leaf_states", {}).items():
            if leaf not in self.local_leaves and hasattr(state, "stop_sweep"):
                state.stop_sweep()
        if config.failure is not None:
            # Blackhole only (validated upstream): a one-time deterministic
            # "failure"-stream draw every shard replays identically, and
            # static drop predicates on spine down-ports — each owned by
            # the shard of its destination rack.
            _install_failure(fabric, config.failure, rng)

        self.router = BoundaryRouter(fabric, shard_id, shard_of_leaf)
        self.router.install(sorted(self.local_leaves))

        # Probe drops are counted fabric-side the moment they happen, but
        # the serial run stops *mid-window* at K — so drops are logged
        # with their event key and truncated in finish(), like events.
        self._drop_keys: List[tuple] = []
        prev_sink = fabric.probe_drop_sink

        def drop_sink(packet, _prev=prev_sink) -> None:
            keys = self.log.keys
            if keys:
                self._drop_keys.append(keys[-1])
            if _prev is not None:
                _prev(packet)

        fabric.probe_drop_sink = drop_sink

        arrivals = _arrival_list(config, rng)
        self._flow_kwargs = _flow_kwargs(config)
        self._flow_cls = DctcpFlow if config.transport == "dctcp" else TcpFlow
        self.flows: List[Any] = []
        self.remaining = 0
        self._last_finish_key: Optional[tuple] = None
        fabric.on_flow_done = self._on_done
        leaf_of = fabric.topology.leaf_of
        local = self.local_leaves
        for index, arrival in enumerate(arrivals):
            if leaf_of(arrival.src) in local:
                sim.schedule_at(arrival.time_ns, self._start_flow, index, arrival)
                self.remaining += 1
            elif leaf_of(arrival.dst) in local:
                replica = self._flow_cls(
                    fabric, arrival.src, arrival.dst, arrival.size_bytes,
                    flow_id=index, **self._flow_kwargs,
                )
                fabric.register_flow(replica)
        self.deadline = arrivals[-1].time_ns + config.extra_drain_ns
        self._fired_total = 0

    # ------------------------------------------------------------------ #
    # Event-side callbacks
    # ------------------------------------------------------------------ #

    def _start_flow(self, flow_id: int, arrival) -> None:
        flow = self._flow_cls(
            self.fabric, arrival.src, arrival.dst, arrival.size_bytes,
            flow_id=flow_id, **self._flow_kwargs,
        )
        self.fabric.register_flow(flow)
        self.flows.append(flow)
        flow.start()

    def _on_done(self, flow) -> None:
        # The log already holds the dispatching event's key (the profiler
        # hook runs before the callback), so keys[-1] *is* this finish.
        self.remaining -= 1
        self._last_finish_key = self.log.keys[-1]

    def _deliver(self, encoded: tuple) -> None:
        self.fabric.forward(decode_packet(self.fabric, encoded))

    # ------------------------------------------------------------------ #
    # Coordinator protocol
    # ------------------------------------------------------------------ #

    def peek(self) -> Optional[int]:
        """Next pending event time (the pre-first-window T_min input)."""
        return self.sim.peek_time()

    def window(self, horizon: int, msgs) -> Dict[str, Any]:
        """Inject this window's boundary arrivals, run to ``horizon``
        (exclusive), and report back.

        ``msgs`` are delivery tuples ``(arrival_ns, gen_ns, emission_idx,
        src_shard, encoded)``, pre-sorted by the coordinator.  The
        conservative horizon guarantees every arrival is at/after this
        shard's clock *and* at/after the window's own horizon — no
        message can land inside the window that produced it.
        """
        sim = self.sim
        deliver = self._deliver
        for arrival_ns, gen_ns, idx, src_shard, encoded in msgs:
            sim.inject(arrival_ns, (gen_ns, (1, src_shard, idx)), deliver, encoded)
        self.log.start_window()
        self._fired_total += sim.run_until(horizon)
        return {
            "next": sim.peek_time(),
            "outbox": self.router.drain(),
            "remaining": self.remaining,
            "finish_key": self._last_finish_key,
        }

    def finish(self, kstar: Optional[tuple], is_owner: bool) -> Dict[str, Any]:
        """Reconcile and report this shard's slice of the result.

        ``kstar`` is the globally last flow-finish key (``None`` on the
        drain-deadline path, where nothing is truncated).  Final-window
        events and probe drops after ``K*`` would not have fired in the
        serial run — they are subtracted from the counts; their *state*
        side effects are provably benign once every flow has finished
        (finished flows ignore stray ACKs/timeouts, receivers aren't
        snapshotted, and reroute counters only move during transmissions).
        """
        log = self.log
        keys = log.keys
        if kstar is None:
            events = self._fired_total
            probe_drops = len(self._drop_keys)
        else:
            events = (
                self._fired_total
                - len(keys)
                + sum(1 for k in keys if k <= kstar)
            )
            probe_drops = sum(1 for k in self._drop_keys if k <= kstar)
            if not is_owner:
                # A non-owner event at K*'s exact (time, generation
                # instant) is order-ambiguous against the stop point —
                # same class of hazard the window log counts inline.
                log.hazards += sum(
                    1 for k in keys
                    if k[0] == kstar[0] and k[1][0] == kstar[1][0]
                )
        local_hosts = {
            h
            for leaf in self.local_leaves
            for h in self.fabric.topology.hosts_of_leaf(leaf)
        }
        reroutes = sum(
            self.fabric.hosts[h].lb.reroutes
            for h in local_hosts
            if self.fabric.hosts[h].lb is not None
        )
        return {
            "records": [_flow_record(f) for f in self.flows],
            "events": events,
            "reroutes": reroutes,
            "probe_drops": probe_drops,
            "hazards": log.hazards,
        }
