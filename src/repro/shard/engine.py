"""Sharded event engines: composite sequence numbers + event injection.

The serial engines order same-instant events by a global integer ``seq``
drawn at scheduling time — scheduling order *is* dispatch order.  A
sharded run has no global counter, so these subclasses draw **composite**
sequence tuples instead::

    local event:    (gen_ns, (0, sub))
    injected event: (gen_ns, (1, src_shard, emission_idx))

``gen_ns`` is the simulation instant the event was *scheduled* (for a
boundary packet: the instant the source shard serialized it), ``sub`` a
per-instant counter that resets whenever the clock advances, and
``emission_idx`` the source shard's monotone boundary-emission counter.
Events still dispatch in ``(time, seq)`` order — tuples compare
element-wise — and the composite order provably matches the serial
engine's integer order whenever two same-fire-time events were scheduled
at *different* instants (the serial seq order is exactly scheduling-time
order).  Same-fire-time events scheduled at the *same* instant in the
same shard keep their relative ``sub`` order, which matches the serial
subsequence order because same-instant causal chains never leave a shard
(crossing costs ``prop_delay_ns > 0``).  The only residual ambiguity —
same fire time *and* same generation instant but different origins — is
counted as a **hazard** by the worker's window log; the golden shard
tests assert zero.

``inject()`` is the coordinator-facing entry point: it enqueues an event
with a caller-supplied composite seq (a boundary packet arriving from
another shard), bypassing the local draw.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Tuple

from repro.sim.engine import Event, Simulator, WheelSimulator

#: Composite sequence tuple: ``(gen_ns, origin_tag)``.
Seq = Tuple[int, tuple]


class _CompositeSeqMixin:
    """Scheduling overrides shared by both sharded engines.

    Subclasses provide ``_push(event)`` — heap push or wheel insert —
    and call :meth:`_shard_init` after the base constructor.
    """

    def _shard_init(self) -> None:
        #: Instant of the most recent seq draw; ``sub`` resets when the
        #: clock moves past it, keeping tuples small and order exact.
        self._seq_ns = -1
        self._seq_sub = 0

    def _draw_seq(self) -> Seq:
        now = self.now
        if now != self._seq_ns:
            self._seq_ns = now
            self._seq_sub = 0
        sub = self._seq_sub
        self._seq_sub = sub + 1
        return (now, (0, sub))

    def _push(self, event: Event) -> None:
        raise NotImplementedError

    # -- the four scheduling entry points, re-keyed ---------------------- #

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event = Event(self.now + delay_ns, self._draw_seq(), fn, args)
        self._push(event)
        return event

    def schedule_pooled(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = self.now + delay_ns
            event.seq = self._draw_seq()
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(self.now + delay_ns, self._draw_seq(), fn, args)
            event.poolable = True
        self._push(event)
        return event

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        event = Event(time_ns, self._draw_seq(), fn, args)
        self._push(event)
        return event

    def reschedule(self, event: Event, delay_ns: int) -> Event:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event.time = self.now + delay_ns
        event.seq = self._draw_seq()
        event.cancelled = False
        self._push(event)
        return event

    # -- coordinator-facing --------------------------------------------- #

    def inject(self, time_ns: int, seq: Seq, fn: Callable[..., Any], *args: Any) -> Event:
        """Enqueue a cross-shard event with an externally drawn seq.

        Called between windows with the arrival time and composite seq of
        a boundary packet serialized by another shard.  The conservative
        horizon guarantees ``time_ns >= now`` (a window's emissions all
        arrive at or after the next horizon), so this never schedules
        into the past.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot inject at t={time_ns} before now={self.now}"
            )
        event = Event(time_ns, seq, fn, args)
        self._push(event)
        return event

    def reset(self) -> None:
        super().reset()
        self._shard_init()


class ShardedSimulator(_CompositeSeqMixin, Simulator):
    """Binary-heap engine with composite sequence numbers."""

    scheduler = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._shard_init()

    def _push(self, event: Event) -> None:
        heappush(self._queue, event)


class ShardedWheelSimulator(_CompositeSeqMixin, WheelSimulator):
    """Calendar-wheel engine with composite sequence numbers.

    The wheel's mechanics are seq-agnostic: slots sort on ``(time, seq)``
    at open time and the live-bucket merge bisects on the same key, so
    tuple seqs (including injected ones that are *not* the largest drawn)
    land in exactly their total-order position.
    """

    scheduler = "wheel"

    def __init__(self, slot_ns_bits: int = 12, num_slot_bits: int = 11) -> None:
        super().__init__(slot_ns_bits=slot_ns_bits, num_slot_bits=num_slot_bits)
        self._shard_init()

    def _push(self, event: Event) -> None:
        self._insert(event)


def make_sharded_simulator(
    scheduler: str,
    *,
    slot_ns_bits=None,
    num_slot_bits=None,
):
    """The sharded counterpart of :func:`repro.sim.engine.make_simulator`
    (``scheduler`` is already env-resolved by the caller)."""
    if scheduler == "heap":
        return ShardedSimulator()
    kwargs = {}
    if slot_ns_bits is not None:
        kwargs["slot_ns_bits"] = slot_ns_bits
    if num_slot_bits is not None:
        kwargs["num_slot_bits"] = num_slot_bits
    sim = ShardedWheelSimulator(**kwargs)
    if scheduler != "wheel":
        sim.scheduler = scheduler
    return sim
