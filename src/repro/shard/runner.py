"""The sharded experiment coordinator.

:func:`run_sharded` cuts one experiment into ``config.shards`` leaf
groups (``spec.shard_plan``), builds one :class:`ShardWorker` per group
— in worker processes when enough cores are available, in-process
otherwise — and drives them through a conservative-lookahead barrier
loop:

1. Deliver every ferried boundary message to its destination shard.
2. ``T_min`` = the earliest pending instant anywhere (local queues ∪
   ferried arrivals); the window horizon is ``T_min + L`` (capped at the
   drain deadline), where the lookahead ``L`` is the inter-shard link
   propagation delay: no event at/after ``T_min`` can make a packet
   *arrive* across a cut before ``T_min + L``.
3. Every shard runs ``run_until(horizon)`` — in parallel, safely: all
   events before the horizon are already queued locally.
4. Collect each window's boundary emissions and repeat.

The run ends either when every flow has finished — the coordinator then
reconciles the shards at ``K*``, the globally last flow-finish key,
reproducing the serial engine's ``sim.stop()`` instant exactly — or at
the drain deadline, mirroring ``sim.run(until=deadline)``.

Crash tolerance follows :mod:`repro.experiments.parallel`: a dead worker
process (EOF/broken pipe) aborts the process fleet and the whole cell
re-runs in-process — the run is deterministic, so the retry computes the
identical result the fleet would have.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.metrics.fct import LARGE_FLOW_BYTES, SMALL_FLOW_BYTES, FctStats
from repro.net.spec import as_topology_spec
from repro.shard.worker import ShardWorker
from repro.sim.engine import resolve_scheduler

#: Features that require a single shared engine (observability layers
#: hook one simulator/fabric) or per-packet RNG draws whose stream order
#: a spatial cut cannot replay.  Each maps to the error message fragment.
_UNSUPPORTED = "sharded runs (shards > 1) do not support"


class _ShardCrash(RuntimeError):
    """A worker process died mid-run; the cell re-runs in-process."""


def _validate_sharded(config: ExperimentConfig, spec) -> None:
    from repro.experiments.runner import trace_forced, validate_forced

    if config.validate or validate_forced():
        raise ValueError(f"{_UNSUPPORTED} the validate layer")
    if config.trace or trace_forced():
        raise ValueError(f"{_UNSUPPORTED} the telemetry layer")
    if config.streaming_enabled():
        raise ValueError(f"{_UNSUPPORTED} streaming statistics")
    if config.visibility_sampling:
        raise ValueError(f"{_UNSUPPORTED} visibility sampling")
    if config.faults is not None and config.faults:
        raise ValueError(f"{_UNSUPPORTED} the scheduled fault plane")
    if config.detector is not None:
        raise ValueError(f"{_UNSUPPORTED} detector specs")
    if config.failure is not None and config.failure.kind == "random_drop":
        # Per-packet drop draws consume the "failure" stream in global
        # packet order, which no shard can reproduce alone.  Blackholes
        # are fine: one deterministic setup-time draw, static predicates.
        raise ValueError(f"{_UNSUPPORTED} random_drop failures")
    if spec.prop_delay_ns <= 0:
        raise ValueError(
            "sharded runs need a positive inter-shard propagation delay "
            "for conservative lookahead"
        )
    if config.shards > spec.n_leaves:
        raise ValueError(
            f"cannot cut {spec.n_leaves} leaves into {config.shards} shards"
        )


# --------------------------------------------------------------------- #
# Worker channels: same protocol in-process and across a Pipe
# --------------------------------------------------------------------- #


class _InlineChannel:
    """Round-robin in-process worker — the fallback (and ``jobs=1``) mode."""

    def __init__(self, config: ExperimentConfig, shard_id: int, plan) -> None:
        self.worker = ShardWorker(config, shard_id, plan)
        self.deadline = self.worker.deadline
        self.next0 = self.worker.peek()
        self._reply: Any = None

    def post_window(self, horizon: int, msgs) -> None:
        self._reply = self.worker.window(horizon, msgs)

    def post_finish(self, kstar, is_owner: bool) -> None:
        self._reply = self.worker.finish(kstar, is_owner)

    def recv(self) -> Any:
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


def _worker_main(conn, config: ExperimentConfig, shard_id: int, plan) -> None:
    """Child-process loop: build the shard, then serve barrier commands."""
    try:
        worker = ShardWorker(config, shard_id, plan)
        conn.send(("ready", worker.deadline, worker.peek()))
        while True:
            command = conn.recv()
            if command[0] == "window":
                conn.send(worker.window(command[1], command[2]))
            elif command[0] == "finish":
                conn.send(worker.finish(command[1], command[2]))
                break
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown shard command {command[0]!r}")
    except (EOFError, BrokenPipeError, OSError):  # pragma: no cover
        pass
    finally:
        conn.close()


class _ProcessChannel:
    """One worker process behind a duplex pipe."""

    def __init__(self, config: ExperimentConfig, shard_id: int, plan) -> None:
        parent, child = multiprocessing.Pipe()
        self.conn = parent
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(child, config, shard_id, plan),
            daemon=True,
        )
        self.process.start()
        child.close()
        tag, self.deadline, self.next0 = self._recv_raw()
        if tag != "ready":  # pragma: no cover - protocol misuse
            raise _ShardCrash(f"shard {shard_id} spoke {tag!r} before ready")

    def _recv_raw(self) -> Any:
        try:
            return self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise _ShardCrash(str(exc)) from exc

    def post_window(self, horizon: int, msgs) -> None:
        try:
            self.conn.send(("window", horizon, msgs))
        except (BrokenPipeError, OSError) as exc:
            raise _ShardCrash(str(exc)) from exc

    def post_finish(self, kstar, is_owner: bool) -> None:
        try:
            self.conn.send(("finish", kstar, is_owner))
        except (BrokenPipeError, OSError) as exc:
            raise _ShardCrash(str(exc)) from exc

    def recv(self) -> Any:
        return self._recv_raw()

    def close(self) -> None:
        self.conn.close()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - wedged child
            self.process.terminate()
            self.process.join()


# --------------------------------------------------------------------- #
# The barrier loop
# --------------------------------------------------------------------- #


def _coordinate(
    channels: Sequence[Any], lookahead_ns: int
) -> Tuple[List[Dict[str, Any]], int, Dict[str, int]]:
    """Drive the windows; returns (finish payloads, sim_time_ns, diag)."""
    n = len(channels)
    deadline = channels[0].deadline
    next_times: List[Optional[int]] = [ch.next0 for ch in channels]
    finish_keys: List[Optional[tuple]] = [None] * n
    inboxes: List[List[tuple]] = [[] for _ in range(n)]
    windows = 0
    messages = 0
    kstar: Optional[tuple] = None
    while True:
        candidates = [t for t in next_times if t is not None]
        candidates.extend(m[0] for box in inboxes for m in box)
        if not candidates or min(candidates) > deadline:
            # Drain-deadline ending: every event at/before the deadline
            # has fired everywhere — exactly ``sim.run(until=deadline)``.
            sim_time = deadline
            break
        horizon = min(min(candidates) + lookahead_ns, deadline + 1)
        for i, ch in enumerate(channels):
            msgs, inboxes[i] = inboxes[i], []
            msgs.sort()
            ch.post_window(horizon, msgs)
        reports = [ch.recv() for ch in channels]
        windows += 1
        remaining = 0
        for src, report in enumerate(reports):
            next_times[src] = report["next"]
            finish_keys[src] = report["finish_key"]
            remaining += report["remaining"]
            for arrival_ns, gen_ns, idx, dst, encoded in report["outbox"]:
                inboxes[dst].append((arrival_ns, gen_ns, idx, src, encoded))
                messages += 1
        if remaining == 0:
            # All flows done: the serial run stopped at its last finish
            # event.  K* is that event's key — the max over shards of the
            # last local finish (the global max necessarily happened in
            # this window, in the shard that reported it).
            kstar = max(k for k in finish_keys if k is not None)
            sim_time = kstar[0]
            break
    owner = (
        finish_keys.index(kstar) if kstar is not None else -1
    )
    for i, ch in enumerate(channels):
        ch.post_finish(kstar, i == owner)
    payloads = [ch.recv() for ch in channels]
    return payloads, sim_time, {"windows": windows, "messages": messages}


def _merge(
    config: ExperimentConfig,
    payloads: List[Dict[str, Any]],
    sim_time: int,
    diag: Dict[str, int],
    mode: str,
):
    from repro.experiments.runner import ExperimentResult

    records = [r for payload in payloads for r in payload["records"]]
    # Flow ids are pinned to the global arrival index, which is exactly
    # the serial registration (and record-list) order.
    records.sort(key=lambda r: r.flow_id)
    small_b = int(SMALL_FLOW_BYTES * config.size_scale)
    large_b = int(LARGE_FLOW_BYTES * config.size_scale)
    hazards = sum(p["hazards"] for p in payloads)
    scheduler_name = resolve_scheduler(config.scheduler)
    return ExperimentResult(
        config=config,
        stats=FctStats(records, small_bytes=small_b, large_bytes=large_b),
        sim_time_ns=sim_time,
        events=sum(p["events"] for p in payloads),
        total_reroutes=sum(p["reroutes"] for p in payloads),
        fabric=None,
        shared={
            "shard_diagnostics": {
                "shards": config.shards,
                "mode": mode,
                "hazards": hazards,
                **diag,
            }
        },
        scheduler_info={
            "name": scheduler_name,
            "shards": config.shards,
            "mode": mode,
        },
        probe_losses=sum(p["probe_drops"] for p in payloads),
    )


def _run_inline(config: ExperimentConfig, plan, lookahead_ns: int):
    channels = [
        _InlineChannel(config, shard_id, plan)
        for shard_id in range(config.shards)
    ]
    payloads, sim_time, diag = _coordinate(channels, lookahead_ns)
    return _merge(config, payloads, sim_time, diag, "in-process")


def _run_processes(config: ExperimentConfig, plan, lookahead_ns: int):
    channels: List[_ProcessChannel] = []
    try:
        for shard_id in range(config.shards):
            channels.append(_ProcessChannel(config, shard_id, plan))
        payloads, sim_time, diag = _coordinate(channels, lookahead_ns)
    finally:
        for ch in channels:
            try:
                ch.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
    return _merge(config, payloads, sim_time, diag, "multiprocess")


def run_sharded(config: ExperimentConfig, jobs: Optional[int] = None):
    """Run ``config`` spatially partitioned into ``config.shards`` pieces.

    Bit-identical to the serial runner by contract: same flow records
    (ids, FCTs, retransmissions, timeouts), same event count, same final
    clock, same reroute and probe-loss counters — enforced by the golden
    shard suite.  ``jobs`` (default: :func:`~repro.experiments.parallel.
    resolve_jobs`) only selects *how* the shards execute: one process
    each when enough cores are free, round-robin in this process
    otherwise — never what they compute.
    """
    from repro.experiments.parallel import resolve_jobs

    if config.shards < 2:
        raise ValueError("run_sharded needs shards >= 2; use run_experiment")
    spec = as_topology_spec(config.topology)
    _validate_sharded(config, spec)
    plan = spec.shard_plan(config.shards)
    lookahead_ns = spec.prop_delay_ns
    effective_jobs = resolve_jobs(jobs)
    if effective_jobs < config.shards or multiprocessing.parent_process() is not None:
        # Not enough cores for one process per shard (or already inside a
        # worker — no nested fleets): round-robin the shards here.
        return _run_inline(config, plan, lookahead_ns)
    try:
        return _run_processes(config, plan, lookahead_ns)
    except _ShardCrash:
        return _run_inline(config, plan, lookahead_ns)
