"""Declarative fault schedules: what fails, when, and when it heals.

A :class:`FaultScheduleSpec` is a plain, picklable value object — a tuple
of :class:`FaultEventSpec` entries, each naming one action at one
simulated nanosecond.  It travels inside
:class:`~repro.experiments.config.ExperimentConfig` (so it is part of the
result-cache content address) and is interpreted at run time by
:class:`repro.faults.plane.FaultSchedule`.

Supported actions (applied / reverted pairs):

=====================  =======================================  ==================
apply                  reverts with                             target fields
=====================  =======================================  ==================
``link_down``          ``link_up``                              leaf, spine
``link_degrade``       ``link_restore``                         leaf, spine, rate_gbps
``random_drop_start``  ``random_drop_stop``                     spine, drop_rate
``blackhole_on``       ``blackhole_off``                        spine, src_leaf,
                                                                dst_leaf, fraction
``flap``               (self-reverting composite)               leaf, spine,
                                                                period_ns, duty,
                                                                until_ns
=====================  =======================================  ==================

``flap`` expands at install time into alternating ``link_down``/
``link_up`` pairs: down at ``time + k*period``, back up ``duty*period``
later, until ``until_ns`` — the closing ``link_up`` is always emitted so
a flap can never leave a link permanently dark.

The CLI accepts the same schedule as a compact string (see
:func:`parse_schedule`)::

    link_down@5ms:leaf=0,spine=1; link_up@20ms:leaf=0,spine=1
    flap@2ms:leaf=0,spine=1,period=4ms,duty=0.5,until=30ms
    random_drop_start@1ms:spine=0,rate=0.02; random_drop_stop@9ms:spine=0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

#: Actions that install a malfunction.
APPLY_ACTIONS = (
    "link_down",
    "link_degrade",
    "random_drop_start",
    "blackhole_on",
    "flap",
)
#: Actions that revert one.
REVERT_ACTIONS = (
    "link_up",
    "link_restore",
    "random_drop_stop",
    "blackhole_off",
)
ACTIONS = APPLY_ACTIONS + REVERT_ACTIONS

#: apply action -> the revert action that must follow it (flap reverts
#: itself; everything else needs an explicit partner for link state to
#: be recoverable, though leaving a fault active to the horizon is legal).
REVERT_OF = {
    "link_down": "link_up",
    "link_degrade": "link_restore",
    "random_drop_start": "random_drop_stop",
    "blackhole_on": "blackhole_off",
}

#: Actions targeting one (leaf, spine) link.
LINK_ACTIONS = ("link_down", "link_up", "link_degrade", "link_restore", "flap")
#: Actions targeting one spine switch.
SPINE_ACTIONS = (
    "random_drop_start",
    "random_drop_stop",
    "blackhole_on",
    "blackhole_off",
)


@dataclass(frozen=True)
class FaultEventSpec:
    """One timed fault action.

    Only the fields the action uses are meaningful; the rest stay at
    their defaults (and therefore hash stably into the cache key).

    Attributes:
        action: one of :data:`ACTIONS`.
        time_ns: absolute simulation time the action fires at.
        leaf / spine: the targeted link (link actions) or spine switch
            (drop/blackhole actions; ``leaf`` unused there).
        rate_gbps: degraded link rate (``link_degrade``).
        drop_rate: per-packet drop probability (``random_drop_start``).
        src_leaf / dst_leaf / fraction: blackhole pair selection, as in
            :func:`repro.net.failures.blackhole_pairs_between_racks`.
        period_ns / duty / until_ns: flap cycle length, fraction of each
            period spent down, and when flapping stops.
    """

    action: str
    time_ns: int
    leaf: int = 0
    spine: int = 0
    rate_gbps: float = 0.0
    drop_rate: float = 0.0
    src_leaf: int = 0
    dst_leaf: int = 1
    fraction: float = 0.5
    period_ns: int = 0
    duty: float = 0.5
    until_ns: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {ACTIONS}"
            )
        if self.time_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_ns}")
        if self.leaf < 0 or self.spine < 0:
            raise ValueError("leaf/spine indices must be >= 0")
        if self.action == "link_degrade" and self.rate_gbps <= 0:
            raise ValueError(
                "link_degrade needs rate_gbps > 0 (use link_down to cut)"
            )
        if self.action == "random_drop_start" and not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if self.action == "blackhole_on":
            if not 0.0 <= self.fraction <= 1.0:
                raise ValueError("fraction must be in [0, 1]")
            if self.src_leaf == self.dst_leaf:
                raise ValueError("blackhole src_leaf and dst_leaf must differ")
        if self.action == "flap":
            if self.period_ns <= 0:
                raise ValueError("flap needs period_ns > 0")
            if not 0.0 < self.duty < 1.0:
                raise ValueError("flap duty must be in (0, 1)")
            if self.until_ns <= self.time_ns:
                raise ValueError("flap until_ns must be after time_ns")

    def target(self) -> str:
        """Human-readable target label, e.g. ``leaf0<->spine1``."""
        if self.action in LINK_ACTIONS:
            return f"leaf{self.leaf}<->spine{self.spine}"
        if self.action == "blackhole_on":
            return (
                f"spine{self.spine} "
                f"leaf{self.src_leaf}->leaf{self.dst_leaf}"
            )
        return f"spine{self.spine}"


@dataclass(frozen=True)
class FaultScheduleSpec:
    """An ordered collection of timed fault events (one run's script)."""

    events: Tuple[FaultEventSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept any iterable; store a tuple so the spec stays hashable
        # and its canonical form (cache key) is order-stable.
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEventSpec):
                raise ValueError(
                    f"schedule entries must be FaultEventSpec, got {event!r}"
                )
        self._check_pairing()

    def _check_pairing(self) -> None:
        """A revert without an earlier matching apply is a spec bug —
        catch it at construction, not at t=revert mid-run."""
        applied_at: dict = {}
        for event in sorted(self.events, key=lambda e: e.time_ns):
            key = self._pair_key(event)
            if event.action in REVERT_OF:
                applied_at[(REVERT_OF[event.action], *key)] = event.time_ns
            elif event.action == "flap":
                # A flap leaves the link up; a later explicit link_up is
                # a legal (idempotent) safety net.
                applied_at[("link_up", *key)] = event.time_ns
            elif event.action in REVERT_ACTIONS:
                if (event.action, *key) not in applied_at:
                    raise ValueError(
                        f"{event.action} at t={event.time_ns} on "
                        f"{event.target()} has no earlier matching apply"
                    )

    @staticmethod
    def _pair_key(event: FaultEventSpec) -> tuple:
        if event.action in LINK_ACTIONS:
            return (event.leaf, event.spine)
        return (event.spine,)

    @property
    def span_ns(self) -> Tuple[int, int]:
        """(first, last) scheduled times (flap expansion not included)."""
        if not self.events:
            return (0, 0)
        times = [e.time_ns for e in self.events]
        untils = [e.until_ns for e in self.events if e.action == "flap"]
        return (min(times), max(times + untils))

    def __bool__(self) -> bool:
        return bool(self.events)


# --------------------------------------------------------------------- #
# Builder helpers (the ergonomic way to write schedules in Python)
# --------------------------------------------------------------------- #


def link_down(time_ns: int, leaf: int, spine: int) -> FaultEventSpec:
    return FaultEventSpec("link_down", time_ns, leaf=leaf, spine=spine)


def link_up(time_ns: int, leaf: int, spine: int) -> FaultEventSpec:
    return FaultEventSpec("link_up", time_ns, leaf=leaf, spine=spine)


def link_degrade(
    time_ns: int, leaf: int, spine: int, rate_gbps: float
) -> FaultEventSpec:
    return FaultEventSpec(
        "link_degrade", time_ns, leaf=leaf, spine=spine, rate_gbps=rate_gbps
    )


def link_restore(time_ns: int, leaf: int, spine: int) -> FaultEventSpec:
    return FaultEventSpec("link_restore", time_ns, leaf=leaf, spine=spine)


def random_drop_start(time_ns: int, spine: int, drop_rate: float) -> FaultEventSpec:
    return FaultEventSpec(
        "random_drop_start", time_ns, spine=spine, drop_rate=drop_rate
    )


def random_drop_stop(time_ns: int, spine: int) -> FaultEventSpec:
    return FaultEventSpec("random_drop_stop", time_ns, spine=spine)


def blackhole_on(
    time_ns: int,
    spine: int,
    src_leaf: int = 0,
    dst_leaf: int = 1,
    fraction: float = 0.5,
) -> FaultEventSpec:
    return FaultEventSpec(
        "blackhole_on",
        time_ns,
        spine=spine,
        src_leaf=src_leaf,
        dst_leaf=dst_leaf,
        fraction=fraction,
    )


def blackhole_off(time_ns: int, spine: int) -> FaultEventSpec:
    return FaultEventSpec("blackhole_off", time_ns, spine=spine)


def flap(
    time_ns: int,
    leaf: int,
    spine: int,
    period_ns: int,
    duty: float = 0.5,
    until_ns: int = 0,
) -> FaultEventSpec:
    return FaultEventSpec(
        "flap",
        time_ns,
        leaf=leaf,
        spine=spine,
        period_ns=period_ns,
        duty=duty,
        until_ns=until_ns,
    )


def schedule(*events: FaultEventSpec) -> FaultScheduleSpec:
    """Build a schedule from events (varargs or one iterable)."""
    if len(events) == 1 and not isinstance(events[0], FaultEventSpec):
        events = tuple(events[0])
    return FaultScheduleSpec(tuple(events))


# --------------------------------------------------------------------- #
# CLI string form
# --------------------------------------------------------------------- #

_TIME_UNITS = {"s": 1_000_000_000, "ms": 1_000_000, "us": 1_000, "ns": 1}

#: string-form key -> (spec field, parser).  ``period``/``until`` take
#: time units like the ``@time`` component.
_KEY_FIELDS = {
    "leaf": ("leaf", int),
    "spine": ("spine", int),
    "gbps": ("rate_gbps", float),
    "rate": ("drop_rate", float),
    "src_leaf": ("src_leaf", int),
    "dst_leaf": ("dst_leaf", int),
    "fraction": ("fraction", float),
    "duty": ("duty", float),
}


def parse_time(text: str) -> int:
    """``"5ms"`` / ``"200us"`` / ``"1.5s"`` / ``"1000"`` -> nanoseconds."""
    text = text.strip()
    for unit in ("ms", "us", "ns", "s"):  # ms/us/ns before bare "s"
        if text.endswith(unit):
            try:
                value = float(text[: -len(unit)])
            except ValueError:
                raise ValueError(f"bad time literal {text!r}") from None
            return int(round(value * _TIME_UNITS[unit]))
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"bad time literal {text!r} (use ns/us/ms/s suffix)"
        ) from None


def parse_event(text: str) -> FaultEventSpec:
    """Parse one ``action@time[:key=value,...]`` event."""
    text = text.strip()
    head, _, tail = text.partition(":")
    if "@" not in head:
        raise ValueError(
            f"bad fault event {text!r}: expected action@time[:k=v,...]"
        )
    action, _, when = head.partition("@")
    kwargs: dict = {}
    if tail:
        for item in tail.split(","):
            key, sep, value = item.strip().partition("=")
            if not sep:
                raise ValueError(f"bad fault parameter {item!r} in {text!r}")
            key = key.strip()
            if key == "period":
                kwargs["period_ns"] = parse_time(value)
            elif key == "until":
                kwargs["until_ns"] = parse_time(value)
            elif key in _KEY_FIELDS:
                field_name, cast = _KEY_FIELDS[key]
                try:
                    kwargs[field_name] = cast(value)
                except ValueError:
                    raise ValueError(
                        f"bad value {value!r} for {key!r} in {text!r}"
                    ) from None
            else:
                raise ValueError(
                    f"unknown fault parameter {key!r} in {text!r}; known: "
                    f"{', '.join(sorted(_KEY_FIELDS))}, period, until"
                )
    return FaultEventSpec(action.strip(), parse_time(when), **kwargs)


def parse_schedule(text: str) -> FaultScheduleSpec:
    """Parse a ``;``-separated schedule string (the ``--faults`` flag)."""
    events = [
        parse_event(chunk) for chunk in text.split(";") if chunk.strip()
    ]
    if not events:
        raise ValueError("empty fault schedule")
    return FaultScheduleSpec(tuple(events))
