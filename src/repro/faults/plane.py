"""The dynamic fault plane: timed failure injection driven by the engine.

A :class:`FaultSchedule` binds a declarative
:class:`~repro.faults.spec.FaultScheduleSpec` to a live fabric: every
event is scheduled on the simulator and applied (or reverted) at exactly
its nanosecond, mid-run, while traffic is flowing.  This is what turns
the static t=0 failure injection of :mod:`repro.net.failures` into the
paper's actual subject — malfunctions that *start*, *flap*, and *heal*
while load balancers are trying to detect and route around them.

Mechanics per action family:

* ``link_down`` / ``link_up`` — both directions of the (leaf, spine)
  link enter the admin-down state (see
  :meth:`repro.net.port.OutputPort.set_admin_down`): new arrivals are
  dropped (no carrier), queued packets stall, the packet already on the
  wire drains.  ``link_up`` resumes transmission deterministically.
* ``link_degrade`` / ``link_restore`` — both directions change rate at
  the scheduled instant (next packet onward; the in-flight packet
  finishes at the old rate).  Original rates are remembered and restored.
* ``random_drop_start`` / ``stop`` and ``blackhole_on`` / ``off`` — the
  revocable handles of :mod:`repro.net.failures`, installed on the
  spine's downlinks and removed again on the revert event.
* ``flap`` — expanded at install time into alternating down/up pairs.

Every applied/reverted transition is recorded as a :class:`FaultRecord`
(the run's *fault timeline*), mirrored into the telemetry tracer and the
decision audit when those layers are attached, so ``why_left`` queries
can correlate reroutes with the failure that triggered them.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.faults.spec import FaultEventSpec, FaultScheduleSpec
from repro.net.failures import (
    BlackholeFailure,
    RandomDropFailure,
    blackhole_pairs_between_racks,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.net.port import OutputPort


class FaultRecord:
    """One applied/reverted transition in the run's fault timeline."""

    __slots__ = ("time_ns", "action", "target", "phase", "detail")

    def __init__(
        self,
        time_ns: int,
        action: str,
        target: str,
        phase: str,
        detail: Optional[dict] = None,
    ) -> None:
        self.time_ns = time_ns
        self.action = action
        self.target = target
        self.phase = phase  # "applied" | "reverted"
        self.detail = detail if detail is not None else {}

    def to_dict(self) -> dict:
        return {
            "t": self.time_ns,
            "action": self.action,
            "target": self.target,
            "phase": self.phase,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultRecord(t={self.time_ns} {self.action} {self.target} "
            f"{self.phase})"
        )


#: Revert actions (used to stamp the record phase).
_REVERTS = frozenset(
    ("link_up", "link_restore", "random_drop_stop", "blackhole_off")
)


class FaultSchedule:
    """A spec bound to one live fabric.

    Args:
        fabric: the running network.
        spec: the declarative schedule.
        rng: dedicated random stream (blackhole pair picks and drop
            coin-flips draw here, never from workload/LB streams).
        audit: optional :class:`repro.telemetry.audit.DecisionAudit`;
            fault transitions are logged there when attached.

    Call :meth:`install` once, before :meth:`Simulator.run`; targets are
    validated eagerly so a misaddressed schedule fails at install time,
    not at t=fire mid-run.
    """

    def __init__(
        self,
        fabric: "Fabric",
        spec: FaultScheduleSpec,
        rng: Optional[random.Random] = None,
        audit: Optional[object] = None,
    ) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.spec = spec
        self.rng = rng if rng is not None else random.Random(0)
        self.audit = audit
        self.records: List[FaultRecord] = []
        self.applied = 0
        self.reverted = 0
        self._installed = False
        # Live handles, keyed by target.
        self._drops: Dict[int, RandomDropFailure] = {}
        self._blackholes: Dict[int, BlackholeFailure] = {}
        self._orig_rates: Dict[Tuple[int, int], Tuple[float, float]] = {}
        #: total packets eaten by this schedule's drop/blackhole handles
        #: (link-down losses are counted on the ports themselves).
        self.injected_drops = 0

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #

    def expanded_events(self) -> List[FaultEventSpec]:
        """The schedule with every ``flap`` unrolled into down/up pairs,
        sorted by (time, spec order) — pure and deterministic."""
        from repro.faults.spec import link_down, link_up

        out: List[Tuple[int, int, FaultEventSpec]] = []
        for order, event in enumerate(self.spec.events):
            if event.action != "flap":
                out.append((event.time_ns, order, event))
                continue
            down_ns = int(round(event.period_ns * event.duty))
            t = event.time_ns
            while t < event.until_ns:
                out.append((t, order, link_down(t, event.leaf, event.spine)))
                out.append(
                    (t + down_ns, order, link_up(t + down_ns, event.leaf, event.spine))
                )
                t += event.period_ns
        out.sort(key=lambda item: (item[0], item[1]))
        return [event for _, _, event in out]

    def install(self) -> "FaultSchedule":
        """Validate every target and schedule every event on the engine."""
        if self._installed:
            raise RuntimeError("fault schedule already installed")
        self._installed = True
        events = self.expanded_events()
        for event in events:
            self._validate_target(event)
        for event in events:
            self.sim.schedule_at(event.time_ns, self._fire, event)
        return self

    def _validate_target(self, event: FaultEventSpec) -> None:
        cfg = self.fabric.config
        if event.spine >= cfg.n_spines:
            raise ValueError(
                f"{event.action} targets spine {event.spine} outside the "
                f"topology ({cfg.n_spines} spines)"
            )
        if event.action in ("link_down", "link_up", "link_degrade", "link_restore"):
            if event.leaf >= cfg.n_leaves:
                raise ValueError(
                    f"{event.action} targets leaf {event.leaf} outside the "
                    f"topology ({cfg.n_leaves} leaves)"
                )
            up, down = self._link_ports(event.leaf, event.spine)
            if up is None or down is None:
                raise ValueError(
                    f"{event.action} targets link leaf{event.leaf}<->"
                    f"spine{event.spine}, which the topology cuts statically"
                )
        if event.action == "blackhole_on":
            if event.src_leaf >= cfg.n_leaves or event.dst_leaf >= cfg.n_leaves:
                raise ValueError(
                    f"blackhole_on leaves ({event.src_leaf}, {event.dst_leaf}) "
                    f"outside the topology ({cfg.n_leaves} leaves)"
                )

    def _link_ports(
        self, leaf: int, spine: int
    ) -> Tuple[Optional["OutputPort"], Optional["OutputPort"]]:
        topo = self.fabric.topology
        return topo.leaf_up[leaf][spine], topo.spine_down[spine][leaf]

    # ------------------------------------------------------------------ #
    # Event dispatch
    # ------------------------------------------------------------------ #

    def _fire(self, event: FaultEventSpec) -> None:
        detail = getattr(self, f"_do_{event.action}")(event)
        phase = "reverted" if event.action in _REVERTS else "applied"
        record = FaultRecord(
            self.sim.now, event.action, event.target(), phase, detail
        )
        self.records.append(record)
        if phase == "applied":
            self.applied += 1
        else:
            self.reverted += 1
        tracer = self.fabric._tracer
        if tracer is not None:
            tracer.on_fault(record)
        if self.audit is not None:
            self.audit.on_fault(record)

    # --- link admin state --------------------------------------------- #

    def _do_link_down(self, event: FaultEventSpec) -> dict:
        up, down = self._link_ports(event.leaf, event.spine)
        up.set_admin_down(True)
        down.set_admin_down(True)
        return {"stalled_bytes": up.backlog_bytes + down.backlog_bytes}

    def _do_link_up(self, event: FaultEventSpec) -> dict:
        up, down = self._link_ports(event.leaf, event.spine)
        drops = up.drops_linkdown + down.drops_linkdown
        up.set_admin_down(False)
        down.set_admin_down(False)
        return {"drops_while_down": drops}

    # --- link rate ---------------------------------------------------- #

    def _do_link_degrade(self, event: FaultEventSpec) -> dict:
        up, down = self._link_ports(event.leaf, event.spine)
        key = (event.leaf, event.spine)
        if key not in self._orig_rates:
            self._orig_rates[key] = (up.rate_bps, down.rate_bps)
        new_rate = event.rate_gbps * 1e9
        old = up.rate_bps
        up.set_rate(new_rate)
        down.set_rate(new_rate)
        return {"from_gbps": old / 1e9, "to_gbps": event.rate_gbps}

    def _do_link_restore(self, event: FaultEventSpec) -> dict:
        up, down = self._link_ports(event.leaf, event.spine)
        key = (event.leaf, event.spine)
        rates = self._orig_rates.pop(key, None)
        if rates is None:
            # restore without a live degrade: idempotent no-op.
            return {"noop": True}
        up.set_rate(rates[0])
        down.set_rate(rates[1])
        return {"to_gbps": rates[0] / 1e9}

    # --- silent random drops ------------------------------------------ #

    def _do_random_drop_start(self, event: FaultEventSpec) -> dict:
        old = self._drops.pop(event.spine, None)
        if old is not None:  # restarted with a new rate: swap handles
            self.injected_drops += old.dropped
            old.uninstall()
        failure = RandomDropFailure(event.drop_rate, self.rng)
        failure.install(self.fabric.topology, event.spine)
        self._drops[event.spine] = failure
        return {"drop_rate": event.drop_rate}

    def _do_random_drop_stop(self, event: FaultEventSpec) -> dict:
        failure = self._drops.pop(event.spine, None)
        if failure is None:
            return {"noop": True}
        failure.uninstall()
        self.injected_drops += failure.dropped
        return {"dropped": failure.dropped}

    # --- blackholes --------------------------------------------------- #

    def _do_blackhole_on(self, event: FaultEventSpec) -> dict:
        old = self._blackholes.pop(event.spine, None)
        if old is not None:
            self.injected_drops += old.dropped
            old.uninstall()
        pairs = blackhole_pairs_between_racks(
            self.fabric.topology,
            event.src_leaf,
            event.dst_leaf,
            event.fraction,
            self.rng,
        )
        failure = BlackholeFailure(pairs)
        failure.install(self.fabric.topology, event.spine)
        self._blackholes[event.spine] = failure
        return {"pairs": len(pairs)}

    def _do_blackhole_off(self, event: FaultEventSpec) -> dict:
        failure = self._blackholes.pop(event.spine, None)
        if failure is None:
            return {"noop": True}
        failure.uninstall()
        self.injected_drops += failure.dropped
        return {"dropped": failure.dropped}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def timeline(self) -> Tuple[dict, ...]:
        """The fault timeline as picklable dicts (oldest first)."""
        return tuple(record.to_dict() for record in self.records)

    def first_applied_ns(self) -> Optional[int]:
        times = [r.time_ns for r in self.records if r.phase == "applied"]
        return min(times) if times else None

    def last_reverted_ns(self) -> Optional[int]:
        times = [r.time_ns for r in self.records if r.phase == "reverted"]
        return max(times) if times else None

    def total_injected_drops(self) -> int:
        """Packets eaten by drop/blackhole handles so far (live included)."""
        live = sum(f.dropped for f in self._drops.values())
        live += sum(f.dropped for f in self._blackholes.values())
        return self.injected_drops + live
