"""Time-scheduled fault injection (the dynamic fault plane).

Declarative layer (:mod:`repro.faults.spec`): build or parse a
:class:`FaultScheduleSpec` — a validated, hashable timeline of fault
events.  Runtime layer (:mod:`repro.faults.plane`): bind it to a live
fabric with :class:`FaultSchedule` and the engine applies/reverts each
fault at its scheduled nanosecond.
"""

from repro.faults.plane import FaultRecord, FaultSchedule
from repro.faults.spec import (
    APPLY_ACTIONS,
    REVERT_ACTIONS,
    FaultEventSpec,
    FaultScheduleSpec,
    blackhole_off,
    blackhole_on,
    flap,
    link_degrade,
    link_down,
    link_restore,
    link_up,
    parse_event,
    parse_schedule,
    parse_time,
    random_drop_start,
    random_drop_stop,
    schedule,
)

__all__ = [
    "APPLY_ACTIONS",
    "REVERT_ACTIONS",
    "FaultEventSpec",
    "FaultScheduleSpec",
    "FaultRecord",
    "FaultSchedule",
    "blackhole_off",
    "blackhole_on",
    "flap",
    "link_degrade",
    "link_down",
    "link_restore",
    "link_up",
    "parse_event",
    "parse_schedule",
    "parse_time",
    "random_drop_start",
    "random_drop_stop",
    "schedule",
]
