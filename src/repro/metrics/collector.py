"""Time-series collectors — deprecated compatibility re-exports.

The samplers moved to :mod:`repro.telemetry.series`, where they share the
cancellable-tick :class:`~repro.telemetry.series.PeriodicSampler` base
(the old ``QueueSampler.stop()`` left its pending tick in the heap; the
migrated one cancels it).  This module keeps the historical import path
alive but warns: import from ``repro.telemetry.series`` instead.  Every
in-repo caller has been migrated; the path survives one more release for
external scripts, then goes away.
"""

from __future__ import annotations

import warnings

from repro.telemetry.series import QueueSampler, UtilizationTracker

__all__ = ["QueueSampler", "UtilizationTracker"]

warnings.warn(
    "repro.metrics.collector is deprecated; import QueueSampler and "
    "UtilizationTracker from repro.telemetry.series instead",
    DeprecationWarning,
    stacklevel=2,
)
