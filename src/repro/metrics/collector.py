"""Time-series collectors: queue occupancy and link utilization.

Used by the motivation microbenchmarks (queue oscillation in Figs. 2–4)
and by sanity checks in tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.net.port import OutputPort
from repro.sim.engine import Simulator


class QueueSampler:
    """Samples the backlog of a set of ports at a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        ports: Sequence[OutputPort],
        period_ns: int = 100_000,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.ports = list(ports)
        self.period_ns = period_ns
        self.samples: Dict[str, List[Tuple[int, int]]] = {
            port.name: [] for port in self.ports
        }
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.sim.schedule(self.period_ns, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for port in self.ports:
            self.samples[port.name].append((now, port.backlog_bytes))
        self.sim.schedule(self.period_ns, self._tick)

    def max_backlog(self, port_name: str) -> int:
        """Largest sampled backlog for one port."""
        series = self.samples[port_name]
        return max((b for _, b in series), default=0)

    def mean_backlog(self, port_name: str) -> float:
        series = self.samples[port_name]
        if not series:
            return 0.0
        return sum(b for _, b in series) / len(series)

    def stddev_backlog(self, port_name: str) -> float:
        """Backlog standard deviation — the queue-oscillation measure."""
        series = self.samples[port_name]
        if len(series) < 2:
            return 0.0
        mean = self.mean_backlog(port_name)
        var = sum((b - mean) ** 2 for _, b in series) / (len(series) - 1)
        return var**0.5


class UtilizationTracker:
    """Average utilization of ports over a measurement window."""

    def __init__(self, sim: Simulator, ports: Sequence[OutputPort]) -> None:
        self.sim = sim
        self.ports = list(ports)
        self._start_ns = sim.now
        self._bytes_at_start = {p.name: p.bytes_sent for p in self.ports}

    def reset(self) -> None:
        self._start_ns = self.sim.now
        self._bytes_at_start = {p.name: p.bytes_sent for p in self.ports}

    def utilization(self) -> Dict[str, float]:
        """Per-port average utilization since the last reset."""
        return {
            p.name: p.utilization_since(
                self._start_ns, self._bytes_at_start[p.name]
            )
            for p in self.ports
        }
