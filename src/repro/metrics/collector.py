"""Time-series collectors — compatibility re-exports.

The samplers moved to :mod:`repro.telemetry.series`, where they share the
cancellable-tick :class:`~repro.telemetry.series.PeriodicSampler` base
(the old ``QueueSampler.stop()`` left its pending tick in the heap; the
migrated one cancels it).  This module keeps the historical import path
for the motivation microbenchmarks and examples.
"""

from __future__ import annotations

from repro.telemetry.series import QueueSampler, UtilizationTracker

__all__ = ["QueueSampler", "UtilizationTracker"]
