"""Removed module — the samplers live in :mod:`repro.telemetry.series`.

``repro.metrics.collector`` was a deprecated compatibility shim from the
PR-6 telemetry migration (``QueueSampler`` / ``UtilizationTracker``
re-exports with a ``DeprecationWarning``).  The grace release has passed:
importing this module is now a hard error so stale external scripts fail
loudly at import time instead of silently depending on a layer that no
longer exists.
"""

from __future__ import annotations

raise ImportError(
    "repro.metrics.collector was removed; import QueueSampler and "
    "UtilizationTracker from repro.telemetry.series instead"
)
