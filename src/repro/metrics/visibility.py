"""Visibility measurement (paper Table 2).

The paper quantifies *network visibility* as the average number of
concurrent flows observed on parallel paths — at the ToR switch (which
sees every flow of its rack) versus at an end host (which only sees its
own flows).  A ToR-pair observes several concurrent flows at 60–80% load
while a host-pair observes ~0.01, which is why piggybacking-only edge
schemes are nearly blind and Hermes adds active probing.

The sampler counts active inter-rack flows periodically; per-pair
averages follow from uniform random pair selection.
"""

from __future__ import annotations

from typing import List, Set, TYPE_CHECKING

from repro.telemetry.series import PeriodicSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.transport.base import FlowBase


class VisibilitySampler(PeriodicSampler):
    """Periodically samples concurrent-flow counts per switch/host pair."""

    def __init__(self, fabric: "Fabric", period_ns: int = 1_000_000) -> None:
        super().__init__(fabric.sim, period_ns)
        self.fabric = fabric
        self._active: Set[int] = set()
        self._samples_leaf_pair: List[float] = []
        self._samples_host_pair: List[float] = []

    # ------------------------- flow tracking -------------------------- #

    def flow_started(self, flow: "FlowBase") -> None:
        if self.fabric.topology.leaf_of(flow.src) != self.fabric.topology.leaf_of(
            flow.dst
        ):
            self._active.add(flow.flow_id)

    def flow_finished(self, flow: "FlowBase") -> None:
        self._active.discard(flow.flow_id)

    # --------------------------- sampling ----------------------------- #

    def sample(self, now: int) -> None:
        cfg = self.fabric.config
        n_leaf_pairs = cfg.n_leaves * (cfg.n_leaves - 1)
        hosts_per_leaf = cfg.hosts_per_leaf
        n_host_pairs = n_leaf_pairs * hosts_per_leaf * hosts_per_leaf
        active = len(self._active)
        self._samples_leaf_pair.append(active / n_leaf_pairs)
        self._samples_host_pair.append(active / n_host_pairs)

    # ---------------------------- results ----------------------------- #

    def switch_pair_visibility(self) -> float:
        """Average concurrent flows between an ordered ToR pair."""
        samples = self._samples_leaf_pair
        return sum(samples) / len(samples) if samples else 0.0

    def host_pair_visibility(self) -> float:
        """Average concurrent flows between an ordered host pair."""
        samples = self._samples_host_pair
        return sum(samples) / len(samples) if samples else 0.0
