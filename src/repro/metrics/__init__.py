"""Metrics: FCT statistics, queue/throughput sampling, visibility.

FCT is the paper's primary metric, broken down into small (<100 KB) and
large (>10 MB) flows; the visibility counter reproduces Table 2.
"""

from repro.metrics.fct import FlowRecord, FctStats, SMALL_FLOW_BYTES, LARGE_FLOW_BYTES
from repro.metrics.streaming import STREAMING_AUTO_FLOWS, StreamingFctStats
from repro.telemetry.series import QueueSampler, UtilizationTracker
from repro.metrics.visibility import VisibilitySampler

__all__ = [
    "FlowRecord",
    "FctStats",
    "StreamingFctStats",
    "STREAMING_AUTO_FLOWS",
    "SMALL_FLOW_BYTES",
    "LARGE_FLOW_BYTES",
    "QueueSampler",
    "UtilizationTracker",
    "VisibilitySampler",
]
