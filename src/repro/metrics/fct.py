"""Flow completion time statistics.

The paper reports the overall average FCT and breakdowns for small
(<100 KB) and large (>10 MB) flows, including 99th percentiles for small
flows, plus the fraction of unfinished flows in the blackhole scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

SMALL_FLOW_BYTES = 100_000
LARGE_FLOW_BYTES = 10_000_000


@dataclass(frozen=True)
class FlowRecord:
    """Outcome of one flow (``fct_ns`` is ``None`` if it never finished)."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_ns: int
    fct_ns: Optional[int]
    retransmissions: int = 0
    timeouts: int = 0

    @property
    def finished(self) -> bool:
        return self.fct_ns is not None

    @property
    def is_small(self) -> bool:
        return self.size_bytes < SMALL_FLOW_BYTES

    @property
    def is_large(self) -> bool:
        return self.size_bytes > LARGE_FLOW_BYTES


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted data, q in [0, 100]."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (len(sorted_values) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(sorted_values[lo])
    frac = rank - lo
    low_value = sorted_values[lo]
    return low_value + (sorted_values[hi] - low_value) * frac


class FctStats:
    """Aggregate FCT statistics over a set of flow records.

    Args:
        records: flow outcomes.
        small_bytes / large_bytes: bucket boundaries for the small/large
            breakdowns.  Runs with scaled flow sizes must scale these
            identically (the experiment runner does so automatically).
    """

    #: Discriminator shared with
    #: :class:`repro.metrics.streaming.StreamingFctStats`, which offers
    #: the same read surface in O(centroids) memory.
    is_streaming = False

    def __init__(
        self,
        records: Iterable[FlowRecord],
        small_bytes: int = SMALL_FLOW_BYTES,
        large_bytes: int = LARGE_FLOW_BYTES,
    ) -> None:
        self.records: List[FlowRecord] = list(records)
        self.small_bytes = small_bytes
        self.large_bytes = large_bytes
        self._fcts = sorted(
            r.fct_ns for r in self.records if r.fct_ns is not None
        )

    # -------------------------- selections ---------------------------- #

    def subset(self, predicate) -> "FctStats":
        """Stats over the records matching ``predicate``."""
        return FctStats(
            (r for r in self.records if predicate(r)),
            small_bytes=self.small_bytes,
            large_bytes=self.large_bytes,
        )

    @property
    def small(self) -> "FctStats":
        return self.subset(lambda r: r.size_bytes < self.small_bytes)

    @property
    def large(self) -> "FctStats":
        return self.subset(lambda r: r.size_bytes > self.large_bytes)

    # -------------------------- aggregates ---------------------------- #

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def finished_count(self) -> int:
        return len(self._fcts)

    @property
    def unfinished_count(self) -> int:
        return self.count - self.finished_count

    @property
    def unfinished_fraction(self) -> float:
        return self.unfinished_count / self.count if self.count else 0.0

    def mean_ms(self, penalize_unfinished_ns: Optional[int] = None) -> float:
        """Average FCT in milliseconds over finished flows.

        If ``penalize_unfinished_ns`` is given, unfinished flows enter the
        average at that value (the paper's blackhole plots count them,
        which is what makes ECMP 9–22x worse there).
        """
        values = list(self._fcts)
        if penalize_unfinished_ns is not None:
            values.extend([penalize_unfinished_ns] * self.unfinished_count)
        if not values:
            return float("nan")
        return sum(values) / len(values) / 1e6

    def median_ms(self) -> float:
        if not self._fcts:
            return float("nan")
        return percentile(self._fcts, 50.0) / 1e6

    def p99_ms(self) -> float:
        if not self._fcts:
            return float("nan")
        return percentile(self._fcts, 99.0) / 1e6

    def total_retransmissions(self) -> int:
        return sum(r.retransmissions for r in self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FctStats(n={self.count}, finished={self.finished_count}, "
            f"mean={self.mean_ms():.3f}ms)"
        )
