"""Bounded-memory FCT statistics behind the exact collector's surface.

:class:`~repro.metrics.fct.FctStats` keeps every flow record and sorts
the FCT list for percentiles — O(flows) memory, which caps single-cell
workloads far below the million-flow scale the ROADMAP targets.
:class:`StreamingFctStats` offers the same read surface (``count`` /
``finished_count`` / ``unfinished_fraction`` / ``mean_ms`` /
``median_ms`` / ``p99_ms`` / ``small`` / ``large`` /
``total_retransmissions``) while retaining only O(centroids) state:

* exact counters (counts, FCT sum, retransmissions, timeouts) — means
  and fractions are *exact*, never estimated;
* one :class:`~repro.telemetry.digest.TDigest` per flow-size bucket
  (all / small / large) for percentiles;
* one seeded :class:`~repro.telemetry.digest.ReservoirSampler` per
  bucket as the cross-check estimator.  While a run is small enough
  that the reservoir still holds every FCT, the reservoir *is* exact
  and is used as the estimator of record; past that point the t-digest
  takes over.  :meth:`estimators` reports which one produced each
  percentile — carried into ``ResultSummary.percentile_estimators`` so
  a summary is explicit about estimated vs exact tails.

Collectors from parallel shards/workers merge associatively with
:meth:`merge`, and :meth:`to_dict` / :meth:`from_dict` round-trip the
full state through JSON (how the experiment service ships streaming
results over the wire).

What it does *not* offer: ``records`` (there are none — that is the
point) and ``subset`` (arbitrary predicates need records).  Callers
that require per-flow records must run with ``streaming_stats=False``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.metrics.fct import (
    LARGE_FLOW_BYTES,
    SMALL_FLOW_BYTES,
    FlowRecord,
)
from repro.telemetry.digest import ReservoirSampler, TDigest

__all__ = ["StreamingFctStats", "STREAMING_AUTO_FLOWS"]

#: Flow count at which the runner switches to streaming collection when
#: ``ExperimentConfig.streaming_stats`` is left at ``None`` (auto).
#: Below this, exact records stay cheap and some consumers (save_result
#: CSV export, recovery forensics) want them.
STREAMING_AUTO_FLOWS = 200_000

#: Reservoir size: runs with up to this many finished flows get exact
#: percentiles from the reservoir; larger runs use the t-digest.
DEFAULT_RESERVOIR = 4096

#: t-digest compression: ~2x centroids; <1% relative error at p50/p99
#: on the FCT distributions the workload generator produces.
DEFAULT_COMPRESSION = 400.0


class StreamingFctStats:
    """Mergeable constant-memory stand-in for :class:`FctStats`.

    Args:
        small_bytes / large_bytes: bucket boundaries, pre-scaled by the
            caller exactly like :class:`FctStats`.
        compression: t-digest accuracy knob.
        reservoir_capacity: cross-check sample size.
        seed: reservoir seed — collectors that must merge
            deterministically should use the experiment seed.
    """

    #: Discriminator for code handling both collector flavours.
    is_streaming = True

    def __init__(
        self,
        small_bytes: int = SMALL_FLOW_BYTES,
        large_bytes: int = LARGE_FLOW_BYTES,
        compression: float = DEFAULT_COMPRESSION,
        reservoir_capacity: int = DEFAULT_RESERVOIR,
        seed: int = 1,
        _buckets: bool = True,
    ) -> None:
        self.small_bytes = small_bytes
        self.large_bytes = large_bytes
        self.compression = compression
        self.reservoir_capacity = reservoir_capacity
        self.seed = seed
        self._digest = TDigest(compression)
        self._reservoir = ReservoirSampler(reservoir_capacity, seed=seed)
        self.count = 0
        self.finished_count = 0
        self._fct_sum_ns = 0
        self._retransmissions = 0
        self._timeouts = 0
        # The small/large views are full collectors minus their own
        # sub-buckets (a small flow has no "small of small").
        self.small: "StreamingFctStats"
        self.large: "StreamingFctStats"
        if _buckets:
            self.small = StreamingFctStats(
                small_bytes, large_bytes, compression,
                reservoir_capacity, seed + 1, _buckets=False,
            )
            self.large = StreamingFctStats(
                small_bytes, large_bytes, compression,
                reservoir_capacity, seed + 2, _buckets=False,
            )

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def add(
        self,
        size_bytes: int,
        fct_ns: Optional[int],
        retransmissions: int = 0,
        timeouts: int = 0,
    ) -> None:
        """Fold one flow outcome in (``fct_ns=None`` = never finished)."""
        self._add_one(fct_ns, retransmissions, timeouts)
        bucket = self._bucket_for(size_bytes)
        if bucket is not None:
            bucket._add_one(fct_ns, retransmissions, timeouts)

    def add_record(self, record: FlowRecord) -> None:
        self.add(
            record.size_bytes,
            record.fct_ns,
            record.retransmissions,
            record.timeouts,
        )

    def _bucket_for(self, size_bytes: int) -> Optional["StreamingFctStats"]:
        if size_bytes < self.small_bytes:
            return self.small
        if size_bytes > self.large_bytes:
            return self.large
        return None

    def _add_one(
        self, fct_ns: Optional[int], retransmissions: int, timeouts: int
    ) -> None:
        self.count += 1
        self._retransmissions += retransmissions
        self._timeouts += timeouts
        if fct_ns is not None:
            self.finished_count += 1
            self._fct_sum_ns += fct_ns
            self._digest.add(float(fct_ns))
            self._reservoir.add(float(fct_ns))

    # ------------------------------------------------------------------ #
    # Aggregates (FctStats read surface)
    # ------------------------------------------------------------------ #

    @property
    def unfinished_count(self) -> int:
        return self.count - self.finished_count

    @property
    def unfinished_fraction(self) -> float:
        return self.unfinished_count / self.count if self.count else 0.0

    def mean_ms(self, penalize_unfinished_ns: Optional[int] = None) -> float:
        """Exact (sum/count, not estimated), same semantics as
        :meth:`FctStats.mean_ms`."""
        total = self._fct_sum_ns
        n = self.finished_count
        if penalize_unfinished_ns is not None:
            total += penalize_unfinished_ns * self.unfinished_count
            n += self.unfinished_count
        if n == 0:
            return float("nan")
        return total / n / 1e6

    def median_ms(self) -> float:
        return self.percentile_ms(50.0)

    def p99_ms(self) -> float:
        return self.percentile_ms(99.0)

    def percentile_ms(self, q: float) -> float:
        """Estimated percentile (``q`` in [0, 100]); NaN when empty."""
        value_ns, _ = self.quantile_ns(q)
        return float("nan") if value_ns is None else value_ns / 1e6

    def quantile_ns(self, q: float) -> Tuple[Optional[float], str]:
        """(value_ns, estimator) — estimator is ``"reservoir"`` while
        the reservoir still holds every FCT (exact), else
        ``"tdigest"``; ``(None, "none")`` for an empty bucket."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.finished_count == 0:
            return None, "none"
        if self._reservoir.exact:
            return self._reservoir.quantile(q / 100.0), "reservoir"
        return self._digest.quantile(q / 100.0), "tdigest"

    def cross_check_ms(self, q: float) -> float:
        """The *other* estimator's value for ``q`` — reservoir when the
        digest answered, digest otherwise.  Large disagreement between
        the two flags an estimator bug (asserted by the bench)."""
        if self.finished_count == 0:
            return float("nan")
        if self._reservoir.exact:
            return self._digest.quantile(q / 100.0) / 1e6
        return self._reservoir.quantile(q / 100.0) / 1e6

    def estimators(self) -> Dict[str, str]:
        """Which estimator produced each reported percentile."""
        _, name = self.quantile_ns(50.0)
        # Same selection rule for every q; spelled per-percentile so the
        # summary stays self-describing if the rule ever differentiates.
        return {"p50": name, "p99": name}

    def total_retransmissions(self) -> int:
        return self._retransmissions

    def total_timeouts(self) -> int:
        return self._timeouts

    def memory_items(self) -> int:
        """Retained items across all buckets (centroids + buffers +
        reservoir samples) — the bounded-memory assertion target."""
        own = self._digest.memory_items() + len(self._reservoir.sample)
        for bucket in (getattr(self, "small", None), getattr(self, "large", None)):
            if isinstance(bucket, StreamingFctStats):
                own += bucket.memory_items()
        return own

    # ------------------------------------------------------------------ #
    # Unsupported parts of the exact surface
    # ------------------------------------------------------------------ #

    @property
    def records(self) -> tuple:
        """Always empty: a streaming collector keeps no per-flow
        records.  Exporters that need them must run exact."""
        return ()

    def subset(self, predicate) -> "FctStats":
        raise NotImplementedError(
            "StreamingFctStats cannot evaluate arbitrary predicates — "
            "per-flow records are not retained; run with "
            "streaming_stats=False for subset queries"
        )

    # ------------------------------------------------------------------ #
    # Merge (shard composition)
    # ------------------------------------------------------------------ #

    def merge(self, other: "StreamingFctStats") -> None:
        """Absorb another collector (e.g. a parallel shard's).

        Counters add exactly; digests merge associatively; reservoirs
        merge by weighted resampling.  Bucket boundaries must match —
        merging differently-scaled cells would silently mix units.
        """
        if (self.small_bytes, self.large_bytes) != (
            other.small_bytes, other.large_bytes
        ):
            raise ValueError(
                "cannot merge collectors with different size buckets: "
                f"{(self.small_bytes, self.large_bytes)} vs "
                f"{(other.small_bytes, other.large_bytes)}"
            )
        self._merge_one(other)
        for name in ("small", "large"):
            mine = getattr(self, name, None)
            theirs = getattr(other, name, None)
            if isinstance(mine, StreamingFctStats) and isinstance(
                theirs, StreamingFctStats
            ):
                mine._merge_one(theirs)

    def _merge_one(self, other: "StreamingFctStats") -> None:
        self.count += other.count
        self.finished_count += other.finished_count
        self._fct_sum_ns += other._fct_sum_ns
        self._retransmissions += other._retransmissions
        self._timeouts += other._timeouts
        self._digest.merge(other._digest)
        self._reservoir = self._reservoir.merged(other._reservoir)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe full state; :meth:`from_dict` restores it exactly."""
        out = self._one_to_dict()
        out["small"] = self.small._one_to_dict()
        out["large"] = self.large._one_to_dict()
        return out

    def _one_to_dict(self) -> Dict[str, Any]:
        return {
            "small_bytes": self.small_bytes,
            "large_bytes": self.large_bytes,
            "compression": self.compression,
            "reservoir_capacity": self.reservoir_capacity,
            "seed": self.seed,
            "count": self.count,
            "finished_count": self.finished_count,
            "fct_sum_ns": self._fct_sum_ns,
            "retransmissions": self._retransmissions,
            "timeouts": self._timeouts,
            "digest": self._digest.to_dict(),
            "reservoir": self._reservoir.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamingFctStats":
        stats = cls._one_from_dict(data, _buckets=True)
        if "small" in data:
            stats.small = cls._one_from_dict(data["small"], _buckets=False)
        if "large" in data:
            stats.large = cls._one_from_dict(data["large"], _buckets=False)
        return stats

    @classmethod
    def _one_from_dict(
        cls, data: Dict[str, Any], _buckets: bool
    ) -> "StreamingFctStats":
        stats = cls(
            small_bytes=data["small_bytes"],
            large_bytes=data["large_bytes"],
            compression=data["compression"],
            reservoir_capacity=data["reservoir_capacity"],
            seed=data["seed"],
            _buckets=_buckets,
        )
        stats.count = int(data["count"])
        stats.finished_count = int(data["finished_count"])
        stats._fct_sum_ns = int(data["fct_sum_ns"])
        stats._retransmissions = int(data["retransmissions"])
        stats._timeouts = int(data["timeouts"])
        stats._digest = TDigest.from_dict(data["digest"])
        stats._reservoir = ReservoirSampler.from_dict(data["reservoir"])
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingFctStats(n={self.count}, "
            f"finished={self.finished_count}, "
            f"memory_items={self.memory_items()})"
        )
