"""Terminal plots: sparkline series and CDF tables.

The benches and examples render everything as text (there is no display
in CI); these helpers make time series (queue occupancy, goodput) and
distributions legible without matplotlib.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a unicode sparkline, resampled to ``width``."""
    if not values:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    resampled = _resample(list(values), min(width, len(values)))
    lo = min(resampled)
    hi = max(resampled)
    span = hi - lo
    if span == 0:
        return _BARS[1] * len(resampled)
    chars = []
    for value in resampled:
        idx = 1 + int((value - lo) / span * (len(_BARS) - 2))
        chars.append(_BARS[min(idx, len(_BARS) - 1)])
    return "".join(chars)


def _resample(values: List[float], width: int) -> List[float]:
    """Average-pool a series down to ``width`` buckets."""
    if len(values) <= width:
        return values
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def cdf_table(
    samples: Sequence[float], quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
) -> List[Tuple[float, float]]:
    """Empirical quantiles of a sample as ``(q, value)`` pairs."""
    if not samples:
        raise ValueError("empty sample")
    data = sorted(samples)
    out = []
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        rank = min(len(data) - 1, int(q * len(data)))
        out.append((q, float(data[rank])))
    return out


def series_block(
    name: str, series: Sequence[Tuple[float, float]], unit: str = ""
) -> str:
    """A labelled sparkline block for a ``(time, value)`` series."""
    values = [v for _, v in series]
    if not values:
        return f"{name}: (no samples)"
    line = sparkline(values)
    suffix = f" {unit}" if unit else ""
    return (
        f"{name}: {line}\n"
        f"  min={min(values):.3g}{suffix}  mean="
        f"{sum(values) / len(values):.3g}{suffix}  max={max(values):.3g}{suffix}"
    )
