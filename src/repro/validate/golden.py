"""Golden regression pinning for the reference experiment grid.

The simulator is deterministic: the same config produces bit-identical
flow records on every run.  That makes regression pinning cheap and
brutal — this module runs the reference grid (the ``bench_perf_core``
shape: every factory scheme x 2 loads) and compares its summary
statistics (avg/p99 FCT per scheme, unfinished counts, reroutes, event
counts) against a committed JSON file, so a perf refactor that changes
*any* result — event ordering, byte accounting, timer behaviour — fails
loudly instead of silently shifting every figure.

Refresh after an *intentional* behaviour change with one command::

    PYTHONPATH=src python -m repro golden --refresh

Comparisons use a tiny relative tolerance (1e-9) purely to absorb libm
differences across platforms; any genuine behaviour change is many
orders of magnitude larger.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.lb.factory import SPRAYING_SCHEMES, scheme_names

#: Every registered scheme gets a golden row — derived from the factory
#: so a scheme cannot land without pinning its reference behaviour
#: (tests/test_golden_grid.py asserts the counts stay in lockstep).
GOLDEN_SCHEMES = scheme_names()
GOLDEN_LOADS = (0.5, 0.7)
GOLDEN_FLOWS = 40
GOLDEN_SIZE_SCALE = 0.05
GOLDEN_SEED = 1

#: Relative tolerance for float comparison: absorbs cross-platform libm
#: jitter, catches every real change.
REL_TOL = 1e-9

#: Default location of the committed reference (repo-relative).
DEFAULT_PATH = os.path.join("tests", "golden", "reference_grid.json")


def golden_configs() -> List[ExperimentConfig]:
    """The full reference grid (scheme-major, then load): every factory
    scheme x every load.  Sprayers get the same reordering mask the CLI
    gives them so dup-ACK retransmits reflect loss, not spraying."""
    topology = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4)
    return [
        ExperimentConfig(
            topology=topology,
            lb=lb,
            workload="web-search",
            load=load,
            n_flows=GOLDEN_FLOWS,
            seed=GOLDEN_SEED,
            size_scale=GOLDEN_SIZE_SCALE,
            time_scale=GOLDEN_SIZE_SCALE,
            reorder_mask_us=100.0 if lb in SPRAYING_SCHEMES else None,
        )
        for lb in GOLDEN_SCHEMES
        for load in GOLDEN_LOADS
    ]


def compute_reference(
    scheduler: Optional[str] = None,
    detector: Optional[str] = None,
    shards: Optional[int] = None,
) -> Dict:
    """Run the grid in-process and summarize every cell.

    ``scheduler`` overrides the event engine per cell (``"heap"`` /
    ``"wheel"``); both engines must reproduce the same committed
    reference — that equivalence is itself a test.  ``detector``
    attaches a :mod:`repro.detect` spec to every cell: a *passive*
    detector (transport, breaker) must also reproduce the committed
    reference bit-for-bit — the clean grid gives it no evidence to act
    on, so any deviation means the detector perturbed a run it was only
    supposed to watch.  ``shards`` partitions every cell spatially
    (:mod:`repro.shard`): the sharded runner's bit-identity contract
    means the committed reference must reproduce for any shard count —
    the CI ``shard-smoke`` job pins ``--shards 2`` against it.
    """
    cells: Dict[str, Dict] = {}
    for config in golden_configs():
        if scheduler is not None:
            config = replace(config, scheduler=scheduler)
        if detector is not None:
            config = replace(config, detector=detector)
        if shards is not None:
            config = replace(config, shards=shards)
        result = run_experiment(config)
        stats = result.stats
        cells[f"{config.lb}@{config.load}"] = {
            "avg_fct_ms": stats.mean_ms(),
            "p99_fct_ms": stats.p99_ms(),
            "small_avg_ms": stats.small.mean_ms(),
            "small_p99_ms": stats.small.p99_ms(),
            "large_avg_ms": stats.large.mean_ms(),
            "unfinished": stats.unfinished_count,
            "total_reroutes": result.total_reroutes,
            "events": result.events,
        }
    return {
        "meta": {
            "schemes": list(GOLDEN_SCHEMES),
            "loads": list(GOLDEN_LOADS),
            "n_flows": GOLDEN_FLOWS,
            "size_scale": GOLDEN_SIZE_SCALE,
            "seed": GOLDEN_SEED,
            "refresh": "PYTHONPATH=src python -m repro golden --refresh",
        },
        "cells": cells,
    }


def load_reference(path: str) -> Optional[Dict]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except OSError:
        return None


def write_reference(reference: Dict, path: str) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(reference, fh, indent=2, sort_keys=True)
        fh.write("\n")


def compare_reference(expected: Dict, actual: Dict) -> List[str]:
    """All mismatches between a committed and a freshly computed
    reference, as human-readable lines (empty list = match)."""
    mismatches: List[str] = []
    expected_cells = expected.get("cells", {})
    actual_cells = actual.get("cells", {})
    for cell in sorted(set(expected_cells) | set(actual_cells)):
        if cell not in expected_cells:
            mismatches.append(f"{cell}: missing from committed reference")
            continue
        if cell not in actual_cells:
            mismatches.append(f"{cell}: missing from computed grid")
            continue
        want, got = expected_cells[cell], actual_cells[cell]
        for key in sorted(set(want) | set(got)):
            a, b = want.get(key), got.get(key)
            if isinstance(a, float) or isinstance(b, float):
                if a is None or b is None or abs(a - b) > REL_TOL * max(
                    abs(a), abs(b), 1.0
                ):
                    mismatches.append(f"{cell}.{key}: expected {a}, got {b}")
            elif a != b:
                mismatches.append(f"{cell}.{key}: expected {a}, got {b}")
    return mismatches
