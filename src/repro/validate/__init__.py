"""repro.validate — opt-in runtime invariant layer + seeded chaos harness.

Three pieces:

* :mod:`repro.validate.checker` — the :class:`InvariantChecker`, hooked
  into the engine, ports, fabric and Hermes sensing.  Asserts byte
  conservation, per-port FIFO and capacity legality, a monotone clock,
  ECN-mark legality, and Algorithm 1 path-state consistency.  Every
  violation carries a replayable ``(seed, config, command)`` fingerprint.
* :mod:`repro.validate.fuzz` — seeded chaos scenarios (randomized
  topologies, schemes, workloads, failures) run under full checking,
  with greedy shrinking of failures to a minimal config.
* :mod:`repro.validate.golden` — golden regression pinning of the
  reference grid's summary statistics.

Enable per run with ``ExperimentConfig(validate=True)``, per invocation
with ``python -m repro ... --validate``, or globally with
``REPRO_VALIDATE=1``.  Disabled (the default), the layer costs one
``is not None`` branch per hook site and nothing else.
"""

from repro.validate.checker import (
    InvariantChecker,
    experiment_command,
    install_checker,
    watch_leaf_states,
)
from repro.validate.errors import (
    CapacityError,
    ClockError,
    ConservationError,
    EcnMarkError,
    FifoOrderError,
    Fingerprint,
    InstallError,
    InvariantViolation,
    PathStateError,
    ReproError,
)

__all__ = [
    "InvariantChecker",
    "install_checker",
    "watch_leaf_states",
    "experiment_command",
    "ReproError",
    "InstallError",
    "InvariantViolation",
    "ConservationError",
    "FifoOrderError",
    "CapacityError",
    "ClockError",
    "EcnMarkError",
    "PathStateError",
    "Fingerprint",
]
