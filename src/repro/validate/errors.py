"""Typed errors for the runtime invariant layer.

Every violation raised by :mod:`repro.validate` derives from
:class:`InvariantViolation` and carries a **replayable fingerprint**: the
master seed, the offending configuration, and the exact shell command
that reproduces the run (``python -m repro chaos --seed N`` for fuzz
cases, ``python -m repro run ... --validate`` for grid cells).  A
violation deep inside a 4-million-event run is worthless unless the next
person can re-enter the exact same state with one paste.

This module is dependency-free on purpose: the engine, ports and sensing
layer raise these errors without importing anything above them.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class for all typed errors raised by the repro package."""


class InstallError(ReproError):
    """A component could not be built or wired (bad scheme wiring,
    missing agent, ...).  Replaces bare ``assert`` sanity checks."""


class Fingerprint:
    """The (seed, config, replay command) identity of one run.

    Rendered into every violation message so failures found by the chaos
    harness — or by a validated production run — are one paste away from
    a deterministic replay.
    """

    __slots__ = ("seed", "config", "command")

    def __init__(
        self,
        seed: Optional[int] = None,
        config: Any = None,
        command: Optional[str] = None,
    ) -> None:
        self.seed = seed
        self.config = config
        self.command = command

    def render(self) -> str:
        lines = []
        if self.seed is not None:
            lines.append(f"seed: {self.seed}")
        if self.command:
            lines.append(f"replay: {self.command}")
        if self.config is not None:
            lines.append(f"config: {self.config!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fingerprint(seed={self.seed}, command={self.command!r})"


class InvariantViolation(ReproError):
    """A runtime invariant of the simulator was violated.

    Attributes:
        fingerprint: replay identity of the run (may be empty when the
            checker was installed without one, e.g. in unit tests).
        detail: the invariant-specific message.
    """

    def __init__(self, detail: str, fingerprint: Optional[Fingerprint] = None) -> None:
        self.detail = detail
        self.fingerprint = fingerprint if fingerprint is not None else Fingerprint()
        rendered = self.fingerprint.render()
        message = detail if not rendered else f"{detail}\n{rendered}"
        super().__init__(message)


class ConservationError(InvariantViolation):
    """Bytes were created or destroyed: injected != delivered + dropped +
    in flight, or a packet vanished between two hops."""


class FifoOrderError(InvariantViolation):
    """A port transmitted packets of one priority out of enqueue order."""


class CapacityError(InvariantViolation):
    """A port's backlog went negative, exceeded the buffer, or diverged
    from the checker's shadow accounting."""


class ClockError(InvariantViolation):
    """The event loop tried to fire an event in the past (non-monotone
    clock / broken heap ordering)."""


class EcnMarkError(InvariantViolation):
    """A CE mark appeared (or failed to appear) in an illegal queue
    state: marking below threshold, marking a non-ECN-capable packet, or
    skipping a mandatory mark."""


class PathStateError(InvariantViolation):
    """Hermes path characterization left the Algorithm 1 state machine:
    an unknown class, a classification inconsistent with the sensed
    state, or an illegal failure overlay."""
