"""The runtime invariant checker.

An :class:`InvariantChecker` shadows the whole packet life cycle — every
``Fabric.send``, every port enqueue/dequeue/drop, every final delivery —
and re-derives the state the simulator *should* be in, raising a typed
:class:`~repro.validate.errors.InvariantViolation` the moment the two
disagree.  Checked invariants:

* **conservation** — every byte injected is delivered, dropped, or
  demonstrably in flight; a packet that disappears between two hops (or
  after its propagation delay elapsed) is an error;
* **per-port FIFO** — within one priority class, packets leave a port in
  exactly the order they were accepted;
* **capacity legality** — a port's backlog never goes negative, never
  exceeds its buffer, and always equals the checker's shadow count;
* **monotone clock** — the engine never fires an event scheduled in the
  past;
* **ECN legality** — CE marks appear exactly when the marking rule says
  they must (ECN-capable packet, threshold enabled, backlog at/over
  threshold) and never otherwise;
* **Algorithm 1 path states** — Hermes path characterization stays
  inside the good/gray/congested/failed machine and agrees with the
  sensed EWMA state it was derived from.

The layer is **opt-in and zero-cost when off**: every hook site in the
runtime is guarded by a single ``is not None`` test on an attribute that
defaults to ``None``, so an unvalidated run executes the same hot path
as before.  Install with :func:`install_checker` *before* any traffic is
injected.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.validate.errors import (
    CapacityError,
    ClockError,
    ConservationError,
    EcnMarkError,
    FifoOrderError,
    Fingerprint,
    InstallError,
    PathStateError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.net.packet import Packet
    from repro.net.port import OutputPort

#: Packet life-cycle states tracked by the checker.
_QUEUED = 0    # accepted by a port (queued or serializing)
_TRANSIT = 1   # last bit left a port; propagating toward the next hop

#: EWMA of {0, 1} samples can only leave [0, 1] through a bug; allow a
#: hair of float slack.
_EWMA_SLACK = 1e-9

_PATH_CLASS_NAMES = {0: "good", 1: "gray", 2: "congested", 3: "failed"}


class _Track:
    """Shadow state of one in-flight packet."""

    __slots__ = ("packet", "state", "eta", "ce")

    def __init__(self, packet: "Packet") -> None:
        self.packet = packet
        self.state = _QUEUED
        self.eta = 0       # arrival deadline while in _TRANSIT
        self.ce = packet.ce


class InvariantChecker:
    """Cross-layer invariant checker for one simulation run.

    Args:
        sim: the event engine of the run.
        fingerprint: replay identity stamped into every violation.

    Use :func:`install_checker` to wire one into a fabric; construct
    directly only for unit tests of single components.
    """

    def __init__(self, sim: Any, fingerprint: Optional[Fingerprint] = None) -> None:
        self.sim = sim
        self.fingerprint = fingerprint if fingerprint is not None else Fingerprint()
        # Packet ledger (bytes).
        self.injected_bytes = 0
        self.delivered_bytes = 0
        self.dropped_bytes = 0
        self.absorbed_bytes = 0  # tx-done on a port without a forward hook
        # Event counters (for reports, not correctness).
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.events_checked = 0
        self.enqueues_checked = 0
        self.marks_checked = 0
        self.path_classes_checked = 0
        self.path_transitions = 0
        self.violations = 0
        # Shadow structures.
        self._tracks: Dict[int, _Track] = {}
        self._ports: List["OutputPort"] = []
        self._shadow_queues: Dict[int, List[deque]] = {}
        self._shadow_backlog: Dict[int, int] = {}
        self._path_class: Dict[int, Dict[Any, int]] = {}

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #

    def watch_port(self, port: "OutputPort") -> None:
        """Attach to one port.  The port must be idle — the checker's
        shadow accounting starts from empty queues."""
        if port.backlog_bytes != 0 or port.busy:
            raise InstallError(
                f"cannot attach checker to busy port {port.name} "
                f"(backlog={port.backlog_bytes}B): install before traffic starts"
            )
        port._checker = self
        self._ports.append(port)
        self._shadow_queues[id(port)] = [deque() for _ in port._queues]
        self._shadow_backlog[id(port)] = 0

    def _raise(self, error_cls, detail: str):
        self.violations += 1
        raise error_cls(detail, self.fingerprint)

    # ------------------------------------------------------------------ #
    # Engine hook
    # ------------------------------------------------------------------ #

    def on_advance(self, event_time: int, now: int) -> None:
        """Called by the engine as it pops each live event."""
        self.events_checked += 1
        if event_time < now:
            self._raise(
                ClockError,
                f"event scheduled at t={event_time} fired at now={now} "
                "(clock would run backwards)",
            )

    # ------------------------------------------------------------------ #
    # Fabric hooks
    # ------------------------------------------------------------------ #

    def on_send(self, packet: "Packet") -> None:
        """A packet enters the network at its source."""
        self.packets_sent += 1
        self.injected_bytes += packet.size
        self._tracks[id(packet)] = _Track(packet)

    def on_deliver(self, packet: "Packet") -> None:
        """A packet arrived at its destination host."""
        track = self._tracks.pop(id(packet), None)
        if track is None:
            self._raise(
                ConservationError,
                f"delivered packet was never injected: {packet!r}",
            )
        if track.state != _TRANSIT:
            self._raise(
                ConservationError,
                f"packet delivered while still queued on a port: {packet!r}",
            )
        self.packets_delivered += 1
        self.delivered_bytes += packet.size

    # ------------------------------------------------------------------ #
    # Port hooks
    # ------------------------------------------------------------------ #

    def _drop(self, packet: "Packet") -> None:
        self._tracks.pop(id(packet), None)
        self.packets_dropped += 1
        self.dropped_bytes += packet.size

    def on_injected_drop(self, port: "OutputPort", packet: "Packet") -> None:
        """A failure predicate ate the packet."""
        self._drop(packet)

    def on_overflow_drop(self, port: "OutputPort", packet: "Packet") -> None:
        """Drop-tail overflow.  Legal only when the packet genuinely did
        not fit the remaining buffer."""
        if port.backlog_bytes + packet.size <= port.buffer_bytes:
            self._raise(
                CapacityError,
                f"{port.name} dropped {packet!r} as overflow with "
                f"{port.buffer_bytes - port.backlog_bytes}B of buffer free",
            )
        self._drop(packet)

    def on_enqueued(
        self, port: "OutputPort", packet: "Packet", prior_backlog: int
    ) -> None:
        """A packet was accepted; ``prior_backlog`` is the backlog the
        marking decision saw (before this packet's bytes were added)."""
        self.enqueues_checked += 1
        pid = id(port)
        track = self._tracks.get(id(packet))
        if track is not None:
            track.state = _QUEUED

        # Capacity legality.
        shadow = self._shadow_backlog[pid] + packet.size
        self._shadow_backlog[pid] = shadow
        if port.backlog_bytes > port.buffer_bytes:
            self._raise(
                CapacityError,
                f"{port.name} backlog {port.backlog_bytes}B exceeds "
                f"buffer {port.buffer_bytes}B",
            )
        if port.backlog_bytes != shadow:
            self._raise(
                CapacityError,
                f"{port.name} backlog {port.backlog_bytes}B diverged from "
                f"shadow accounting {shadow}B after enqueue of {packet!r}",
            )

        # ECN mark legality.
        self.marks_checked += 1
        must_mark = (
            port.ecn_threshold_bytes > 0
            and packet.ecn_capable
            and prior_backlog >= port.ecn_threshold_bytes
        )
        was_ce = track.ce if track is not None else packet.ce
        if packet.ce and not was_ce and not must_mark:
            self._raise(
                EcnMarkError,
                f"{port.name} CE-marked {packet!r} below threshold "
                f"(backlog {prior_backlog}B < K={port.ecn_threshold_bytes}B "
                f"or packet not ECN-capable)",
            )
        if must_mark and not packet.ce:
            self._raise(
                EcnMarkError,
                f"{port.name} failed to CE-mark {packet!r} at backlog "
                f"{prior_backlog}B >= K={port.ecn_threshold_bytes}B",
            )
        if track is not None:
            track.ce = packet.ce

        # FIFO shadow.
        self._shadow_queues[pid][packet.priority].append(id(packet))

    def on_tx_done(self, port: "OutputPort", packet: "Packet") -> None:
        """The last bit of ``packet`` left ``port``."""
        pid = id(port)
        queue = self._shadow_queues[pid][packet.priority]
        if not queue or queue[0] != id(packet):
            self._raise(
                FifoOrderError,
                f"{port.name} transmitted {packet!r} out of FIFO order "
                f"within priority {packet.priority}",
            )
        queue.popleft()
        shadow = self._shadow_backlog[pid] - packet.size
        self._shadow_backlog[pid] = shadow
        if shadow < 0 or port.backlog_bytes < 0:
            self._raise(
                CapacityError,
                f"{port.name} backlog went negative after {packet!r}",
            )
        if port.backlog_bytes != shadow:
            self._raise(
                CapacityError,
                f"{port.name} backlog {port.backlog_bytes}B diverged from "
                f"shadow accounting {shadow}B after tx of {packet!r}",
            )
        track = self._tracks.get(id(packet))
        if track is not None:
            if port.forward is None:
                # Terminal port (unit-test rigs): the ledger closes here.
                del self._tracks[id(packet)]
                self.absorbed_bytes += packet.size
            else:
                track.state = _TRANSIT
                track.eta = self.sim.now + port.prop_delay_ns

    # ------------------------------------------------------------------ #
    # Hermes sensing hooks (Algorithm 1)
    # ------------------------------------------------------------------ #

    def on_path_class(
        self, leaf_state: Any, dst_leaf: int, path: int, result: int, state: Any
    ) -> None:
        """Validate one classify() result against the sensed state."""
        self.path_classes_checked += 1
        now = self.sim.now
        if result not in _PATH_CLASS_NAMES:
            self._raise(
                PathStateError,
                f"classify({dst_leaf}, {path}) returned unknown class {result}",
            )
        failed = state.failed_until > now
        if failed != (result == 3):  # PATH_FAILED
            self._raise(
                PathStateError,
                f"classify({dst_leaf}, {path}) = {_PATH_CLASS_NAMES[result]} "
                f"inconsistent with failure overlay "
                f"(failed_until={state.failed_until}, now={now})",
            )
        if not (-_EWMA_SLACK <= state.f_ecn <= 1.0 + _EWMA_SLACK):
            self._raise(
                PathStateError,
                f"path ({dst_leaf}, {path}) ECN fraction {state.f_ecn} "
                "outside [0, 1]",
            )
        if state.rtt_ns < 0:
            self._raise(
                PathStateError,
                f"path ({dst_leaf}, {path}) RTT estimate {state.rtt_ns} < 0",
            )
        if not failed:
            expected = leaf_state._congestion_class(state)
            if result != expected:
                self._raise(
                    PathStateError,
                    f"classify({dst_leaf}, {path}) = "
                    f"{_PATH_CLASS_NAMES[result]} but thresholds say "
                    f"{_PATH_CLASS_NAMES[expected]}",
                )
        table = self._path_class.setdefault(id(leaf_state), {})
        previous = table.get((dst_leaf, path))
        if previous is not None and previous != result:
            self.path_transitions += 1
        table[(dst_leaf, path)] = result

    def on_mark_failed(self, state: Any, hold_ns: int) -> None:
        """A failure overlay was written onto a path."""
        if hold_ns <= 0:
            self._raise(
                PathStateError,
                f"failure overlay with non-positive hold {hold_ns}ns",
            )

    # ------------------------------------------------------------------ #
    # Audit / finalize
    # ------------------------------------------------------------------ #

    def inflight_bytes(self) -> int:
        """Bytes currently queued, serializing, or propagating."""
        return sum(t.packet.size for t in self._tracks.values())

    def audit(self) -> None:
        """Check global consistency; callable at any quiescent point and
        automatically from :meth:`finalize`."""
        now = self.sim.now
        for port in self._ports:
            shadow = self._shadow_backlog[id(port)]
            if port.backlog_bytes != shadow:
                self._raise(
                    CapacityError,
                    f"{port.name} backlog {port.backlog_bytes}B != shadow "
                    f"{shadow}B at audit",
                )
        for track in self._tracks.values():
            if track.state == _TRANSIT and track.eta < now:
                self._raise(
                    ConservationError,
                    f"packet vanished in transit (due at t={track.eta}, "
                    f"now={now}): {track.packet!r}",
                )
        ledger = (
            self.delivered_bytes
            + self.dropped_bytes
            + self.absorbed_bytes
            + self.inflight_bytes()
        )
        if ledger != self.injected_bytes:
            self._raise(
                ConservationError,
                f"byte conservation broken: injected {self.injected_bytes}B "
                f"!= delivered {self.delivered_bytes}B + dropped "
                f"{self.dropped_bytes}B + absorbed {self.absorbed_bytes}B "
                f"+ in-flight {self.inflight_bytes()}B",
            )

    def finalize(self) -> Dict[str, int]:
        """End-of-run audit; returns the :meth:`report` on success."""
        self.audit()
        return self.report()

    def report(self) -> Dict[str, int]:
        """Counters summarizing what the checker observed."""
        return {
            "events_checked": self.events_checked,
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "enqueues_checked": self.enqueues_checked,
            "marks_checked": self.marks_checked,
            "path_classes_checked": self.path_classes_checked,
            "path_transitions": self.path_transitions,
            "injected_bytes": self.injected_bytes,
            "delivered_bytes": self.delivered_bytes,
            "dropped_bytes": self.dropped_bytes,
            "inflight_bytes": self.inflight_bytes(),
            "violations": self.violations,
        }


# --------------------------------------------------------------------- #
# Wiring
# --------------------------------------------------------------------- #


def experiment_command(config: Any) -> str:
    """The ``python -m repro run`` invocation replaying ``config``.

    Topology presets are not recoverable from a :class:`TopologyConfig`,
    so the command covers the CLI-expressible knobs; the full config repr
    rides along in the fingerprint for exact reconstruction.
    """
    parts = [
        "python -m repro run",
        f"--lb {config.lb}",
        f"--workload {config.workload}",
        f"--load {config.load}",
        f"--flows {config.n_flows}",
        f"--seed {config.seed}",
        f"--size-scale {config.size_scale}",
        f"--time-scale {config.time_scale}",
        f"--transport {config.transport}",
    ]
    if config.failure is not None:
        parts.append(f"--failure {config.failure.kind}")
        parts.append(f"--drop-rate {config.failure.drop_rate}")
    parts.append("--validate")
    return " ".join(parts)


def install_checker(
    fabric: "Fabric",
    config: Any = None,
    command: Optional[str] = None,
) -> InvariantChecker:
    """Attach a fresh :class:`InvariantChecker` to every layer of a fabric.

    Must run before any traffic is injected (ports are required to be
    idle).  Hermes leaf-state tables are created later by ``install_lb``;
    the experiment runner attaches them via :func:`watch_leaf_states`.

    Args:
        fabric: the network to validate.
        config: the experiment config, used for the replay fingerprint.
        command: exact replay command; derived from ``config`` if omitted.
    """
    fingerprint = Fingerprint(
        seed=getattr(config, "seed", None),
        config=config,
        command=command
        or (experiment_command(config) if config is not None else None),
    )
    checker = InvariantChecker(fabric.sim, fingerprint)
    fabric.hooks.attach(checker=checker)
    return checker


def watch_leaf_states(checker: InvariantChecker, shared: Dict[str, Any]) -> None:
    """Attach the checker to every Hermes leaf-state table in a scheme's
    shared-state dict (no-op for schemes without one, e.g. CONGA's
    tables, which have no Algorithm 1 machine to validate)."""
    for state in shared.get("leaf_states", {}).values():
        if hasattr(state, "checker") and hasattr(state, "classify"):
            state.checker = checker
