"""Seeded chaos harness: randomized scenarios under full invariant checking.

One integer seed deterministically expands into a complete scenario —
topology shape, link degradations and cuts, load-balancing scheme,
transport, workload, offered load, flow count, and an optional switch
malfunction — which then runs with every :mod:`repro.validate` invariant
enabled.  The hand-written test suite covers the states we thought of;
the chaos harness walks the randomized corners (asymmetry + failure +
scheme interactions) where load-balancer bugs actually live.

Replay is one paste: every case prints/raises with
``python -m repro chaos --seed N`` (CLI) or
``REPRO_CHAOS_SEED=N pytest tests/chaos/test_chaos.py -q -k replay``
(pytest), both of which re-enter the exact same run.

:func:`shrink_case` greedily minimizes a failing configuration — drop
the failure injection, shrink the flow count, collapse the topology,
simplify scheme/transport — re-running each candidate and keeping it
only while the violation persists, so the config that lands in a bug
report is the smallest one that still breaks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, List, Optional

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.runner import run_experiment
from repro.faults.spec import (
    FaultScheduleSpec,
    blackhole_off,
    blackhole_on,
    flap,
    link_degrade,
    link_down,
    link_restore,
    link_up,
    random_drop_start,
    random_drop_stop,
    schedule,
)
from repro.lb.factory import SPRAYING_SCHEMES, scheme_names
from repro.net.topology import TopologyConfig
from repro.validate.errors import InvariantViolation

#: Every registered scheme is fair game — derived from the factory so a
#: newly registered scheme is fuzzed automatically, no sync to forget.
CHAOS_SCHEMES = scheme_names()

#: Scenario envelope: small enough that one case runs in well under a
#: second on CPython, varied enough to reach asymmetric/failure corners.
_SIZE_SCALE = 0.03

#: Drain cap (simulated ns past the last arrival).  The default 2 s is
#: sized for full experiments; under chaos a blackholed flow that can
#: never finish would drag Hermes' 0.03x-scaled timers (15 µs probe
#: rounds) through millions of pointless events.  50 ms still covers
#: ~150 RTOs and thousands of probe/sweep rounds — plenty of runway for
#: every invariant to be exercised — while keeping each case sub-second.
_EXTRA_DRAIN_NS = 50_000_000


def chaos_command(seed: int, with_faults: Optional[bool] = None) -> str:
    """The exact CLI invocation replaying one chaos case."""
    flag = " --faults" if with_faults else ""
    return (
        f"python -m repro chaos --seed {seed}{flag}  "
        f"(or: REPRO_CHAOS_SEED={seed} pytest tests/chaos/test_chaos.py "
        f"-q -k replay)"
    )


#: Fault-schedule shapes the chaos harness draws from (see
#: :func:`_draw_fault_schedule`).  Each is a distinct stressor of the
#: dynamic fault plane: a clean outage-and-heal, an outage healed before
#: any detector can plausibly fire, capacity loss without loss of
#: connectivity, a rapidly flapping link, a lossy spine window, and a
#: silent per-pair blackhole window.
_FAULT_SHAPES = (
    "down_up",
    "heal_before_detection",
    "degrade_restore",
    "rapid_flap",
    "drop_burst",
    "blackhole_window",
)


def _draw_fault_schedule(
    rng: random.Random,
    n_leaves: int,
    n_spines: int,
    overrides: dict,
) -> FaultScheduleSpec:
    """Draw one randomized fault schedule fitting the chaos envelope.

    Times stay well inside the 50 ms drain cap so every revert fires
    before the run's deadline; link targets skip links the topology
    already cut statically (``override == 0.0`` — the fault plane
    rejects scheduling on a nonexistent link, by design)."""
    live_links = [
        (leaf, spine)
        for leaf in range(n_leaves)
        for spine in range(n_spines)
        if overrides.get((leaf, spine)) != 0.0
    ]
    leaf, spine = rng.choice(live_links)
    start = rng.randrange(200_000, 5_000_000)  # 0.2–5 ms in
    shape = rng.choice(_FAULT_SHAPES)
    if shape == "down_up":
        width = rng.randrange(500_000, 10_000_000)  # 0.5–10 ms outage
        return schedule(
            link_down(start, leaf=leaf, spine=spine),
            link_up(start + width, leaf=leaf, spine=spine),
        )
    if shape == "heal_before_detection":
        # Shorter than one scaled Hermes probe/sweep round: the link is
        # healthy again before any detector could plausibly conclude
        # failure.  Exercises transient-outage handling.
        width = rng.randrange(5_000, 100_000)  # 5–100 µs blip
        return schedule(
            link_down(start, leaf=leaf, spine=spine),
            link_up(start + width, leaf=leaf, spine=spine),
        )
    if shape == "degrade_restore":
        width = rng.randrange(1_000_000, 15_000_000)
        return schedule(
            link_degrade(
                start, leaf=leaf, spine=spine,
                rate_gbps=rng.choice((1.0, 2.0, 5.0)),
            ),
            link_restore(start + width, leaf=leaf, spine=spine),
        )
    if shape == "rapid_flap":
        period = rng.randrange(100_000, 600_000)  # 0.1–0.6 ms cycles
        cycles = rng.randint(3, 12)
        return schedule(
            flap(
                start, leaf=leaf, spine=spine, period_ns=period,
                duty=rng.choice((0.3, 0.5, 0.7)),
                until_ns=start + cycles * period,
            )
        )
    if shape == "drop_burst":
        width = rng.randrange(1_000_000, 15_000_000)
        return schedule(
            random_drop_start(
                start, spine=spine, drop_rate=rng.choice((0.05, 0.15, 0.3))
            ),
            random_drop_stop(start + width, spine=spine),
        )
    # blackhole_window: silent loss between two racks through one spine.
    width = rng.randrange(1_000_000, 15_000_000)
    src = rng.randrange(n_leaves)
    dst = rng.choice([l for l in range(n_leaves) if l != src])
    return schedule(
        blackhole_on(
            start, spine=spine, src_leaf=src, dst_leaf=dst,
            fraction=rng.choice((0.5, 1.0)),
        ),
        blackhole_off(start + width, spine=spine),
    )


def _draw_detector(rng: random.Random) -> str:
    """Draw one randomized detector spec fitting the chaos envelope.

    Explicit timer values are spelled out (in the 0.03x-scaled regime:
    tens of microseconds) about half the time; the other half relies on
    the spec DSL's time-scaled defaults, so both paths get fuzzed."""
    kind = rng.choice(("transport", "bfd", "breaker", "quorum", "fastest"))
    if kind == "transport":
        if rng.random() < 0.5:
            return "transport"
        return (
            f"transport:hold={rng.randrange(200_000, 3_000_000)},"
            f"retx_threshold={rng.randint(2, 12)}"
        )
    if kind == "bfd":
        if rng.random() < 0.5:
            return "bfd"
        return (
            f"bfd:tx={rng.randrange(5_000, 50_000)},"
            f"mult={rng.randint(2, 5)}"
        )
    if kind == "breaker":
        if rng.random() < 0.5:
            return "breaker"
        return (
            f"breaker:threshold={rng.choice((0.3, 0.5, 0.8))},"
            f"min_volume={rng.randint(2, 8)},"
            f"open={rng.randrange(300_000, 3_000_000)}"
        )
    members = "transport+bfd" if rng.random() < 0.7 else "transport+bfd+breaker"
    if kind == "quorum":
        return f"quorum:{members}"
    return f"fastest:{members}"


def chaos_config(seed: int, with_faults: Optional[bool] = None) -> ExperimentConfig:
    """Deterministically expand ``seed`` into one randomized scenario.

    Args:
        seed: the case seed.
        with_faults: ``True`` always attaches a randomized time-scheduled
            fault schedule, ``False`` never does, ``None`` (default)
            attaches one with probability ~0.45.  The schedule draw is
            part of the same seeded stream, so ``(seed, with_faults)``
            fully determines the scenario.
    """
    rng = random.Random(f"repro-chaos-{seed}")
    n_leaves = rng.randint(2, 3)
    n_spines = rng.randint(2, 3)
    hosts_per_leaf = rng.randint(2, 3)

    overrides = {}
    roll = rng.random()
    if roll < 0.25:
        # Degrade one leaf-spine link (the paper's §5.3.2 asymmetry).
        overrides[(rng.randrange(n_leaves), rng.randrange(n_spines))] = (
            rng.choice((2.0, 5.0))
        )
    elif roll < 0.40:
        # Cut one link outright; n_spines >= 2 keeps every pair routable.
        overrides[(rng.randrange(n_leaves), rng.randrange(n_spines))] = 0.0

    topology = TopologyConfig(
        n_leaves=n_leaves,
        n_spines=n_spines,
        hosts_per_leaf=hosts_per_leaf,
        host_link_gbps=10.0,
        spine_link_gbps=10.0,
        link_overrides=overrides,
        prop_delay_ns=1_000,
        buffer_bytes=750_000,
        ecn_threshold_bytes=97_500,
    )

    lb = rng.choice(CHAOS_SCHEMES)
    failure: Optional[FailureSpec] = None
    if rng.random() < 0.35:
        if rng.random() < 0.5:
            failure = FailureSpec(
                kind="random_drop",
                spine=rng.randrange(n_spines),
                drop_rate=rng.choice((0.02, 0.05)),
            )
        else:
            failure = FailureSpec(
                kind="blackhole",
                spine=rng.randrange(n_spines),
                src_leaf=0,
                dst_leaf=1,
                pair_fraction=0.5,
            )

    transport = "tcp" if rng.random() < 0.25 else "dctcp"
    workload = rng.choice(("web-search", "data-mining"))
    load = round(rng.uniform(0.3, 0.8), 2)
    n_flows = rng.randint(10, 40)

    # Drawn last so the base scenario is identical with and without a
    # fault schedule — a faulted case differs from its unfaulted twin
    # only by the schedule itself.
    faults: Optional[FaultScheduleSpec] = None
    if with_faults is None:
        with_faults = rng.random() < 0.45
    if with_faults:
        faults = _draw_fault_schedule(
            random.Random(f"repro-chaos-faults-{seed}"),
            n_leaves, n_spines, overrides,
        )

    # Detector coin drawn after the faults coin (appending to the main
    # stream keeps every pre-existing seed's scenario unchanged); params
    # come from their own named stream so the shape of one draw cannot
    # perturb the next field.
    detector: Optional[str] = None
    if rng.random() < 0.35:
        detector = _draw_detector(random.Random(f"repro-chaos-detector-{seed}"))

    return ExperimentConfig(
        topology=topology,
        lb=lb,
        transport=transport,
        workload=workload,
        load=load,
        n_flows=n_flows,
        seed=seed,
        size_scale=_SIZE_SCALE,
        time_scale=_SIZE_SCALE,
        reorder_mask_us=100.0 if lb in SPRAYING_SCHEMES else None,
        failure=failure,
        faults=faults,
        detector=detector,
        extra_drain_ns=_EXTRA_DRAIN_NS,
        validate=True,
    )


@dataclass
class CaseResult:
    """Outcome of one chaos case."""

    seed: int
    config: ExperimentConfig
    error: Optional[InvariantViolation]
    invariants: Optional[dict]
    events: int
    mean_fct_ms: float
    unfinished: int

    @property
    def ok(self) -> bool:
        return self.error is None


def run_case(
    seed: int,
    config: Optional[ExperimentConfig] = None,
    raise_error: bool = True,
    with_faults: Optional[bool] = None,
    scheduler: Optional[str] = None,
) -> CaseResult:
    """Run one chaos case under full invariant checking.

    Args:
        seed: the case seed (also the simulation's master seed).
        config: pre-built config (defaults to ``chaos_config(seed)``).
        raise_error: re-raise violations (default); ``False`` returns
            them in the :class:`CaseResult` for sweep-style reporting.
        with_faults: forwarded to :func:`chaos_config` (ignored when
            ``config`` is given).
        scheduler: event engine override (``"heap"``/``"wheel"``) applied
            on top of the (generated or given) config.
    """
    if config is None:
        config = chaos_config(seed, with_faults=with_faults)
    if scheduler is not None:
        config = replace(config, scheduler=scheduler)
    try:
        result = run_experiment(config)
    except InvariantViolation as exc:
        # Stamp the chaos replay command over the generic run command:
        # the randomized topology is only reachable through the seed.
        exc.fingerprint.command = chaos_command(seed, with_faults=with_faults)
        amended = type(exc)(exc.detail, exc.fingerprint)
        if raise_error:
            raise amended from exc
        return CaseResult(
            seed=seed,
            config=config,
            error=amended,
            invariants=None,
            events=0,
            mean_fct_ms=0.0,
            unfinished=0,
        )
    return CaseResult(
        seed=seed,
        config=config,
        error=None,
        invariants=result.shared.get("invariants"),
        events=result.events,
        mean_fct_ms=result.mean_fct_ms,
        unfinished=result.stats.unfinished_count,
    )


def run_sweep(
    seeds: Iterable[int],
    raise_error: bool = False,
    with_faults: Optional[bool] = None,
    scheduler: Optional[str] = None,
) -> List[CaseResult]:
    """Run a batch of chaos cases; violations are collected, not raised."""
    return [
        run_case(
            seed,
            raise_error=raise_error,
            with_faults=with_faults,
            scheduler=scheduler,
        )
        for seed in seeds
    ]


# --------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------- #


def _valid_overrides(overrides: dict, n_leaves: int, n_spines: int) -> dict:
    return {
        (leaf, spine): rate
        for (leaf, spine), rate in overrides.items()
        if leaf < n_leaves and spine < n_spines
    }


def _reductions(config: ExperimentConfig) -> Iterator[ExperimentConfig]:
    """Candidate simplifications, most drastic first.  Each candidate is
    a fresh config; the caller keeps it only if it still fails."""
    topo = config.topology
    if config.faults is not None:
        yield replace(config, faults=None)
    if config.detector is not None:
        yield replace(config, detector=None)
    if config.failure is not None:
        yield replace(config, failure=None)
    if config.n_flows > 2:
        yield replace(config, n_flows=max(2, config.n_flows // 2))
    if topo.link_overrides:
        yield replace(config, topology=replace(topo, link_overrides={}))
    for field_name, floor in (("n_leaves", 2), ("n_spines", 2), ("hosts_per_leaf", 2)):
        value = getattr(topo, field_name)
        if value > floor:
            smaller = replace(topo, **{field_name: floor})
            smaller = replace(
                smaller,
                link_overrides=_valid_overrides(
                    smaller.link_overrides, smaller.n_leaves, smaller.n_spines
                ),
            )
            yield replace(config, topology=smaller)
    if config.lb != "ecmp":
        yield replace(config, lb="ecmp", reorder_mask_us=None)
    if config.transport != "dctcp":
        yield replace(config, transport="dctcp")
    if config.workload != "web-search":
        yield replace(config, workload="web-search")


def _default_probe(config: ExperimentConfig) -> Optional[InvariantViolation]:
    try:
        run_experiment(replace(config, validate=True))
    except InvariantViolation as exc:
        return exc
    return None


@dataclass
class ShrinkResult:
    """A minimized failing configuration and its violation."""

    config: ExperimentConfig
    error: InvariantViolation
    attempts: int


def shrink_case(
    config: ExperimentConfig,
    probe: Optional[
        Callable[[ExperimentConfig], Optional[InvariantViolation]]
    ] = None,
    max_attempts: int = 40,
) -> ShrinkResult:
    """Greedily minimize a failing config while the violation persists.

    Args:
        config: a config known to violate an invariant under validation.
        probe: runs a candidate and returns its violation (or ``None``
            if it passes).  Defaults to a plain validated run; tests
            inject probes that apply a mutation first.
        max_attempts: cap on candidate runs (each is a full simulation).

    Raises:
        ValueError: if ``config`` does not fail under ``probe``.
    """
    probe = probe or _default_probe
    error = probe(config)
    if error is None:
        raise ValueError("shrink_case needs a failing config to start from")
    attempts = 1
    current = config
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _reductions(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            candidate_error = probe(candidate)
            if candidate_error is not None:
                current, error = candidate, candidate_error
                improved = True
                break
    return ShrinkResult(config=current, error=error, attempts=attempts)
