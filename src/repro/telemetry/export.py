"""Trace exporters: JSONL, CSV, and Chrome-trace/Perfetto JSON.

JSONL is the interchange format: ``repro trace run`` writes
``events.jsonl`` (tracer records) and ``audit.jsonl`` (decision audit)
into a trace directory, and ``repro trace export`` / ``summarize``
consume those files — so every function here works on plain dicts, not
live telemetry objects.

The Perfetto export emits the Chrome trace-event JSON format
(``{"traceEvents": [...]}``), which both ``chrome://tracing`` and
https://ui.perfetto.dev load natively:

* one *thread* per port, carrying packet movements as instant events;
* one *async span* per flow (``b``/``e`` pairs keyed by flow id), so the
  flow timeline reads directly off the track;
* a ``hermes`` thread carrying Algorithm 2 decisions and Algorithm 1
  path-state transitions as instant events with their reason codes and
  threshold values in ``args``;
* optional counter tracks (queue backlog series) as ``C`` events.

Timestamps are microseconds (the format's unit); nanosecond precision is
preserved as fractional microseconds.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: Flat column order for the CSV export of tracer records.
EVENT_FIELDS = (
    "t", "kind", "flow", "pkt", "src", "dst", "seq", "path", "size",
    "port", "note",
)


# --------------------------------------------------------------------- #
# JSONL / CSV
# --------------------------------------------------------------------- #


def write_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """One JSON object per line; returns how many were written."""
    count = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def write_csv(
    path: str,
    records: Iterable[Dict[str, Any]],
    fields: Iterable[str] = EVENT_FIELDS,
) -> int:
    """Flatten records to CSV (dict-valued fields are JSON-encoded)."""
    fields = list(fields)
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fields)
        for record in records:
            row = []
            for field in fields:
                value = record.get(field)
                if isinstance(value, dict):
                    value = json.dumps(value, sort_keys=True)
                row.append(value)
            writer.writerow(row)
            count += 1
    return count


# --------------------------------------------------------------------- #
# Perfetto / Chrome trace events
# --------------------------------------------------------------------- #

_FABRIC_PID = 1
_HERMES_PID = 2
_HERMES_TID = 1


def perfetto_trace(
    events: Iterable[Dict[str, Any]],
    audit: Iterable[Dict[str, Any]] = (),
    series: Optional[Dict[str, List]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a Chrome-trace/Perfetto JSON document from exported records.

    Args:
        events: tracer record dicts (``events.jsonl`` rows).
        audit: decision-audit record dicts (``audit.jsonl`` rows).
        series: optional ``{counter_name: [(t_ns, value), ...]}`` counter
            tracks (e.g. queue backlogs).
        meta: run metadata embedded as ``otherData``.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _FABRIC_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "fabric"},
        },
        {
            "ph": "M",
            "pid": _HERMES_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "hermes"},
        },
        {
            "ph": "M",
            "pid": _HERMES_PID,
            "tid": _HERMES_TID,
            "name": "thread_name",
            "args": {"name": "decisions"},
        },
    ]
    port_tids: Dict[str, int] = {}

    def tid_for(port: Optional[str]) -> int:
        if not port:
            return 0
        tid = port_tids.get(port)
        if tid is None:
            tid = len(port_tids) + 1
            port_tids[port] = tid
            trace_events.append(
                {
                    "ph": "M",
                    "pid": _FABRIC_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": port},
                }
            )
        return tid

    for record in events:
        ts = record["t"] / 1000.0
        kind = record["kind"]
        if kind == "flow_start":
            trace_events.append(
                {
                    "ph": "b",
                    "cat": "flow",
                    "id": record["flow"],
                    "name": f"flow {record['flow']} "
                            f"{record['src']}->{record['dst']}",
                    "ts": ts,
                    "pid": _FABRIC_PID,
                    "tid": 0,
                    "args": {"size_bytes": record.get("size", 0)},
                }
            )
        elif kind == "flow_finish":
            trace_events.append(
                {
                    "ph": "e",
                    "cat": "flow",
                    "id": record["flow"],
                    "name": f"flow {record['flow']} "
                            f"{record['src']}->{record['dst']}",
                    "ts": ts,
                    "pid": _FABRIC_PID,
                    "tid": 0,
                    "args": {"note": record.get("note")},
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": "packet",
                    "name": f"{kind} f{record['flow']}",
                    "ts": ts,
                    "pid": _FABRIC_PID,
                    "tid": tid_for(record.get("port")),
                    "args": {
                        "flow": record["flow"],
                        "pkt": record.get("pkt"),
                        "seq": record.get("seq"),
                        "path": record.get("path"),
                        "size": record.get("size"),
                        "note": record.get("note"),
                    },
                }
            )

    for record in audit:
        name = record["reason"]
        if record["category"] == "decision":
            name = f"{record['reason']} f{record['flow']}"
        trace_events.append(
            {
                "ph": "i",
                "s": "p",
                "cat": record["category"],
                "name": name,
                "ts": record["t"] / 1000.0,
                "pid": _HERMES_PID,
                "tid": _HERMES_TID,
                "args": {
                    "flow": record.get("flow"),
                    "leaf": record.get("leaf"),
                    "dst_leaf": record.get("dst_leaf"),
                    "path": record.get("path"),
                    "new_path": record.get("new_path"),
                    "detail": record.get("detail", {}),
                },
            }
        )

    if series:
        for counter, points in sorted(series.items()):
            for t_ns, value in points:
                trace_events.append(
                    {
                        "ph": "C",
                        "name": counter,
                        "ts": t_ns / 1000.0,
                        "pid": _FABRIC_PID,
                        "args": {"value": value},
                    }
                )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": meta or {},
    }


def write_perfetto(
    path: str,
    events: Iterable[Dict[str, Any]],
    audit: Iterable[Dict[str, Any]] = (),
    series: Optional[Dict[str, List]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the Perfetto JSON; returns the number of trace events."""
    document = perfetto_trace(events, audit, series=series, meta=meta)
    with open(path, "w") as fh:
        json.dump(document, fh)
        fh.write("\n")
    return len(document["traceEvents"])


# --------------------------------------------------------------------- #
# Summaries / audit queries over exported records
# --------------------------------------------------------------------- #


def summarize_events(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate counts over tracer records (JSONL rows)."""
    by_kind: Dict[str, int] = {}
    flows = set()
    drops_by_port: Dict[str, int] = {}
    t_min: Optional[int] = None
    t_max: Optional[int] = None
    for record in events:
        kind = record["kind"]
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if record.get("flow", -1) >= 0:
            flows.add(record["flow"])
        if kind == "drop":
            port = record.get("port") or "?"
            drops_by_port[port] = drops_by_port.get(port, 0) + 1
        t = record["t"]
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
    return {
        "records": sum(by_kind.values()),
        "by_kind": dict(sorted(by_kind.items())),
        "flows_seen": len(flows),
        "drops_by_port": dict(sorted(drops_by_port.items())),
        "span_ns": (t_max - t_min) if by_kind else 0,
    }


def summarize_audit(audit: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate counts over decision-audit records (JSONL rows)."""
    decisions: Dict[str, int] = {}
    transitions: Dict[str, int] = {}
    failures: Dict[str, int] = {}
    for record in audit:
        category = record["category"]
        if category == "decision":
            decisions[record["reason"]] = decisions.get(record["reason"], 0) + 1
        elif category == "path_class":
            transitions[record["reason"]] = (
                transitions.get(record["reason"], 0) + 1
            )
        elif category == "failure":
            failures[record["reason"]] = failures.get(record["reason"], 0) + 1
    return {
        "decisions_by_reason": dict(sorted(decisions.items())),
        "path_transitions": dict(sorted(transitions.items())),
        "failure_overlays": dict(sorted(failures.items())),
    }


def explain_flow(
    audit: Iterable[Dict[str, Any]], flow_id: int
) -> List[str]:
    """Human-readable decision history for one flow, one line per
    Algorithm 2 decision, with the gate/threshold values that fired."""
    lines: List[str] = []
    for record in audit:
        if record.get("category") != "decision" or record.get("flow") != flow_id:
            continue
        detail = record.get("detail") or {}
        extras = ", ".join(f"{k}={v}" for k, v in sorted(detail.items()))
        move = (
            f"path {record['path']} -> {record['new_path']}"
            if record["path"] != record["new_path"]
            else f"stays on path {record['path']}"
        )
        lines.append(
            f"t={record['t']}ns flow {flow_id}: {record['reason']}: {move}"
            + (f" ({extras})" if extras else "")
        )
    return lines
