"""Unified time-series samplers + event-loop profiler.

All periodic samplers share :class:`PeriodicSampler`, which holds the
engine's cancellable :class:`~repro.sim.engine.Event` for its next tick:
``stop()`` cancels the pending tick outright (nothing lingers in the
heap, so a drained queue really is drained), and ``start()`` after
``stop()`` resumes with exactly one tick chain — the
double-schedule/stale-tick bugs of the old ``metrics.collector``
samplers cannot happen by construction.

Samplers:

* :class:`QueueSampler` — per-port backlog (migrated from
  ``repro.metrics.collector``, same query API);
* :class:`UtilizationSeries` — per-port utilization per interval;
* :class:`EcnFractionSeries` — fraction of transmitted packets that were
  CE-marked per interval (per port);
* :class:`PathStateSeries` — Algorithm 1 occupancy: how many of a leaf's
  sensed paths are good/gray/congested/failed at each instant;
* :class:`LoopProfiler` — engine-side counters: events dispatched per
  callback kind, heap size and wall-clock per slab of simulated time.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import OutputPort
    from repro.sim.engine import Event, Simulator


class PeriodicSampler:
    """Base class: sample something every ``period_ns`` of sim time.

    The pending tick is a cancellable engine event; :meth:`stop` cancels
    it so no dead callback stays in the heap, and restarting after a stop
    schedules exactly one new tick chain.
    """

    def __init__(self, sim: "Simulator", period_ns: int) -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.period_ns = period_ns
        self._tick_event: Optional["Event"] = None

    @property
    def running(self) -> bool:
        return self._tick_event is not None

    def start(self) -> None:
        """Begin (or resume) sampling; idempotent while running."""
        if self._tick_event is None:
            # schedule_periodic re-arms one reusable event in place (an
            # in-slot append on the wheel engine) instead of allocating a
            # fresh event per tick.
            self._tick_event = self.sim.schedule_periodic(
                self.period_ns, self._tick
            )

    def stop(self) -> None:
        """Cancel the pending tick; idempotent.  Safe to :meth:`start`
        again afterwards."""
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _tick(self) -> None:
        self.sample(self.sim.now)

    def sample(self, now: int) -> None:
        """Take one sample at sim time ``now``.  Subclasses override."""
        raise NotImplementedError


class QueueSampler(PeriodicSampler):
    """Samples the backlog of a set of ports at a fixed period."""

    def __init__(
        self,
        sim: "Simulator",
        ports: Sequence["OutputPort"],
        period_ns: int = 100_000,
    ) -> None:
        super().__init__(sim, period_ns)
        self.ports = list(ports)
        self.samples: Dict[str, List[Tuple[int, int]]] = {
            port.name: [] for port in self.ports
        }

    def sample(self, now: int) -> None:
        for port in self.ports:
            self.samples[port.name].append((now, port.backlog_bytes))

    def max_backlog(self, port_name: str) -> int:
        """Largest sampled backlog for one port."""
        series = self.samples[port_name]
        return max((b for _, b in series), default=0)

    def mean_backlog(self, port_name: str) -> float:
        series = self.samples[port_name]
        if not series:
            return 0.0
        return sum(b for _, b in series) / len(series)

    def stddev_backlog(self, port_name: str) -> float:
        """Backlog standard deviation — the queue-oscillation measure."""
        series = self.samples[port_name]
        if len(series) < 2:
            return 0.0
        mean = self.mean_backlog(port_name)
        var = sum((b - mean) ** 2 for _, b in series) / (len(series) - 1)
        return var**0.5


class UtilizationTracker:
    """Average utilization of ports over a measurement window.

    Not periodic — a two-point window (reset .. read), migrated from
    ``repro.metrics.collector`` unchanged.
    """

    def __init__(self, sim: "Simulator", ports: Sequence["OutputPort"]) -> None:
        self.sim = sim
        self.ports = list(ports)
        self._start_ns = sim.now
        self._bytes_at_start = {p.name: p.bytes_sent for p in self.ports}

    def reset(self) -> None:
        self._start_ns = self.sim.now
        self._bytes_at_start = {p.name: p.bytes_sent for p in self.ports}

    def utilization(self) -> Dict[str, float]:
        """Per-port average utilization since the last reset."""
        return {
            p.name: p.utilization_since(
                self._start_ns, self._bytes_at_start[p.name]
            )
            for p in self.ports
        }


class UtilizationSeries(PeriodicSampler):
    """Per-interval link utilization (fraction of capacity) per port."""

    def __init__(
        self,
        sim: "Simulator",
        ports: Sequence["OutputPort"],
        period_ns: int = 1_000_000,
    ) -> None:
        super().__init__(sim, period_ns)
        self.ports = list(ports)
        self.samples: Dict[str, List[Tuple[int, float]]] = {
            port.name: [] for port in self.ports
        }
        self._last_bytes = {p.name: p.bytes_sent for p in self.ports}

    def sample(self, now: int) -> None:
        for port in self.ports:
            sent = port.bytes_sent
            delta = sent - self._last_bytes[port.name]
            self._last_bytes[port.name] = sent
            util = delta * 8e9 / (port.rate_bps * self.period_ns)
            self.samples[port.name].append((now, util))


class EcnFractionSeries(PeriodicSampler):
    """Per-interval fraction of enqueued packets that got CE-marked."""

    def __init__(
        self,
        sim: "Simulator",
        ports: Sequence["OutputPort"],
        period_ns: int = 1_000_000,
    ) -> None:
        super().__init__(sim, period_ns)
        self.ports = list(ports)
        self.samples: Dict[str, List[Tuple[int, float]]] = {
            port.name: [] for port in self.ports
        }
        self._last = {p.name: (p.ecn_marks, p.pkts_sent) for p in self.ports}

    def sample(self, now: int) -> None:
        for port in self.ports:
            marks, pkts = port.ecn_marks, port.pkts_sent
            last_marks, last_pkts = self._last[port.name]
            self._last[port.name] = (marks, pkts)
            dp = pkts - last_pkts
            fraction = (marks - last_marks) / dp if dp > 0 else 0.0
            self.samples[port.name].append((now, fraction))


class PathStateSeries(PeriodicSampler):
    """Algorithm 1 occupancy over one rack's sensed path table: at each
    tick, how many (destination leaf, path) entries are good / gray /
    congested / failed."""

    CLASS_NAMES = ("good", "gray", "congested", "failed")

    def __init__(
        self, leaf_state: Any, period_ns: int = 1_000_000
    ) -> None:
        super().__init__(leaf_state.sim, period_ns)
        self.leaf_state = leaf_state
        self.samples: List[Tuple[int, Tuple[int, int, int, int]]] = []

    def sample(self, now: int) -> None:
        counts = [0, 0, 0, 0]
        for state in self.leaf_state._table.values():
            if state.is_failed(now):
                counts[3] += 1
            else:
                counts[self.leaf_state._congestion_class(state)] += 1
        self.samples.append((now, tuple(counts)))

    def occupancy(self) -> Dict[str, float]:
        """Mean fraction of sensed paths in each class over the run."""
        if not self.samples:
            return {name: 0.0 for name in self.CLASS_NAMES}
        totals = [0.0, 0.0, 0.0, 0.0]
        weight = 0
        for _, counts in self.samples:
            n = sum(counts)
            if n == 0:
                continue
            weight += 1
            for i, c in enumerate(counts):
                totals[i] += c / n
        if weight == 0:
            return {name: 0.0 for name in self.CLASS_NAMES}
        return {
            name: totals[i] / weight for i, name in enumerate(self.CLASS_NAMES)
        }


class LoopProfiler:
    """Event-loop profiler, attached as ``Simulator.profiler``.

    The engine calls :meth:`on_event` once per dispatched event (one
    ``is not None`` branch when no profiler is attached).  Tracks:

    * events dispatched per callback kind (the function's qualname —
      ``OutputPort._tx_done``, ``TcpFlow._on_rto``, ...), which is where
      "where do events/sec go" is answered;
    * per-slab samples of simulated time: events fired, pending-event
      count, and wall-clock spent — the events/sec trajectory of the run.

    On a :class:`~repro.sim.engine.WheelSimulator` the summary also
    carries the wheel's occupancy/rollover/overflow counters.
    """

    def __init__(self, sim: "Simulator", slab_ns: int = 100_000_000) -> None:
        if slab_ns <= 0:
            raise ValueError("profiler slab must be positive")
        self.sim = sim
        self.slab_ns = slab_ns
        self.by_kind: Dict[str, int] = {}
        self.events = 0
        #: (slab_start_ns, events_so_far, pending_events, wall_elapsed_s)
        self.slabs: List[Tuple[int, int, int, float]] = []
        self._cur_slab = -1
        self._wall_start = time.perf_counter()

    def on_event(self, event: Any) -> None:
        self.events += 1
        name = getattr(event.fn, "__qualname__", None) or repr(event.fn)
        self.by_kind[name] = self.by_kind.get(name, 0) + 1
        slab = event.time // self.slab_ns
        if slab != self._cur_slab:
            self._cur_slab = slab
            self.slabs.append(
                (
                    slab * self.slab_ns,
                    self.events,
                    self.sim.pending,
                    time.perf_counter() - self._wall_start,
                )
            )

    def top_kinds(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` callback kinds dispatched most often."""
        return sorted(self.by_kind.items(), key=lambda kv: -kv[1])[:n]

    def summary(self) -> Dict[str, Any]:
        wall = time.perf_counter() - self._wall_start
        out = {
            "events": self.events,
            "wall_s": round(wall, 4),
            "events_per_sec": round(self.events / wall, 1) if wall > 0 else 0.0,
            "max_pending": max((s[2] for s in self.slabs), default=0),
            "by_kind": dict(self.top_kinds(20)),
        }
        wheel_stats = getattr(self.sim, "wheel_stats", None)
        if wheel_stats is not None:
            out["scheduler"] = "wheel"
            out["wheel"] = wheel_stats()
        else:
            out["scheduler"] = getattr(self.sim, "scheduler", "heap")
        return out
