"""repro.telemetry — unified observability: tracing, audit, metrics, export.

Four pieces, all opt-in and zero-cost when off (the same nullable-hook
pattern as :mod:`repro.validate` — one ``is not None`` branch per hook
site, attributes default to ``None``):

* :mod:`repro.telemetry.tracer` — bounded ring-buffer structured event
  tracer: packet send/hop/deliver/drop, flow start/finish, timeout,
  retransmit;
* :mod:`repro.telemetry.audit` — decision audit log: every Algorithm 1
  path-state transition and every Algorithm 2 (re)placement with its
  reason code and the threshold values that fired;
* :mod:`repro.telemetry.series` — time-series samplers (queue backlog,
  utilization, ECN fraction, path-state occupancy) on cancellable timer
  events, plus the engine :class:`~repro.telemetry.series.LoopProfiler`;
* :mod:`repro.telemetry.export` — JSONL / CSV / Perfetto-compatible
  Chrome-trace exporters.

Enable per run with ``ExperimentConfig(trace=True)``, per invocation
with ``python -m repro trace run ...``, or globally with
``REPRO_TRACE=1`` (which, like ``REPRO_VALIDATE``, bypasses the result
cache so a cached summary is never served silently untraced).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.telemetry.audit import AuditRecord, DecisionAudit
from repro.telemetry.series import (
    EcnFractionSeries,
    LoopProfiler,
    PathStateSeries,
    PeriodicSampler,
    QueueSampler,
    UtilizationSeries,
)
from repro.telemetry.tracer import EventTracer, TraceRecord, TracerHooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric


class Telemetry:
    """Bundle of one run's observability state.

    Built by :func:`install_telemetry`; hand-construct only in unit
    tests of single components.
    """

    def __init__(
        self,
        sim: Any,
        capacity: int = 1_000_000,
        audit_capacity: int = 200_000,
        profile: bool = True,
        profile_slab_ns: int = 100_000_000,
    ) -> None:
        self.sim = sim
        self.tracer = EventTracer(sim, capacity=capacity)
        self.audit = DecisionAudit(sim, capacity=audit_capacity)
        self.profiler = (
            LoopProfiler(sim, slab_ns=profile_slab_ns) if profile else None
        )
        #: name -> sampler; populated by :meth:`add_series`.
        self.series: Dict[str, PeriodicSampler] = {}

    def add_series(
        self, name: str, sampler: PeriodicSampler, start: bool = True
    ) -> PeriodicSampler:
        """Register (and by default start) a time-series sampler."""
        self.series[name] = sampler
        if start:
            sampler.start()
        return sampler

    def stop_series(self) -> None:
        """Cancel every registered sampler's pending tick."""
        for sampler in self.series.values():
            sampler.stop()

    def counter_series(self) -> Dict[str, list]:
        """Per-port counter tracks for the Perfetto export."""
        out: Dict[str, list] = {}
        for name, sampler in self.series.items():
            samples = getattr(sampler, "samples", None)
            if isinstance(samples, dict):
                for port_name, points in samples.items():
                    out[f"{name} {port_name}"] = points
        return out

    def summary(self) -> Dict[str, Any]:
        """One dict answering "what did this run do" at a glance."""
        report: Dict[str, Any] = {
            "trace": self.tracer.summary(),
            "audit": self.audit.summary(),
        }
        if self.profiler is not None:
            report["loop"] = self.profiler.summary()
        return report


def install_telemetry(
    fabric: "Fabric",
    config: Any = None,
    capacity: int = 1_000_000,
    audit_capacity: int = 200_000,
    profile: bool = True,
    sample_period_ns: Optional[int] = None,
) -> Telemetry:
    """Attach a fresh :class:`Telemetry` to every layer of a fabric.

    Wires the tracer into the fabric (send / forward / flow lifecycle)
    and every port (drops), and the profiler into the engine.  Hermes
    audit hooks are created later by ``install_lb``; attach them with
    :func:`watch_lb` once the scheme is installed.

    Args:
        fabric: the network to observe.
        config: experiment config (unused today; reserved for trace
            filtering specs).
        capacity / audit_capacity: ring-buffer bounds.
        profile: attach the engine :class:`LoopProfiler`.
        sample_period_ns: if set, start queue-backlog and ECN-fraction
            samplers over every port at this period.
    """
    telemetry = Telemetry(
        fabric.sim,
        capacity=capacity,
        audit_capacity=audit_capacity,
        profile=profile,
    )
    fabric.hooks.attach(
        tracer=telemetry.tracer, profiler=telemetry.profiler
    )
    if sample_period_ns is not None:
        ports = fabric.topology.all_ports()
        telemetry.add_series(
            "backlog", QueueSampler(fabric.sim, ports, sample_period_ns)
        )
        telemetry.add_series(
            "ecn_fraction",
            EcnFractionSeries(fabric.sim, ports, sample_period_ns),
        )
    return telemetry


def watch_lb(
    telemetry: Telemetry,
    fabric: "Fabric",
    shared: Optional[Dict[str, Any]] = None,
    sample_period_ns: Optional[int] = None,
) -> None:
    """Attach the decision audit to an installed scheme.

    Hooks every per-host agent exposing an ``audit`` attribute (Hermes)
    and every Hermes leaf-state table in ``shared``; a no-op for schemes
    with neither.  When ``sample_period_ns`` is set, a
    :class:`PathStateSeries` is started per leaf table.
    """
    fabric.hooks.attach(audit=telemetry.audit, shared=shared)
    if shared and sample_period_ns is not None:
        for leaf, state in shared.get("leaf_states", {}).items():
            if hasattr(state, "audit") and hasattr(state, "classify"):
                telemetry.add_series(
                    f"path_state leaf{leaf}",
                    PathStateSeries(state, sample_period_ns),
                )


__all__ = [
    "Telemetry",
    "install_telemetry",
    "watch_lb",
    "EventTracer",
    "TracerHooks",
    "TraceRecord",
    "DecisionAudit",
    "AuditRecord",
    "PeriodicSampler",
    "QueueSampler",
    "UtilizationSeries",
    "EcnFractionSeries",
    "PathStateSeries",
    "LoopProfiler",
]
