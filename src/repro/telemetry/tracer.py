"""Structured event tracer: a bounded ring buffer of typed trace records.

The tracer observes the whole life of the simulation — packet movements
(send / hop / deliver / drop), flow lifecycle (start / finish), and
transport recovery (timeout / retransmit) — through the same nullable
hook pattern :mod:`repro.validate` uses: every hook site in the runtime
is one ``is not None`` branch on an attribute that defaults to ``None``,
so an untraced run pays nothing.

Records live in a ``deque(maxlen=capacity)`` ring buffer: tracing a run
that produces more events than the capacity silently evicts the oldest
records (the count of evictions is reported, never hidden), which bounds
memory for arbitrarily long simulations.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.port import OutputPort
    from repro.sim.engine import Simulator
    from repro.transport.base import FlowBase

# Trace record kinds (ints in the hot path, names at the export edge).
EV_SEND = 0
EV_HOP = 1
EV_DELIVER = 2
EV_DROP = 3
EV_FLOW_START = 4
EV_FLOW_FINISH = 5
EV_TIMEOUT = 6
EV_RETRANSMIT = 7
EV_FAULT = 8

KIND_NAMES = {
    EV_SEND: "send",
    EV_HOP: "hop",
    EV_DELIVER: "deliver",
    EV_DROP: "drop",
    EV_FLOW_START: "flow_start",
    EV_FLOW_FINISH: "flow_finish",
    EV_TIMEOUT: "timeout",
    EV_RETRANSMIT: "retx",
    EV_FAULT: "fault",
}

#: Packet-movement kinds (subset dispatched from fabric/port hooks).
PACKET_KINDS = frozenset((EV_SEND, EV_HOP, EV_DELIVER, EV_DROP))


class TraceRecord:
    """One observed event.

    ``kind_id`` is the integer tag; :attr:`kind` is its exported name.
    Packet fields are ``-1``/``None`` for flow-lifecycle records, and
    ``note`` carries the drop reason ("overflow"/"injected") or other
    short context.
    """

    __slots__ = (
        "time_ns",
        "kind_id",
        "flow_id",
        "packet_kind",
        "src",
        "dst",
        "seq",
        "path_id",
        "size",
        "port",
        "note",
    )

    def __init__(
        self,
        time_ns: int,
        kind_id: int,
        flow_id: int,
        packet_kind: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = -1,
        path_id: int = -1,
        size: int = 0,
        port: Optional[str] = None,
        note: Optional[str] = None,
    ) -> None:
        self.time_ns = time_ns
        self.kind_id = kind_id
        self.flow_id = flow_id
        self.packet_kind = packet_kind
        self.src = src
        self.dst = dst
        self.seq = seq
        self.path_id = path_id
        self.size = size
        self.port = port
        self.note = note

    @property
    def kind(self) -> str:
        return KIND_NAMES.get(self.kind_id, "?")

    @property
    def packet_kind_name(self) -> str:
        from repro.net.packet import PacketKind

        return PacketKind.NAMES.get(self.packet_kind, "-")

    def to_dict(self) -> Dict:
        """JSON-ready form (used by the JSONL/CSV/Perfetto exporters)."""
        return {
            "t": self.time_ns,
            "kind": self.kind,
            "flow": self.flow_id,
            "pkt": self.packet_kind_name,
            "src": self.src,
            "dst": self.dst,
            "seq": self.seq,
            "path": self.path_id,
            "size": self.size,
            "port": self.port,
            "note": self.note,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecord(t={self.time_ns} {self.kind} flow={self.flow_id} "
            f"seq={self.seq} path={self.path_id} port={self.port})"
        )


class TracerHooks:
    """The hook protocol the runtime calls on ``fabric.tracer`` /
    ``port.tracer``.  Every method is a no-op here; subclasses override
    what they care about (:class:`EventTracer` records everything, the
    :class:`~repro.net.trace.PacketTracer` compatibility shim only the
    packet-movement subset)."""

    def on_send(self, packet: "Packet") -> None:
        """``Fabric.send`` injected a packet at its source."""

    def on_forward(self, packet: "Packet") -> None:
        """``Fabric.forward`` is about to advance a packet one hop (or
        deliver it, when the route is exhausted)."""

    def on_drop(self, port: "OutputPort", packet: "Packet", reason: str) -> None:
        """A port dropped a packet (``reason``: overflow / injected)."""

    def on_flow_start(self, flow: "FlowBase") -> None:
        """A flow was registered with the fabric."""

    def on_flow_finish(self, flow: "FlowBase") -> None:
        """A flow completed."""

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        """A sender RTO fired while the flow was pinned to ``path_id``."""

    def on_retransmit(self, flow: "FlowBase", seq: int, path_id: int) -> None:
        """A segment was retransmitted; ``path_id`` carried the lost copy."""

    def on_fault(self, record) -> None:
        """The fault plane applied or reverted a scheduled fault
        (``record``: a :class:`repro.faults.plane.FaultRecord`)."""


class EventTracer(TracerHooks):
    """Bounded structured tracer.

    Args:
        sim: the event engine (for timestamps).
        capacity: ring-buffer size; the oldest records are evicted past
            this (:attr:`evicted` counts how many).
        predicate: record only packets for which this returns True
            (flow-lifecycle and timeout/retx records are always kept —
            they are rare and usually the reason you are tracing).
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: int = 1_000_000,
        predicate: Optional[Callable[["Packet"], bool]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.predicate = predicate
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0
        self.counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _append(self, record: TraceRecord) -> None:
        self.recorded += 1
        self.counts[record.kind_id] = self.counts.get(record.kind_id, 0) + 1
        self._ring.append(record)

    def _packet_record(
        self, kind_id: int, packet: "Packet", port: Optional[str],
        note: Optional[str] = None,
    ) -> None:
        if self.predicate is not None and not self.predicate(packet):
            return
        self._append(
            TraceRecord(
                self.sim.now,
                kind_id,
                packet.flow_id,
                packet_kind=packet.kind,
                src=packet.src,
                dst=packet.dst,
                seq=packet.seq,
                path_id=packet.path_id,
                size=packet.size,
                port=port,
                note=note,
            )
        )

    # Hook implementations -------------------------------------------- #

    def on_send(self, packet: "Packet") -> None:
        port = packet.route[0].name if packet.route else None
        self._packet_record(EV_SEND, packet, port)

    def on_forward(self, packet: "Packet") -> None:
        nxt = packet.hop + 1
        if nxt < len(packet.route):
            self._packet_record(EV_HOP, packet, packet.route[nxt].name)
        else:
            self._packet_record(EV_DELIVER, packet, None)

    def on_drop(self, port: "OutputPort", packet: "Packet", reason: str) -> None:
        self._packet_record(EV_DROP, packet, port.name, note=reason)

    def on_flow_start(self, flow: "FlowBase") -> None:
        self._append(
            TraceRecord(
                self.sim.now,
                EV_FLOW_START,
                flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size_bytes,
            )
        )

    def on_flow_finish(self, flow: "FlowBase") -> None:
        fct = flow.fct_ns
        self._append(
            TraceRecord(
                self.sim.now,
                EV_FLOW_FINISH,
                flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size_bytes,
                note=None if fct is None else f"fct_ns={fct}",
            )
        )

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        self._append(
            TraceRecord(
                self.sim.now,
                EV_TIMEOUT,
                flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                path_id=path_id,
            )
        )

    def on_retransmit(self, flow: "FlowBase", seq: int, path_id: int) -> None:
        self._append(
            TraceRecord(
                self.sim.now,
                EV_RETRANSMIT,
                flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                seq=seq,
                path_id=path_id,
            )
        )

    def on_fault(self, record) -> None:
        self._append(
            TraceRecord(
                self.sim.now,
                EV_FAULT,
                -1,
                port=record.target,
                note=f"{record.action} {record.phase}",
            )
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> List[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._ring)

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.recorded - len(self._ring)

    @property
    def truncated(self) -> bool:
        return self.evicted > 0

    def counts_by_kind(self) -> Dict[str, int]:
        """Total records *observed* per kind (eviction-independent)."""
        return {KIND_NAMES[k]: v for k, v in sorted(self.counts.items())}

    def flow_events(self, flow_id: int) -> List[TraceRecord]:
        return [r for r in self._ring if r.flow_id == flow_id]

    def paths_used(self, flow_id: int) -> List[int]:
        """Distinct path ids a flow's data packets used, in first-use order."""
        from repro.net.packet import PacketKind

        seen: List[int] = []
        for record in self._ring:
            if (
                record.flow_id == flow_id
                and record.kind_id == EV_SEND
                and record.packet_kind in (PacketKind.DATA, PacketKind.UDP)
                and record.path_id not in seen
            ):
                seen.append(record.path_id)
        return seen

    def deliveries(self, flow_id: Optional[int] = None) -> int:
        """Count of retained final-hop deliveries (optionally per flow)."""
        return sum(
            1
            for record in self._ring
            if record.kind_id == EV_DELIVER
            and (flow_id is None or record.flow_id == flow_id)
        )

    def iter_dicts(self) -> Iterator[Dict]:
        for record in self._ring:
            yield record.to_dict()

    def summary(self) -> Dict:
        return {
            "recorded": self.recorded,
            "retained": len(self._ring),
            "evicted": self.evicted,
            "by_kind": self.counts_by_kind(),
        }
