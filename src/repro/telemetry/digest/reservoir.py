"""Seeded reservoir sampler — the digest's cross-check estimator.

Algorithm R over a splitmix64 generator.  The stdlib ``random.Random``
would work, but its Mersenne state is a 625-integer tuple that makes
JSON round-trips ugly; splitmix64's state is a single integer, so a
serialized sampler resumes *exactly* where it left off — the same
determinism contract the rest of the repo holds (replaying a run
reproduces the sampler bit-for-bit).

Two properties the streaming collector leans on:

* Below ``capacity`` the reservoir has kept *every* value, so its
  quantiles are exact — small runs get exact percentiles labelled
  ``reservoir`` while big runs switch to the t-digest.
* The sample is uniform over the stream, so reservoir quantiles are an
  unbiased (if noisy) check on the digest's: a large disagreement means
  an estimator bug, not an unlucky distribution.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

__all__ = ["ReservoirSampler"]

_MASK64 = (1 << 64) - 1


class _SplitMix64:
    """Tiny deterministic PRNG with a single-integer, JSON-safe state."""

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & _MASK64

    def next_u64(self) -> int:
        self.state = (self.state + 0x9E3779B97F4A7C15) & _MASK64
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        # Modulo bias is ~n / 2**64 — irrelevant for sampling decisions.
        return self.next_u64() % n


class ReservoirSampler:
    """Uniform sample of a stream in O(capacity) memory (Algorithm R)."""

    __slots__ = ("capacity", "seed", "count", "sample", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.count = 0
        self.sample: List[float] = []
        self._rng = _SplitMix64(seed)

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds the entire stream."""
        return self.count <= self.capacity

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"reservoir values must be finite, got {value}")
        self.count += 1
        if len(self.sample) < self.capacity:
            self.sample.append(float(value))
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self.sample[slot] = float(value)

    def quantile(self, q: float) -> float:
        """Sample quantile (``q`` in [0, 1]), linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.sample:
            raise ValueError("quantile of an empty reservoir")
        ordered = sorted(self.sample)
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * q
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac

    def merged(self, other: "ReservoirSampler") -> "ReservoirSampler":
        """Combine two reservoirs into one representing both streams.

        Each output slot draws from either input with probability
        proportional to its stream length — the standard distributed
        merge.  Deterministic (seed is the symmetric XOR of both seeds)
        but, unlike the t-digest, not exactly commutative: the reservoir
        is the noisy cross-check, not the estimator of record.
        """
        out = ReservoirSampler(
            max(self.capacity, other.capacity),
            seed=(self.seed ^ other.seed) or 1,
        )
        out.count = self.count + other.count
        mine = list(self.sample)
        theirs = list(other.sample)
        weight_mine, weight_theirs = self.count, other.count
        while len(out.sample) < out.capacity and (mine or theirs):
            take_mine = bool(mine) and (
                not theirs
                or out._rng.randrange(weight_mine + weight_theirs) < weight_mine
            )
            source = mine if take_mine else theirs
            index = out._rng.randrange(len(source))
            out.sample.append(source.pop(index))
        return out

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe state (including the PRNG position, so a restored
        sampler continues the exact random sequence)."""
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "count": self.count,
            "sample": list(self.sample),
            "rng_state": self._rng.state,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReservoirSampler":
        sampler = cls(data["capacity"], seed=data["seed"])
        sampler.count = int(data["count"])
        sampler.sample = [float(v) for v in data["sample"]]
        sampler._rng.state = int(data["rng_state"]) & _MASK64
        return sampler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReservoirSampler(capacity={self.capacity}, count={self.count}, "
            f"held={len(self.sample)})"
        )
