"""repro.telemetry.digest — mergeable bounded-memory streaming statistics.

Million-flow cells cannot afford the exact collector's O(flows) sorted
FCT list, so this package provides two quantile estimators that hold a
*fixed* amount of state no matter how many values stream through them:

* :class:`~repro.telemetry.digest.tdigest.TDigest` — the merging
  t-digest (Dunning & Ertl): values cluster into at most O(compression)
  centroids sized by the arcsine scale function, so accuracy
  concentrates at the tails (p99 error is far below mid-quantile
  error).  Fully deterministic — no randomness anywhere — and
  mergeable: digests built on parallel shards combine into one digest
  equivalent to a digest of the union.
* :class:`~repro.telemetry.digest.reservoir.ReservoirSampler` — a
  seeded Algorithm-R reservoir used as the *cross-check* estimator: a
  uniform sample of the stream whose percentiles sanity-check the
  digest's.  Below its capacity it has seen every value, so its
  quantiles are exact — the preferred estimator for small runs.

Both serialize to plain JSON-safe dicts (``to_dict``/``from_dict``)
with deterministic round-trips, which is what lets a cached or
service-served :class:`~repro.experiments.parallel.ResultSummary`
carry streaming statistics across process and wire boundaries.

The consumer is :class:`repro.metrics.streaming.StreamingFctStats`,
which keeps one (digest, reservoir) pair per flow-size bucket behind
the exact :class:`~repro.metrics.fct.FctStats` read surface.
"""

from __future__ import annotations

from repro.telemetry.digest.reservoir import ReservoirSampler
from repro.telemetry.digest.tdigest import TDigest

__all__ = ["TDigest", "ReservoirSampler"]
