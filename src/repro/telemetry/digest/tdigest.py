"""Merging t-digest: bounded-memory quantile sketch, deterministic.

The variant implemented here is the *merging* digest (Dunning & Ertl,
"Computing extremely accurate quantiles using t-digests"): incoming
values buffer until a threshold, then buffer + existing centroids are
sorted and re-clustered in one linear pass under the arcsine scale
function

    k(q) = (compression / 2pi) * asin(2q - 1)

which caps every cluster at one unit of k-size.  Near q=0 and q=1 the
scale function is steep, so tail clusters stay tiny and tail quantiles
stay sharp — exactly where FCT analysis (p99) needs them.

Design constraints this implementation honours:

* **Deterministic.**  No randomness; clustering is a pure function of
  the sorted (mean, weight) multiset, so replaying the same stream
  reproduces the same centroids bit-for-bit and serialization
  round-trips exactly — both are load-bearing for the result cache and
  the golden tests.  (Different insertion *orders* may flush the buffer
  at different points and land on slightly different — equally valid —
  centroids; only quantile-level agreement is promised across orders.)
* **Mergeable / commutative.**  ``merged(other)`` pools both digests'
  centroids and re-clusters once, so ``a.merged(b)`` and ``b.merged(a)``
  are bit-identical (same sorted multiset in, same pure function).
  Associativity holds to within clustering resolution — re-clustering
  already-merged centroids can shift means slightly — which is why the
  property tests assert exact commutativity but bounded-error
  associativity.
* **Bounded.**  At most ~``2 * compression`` centroids survive a
  compression pass, and the buffer is capped, so memory is
  O(compression) regardless of how many values stream through.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["TDigest"]


class TDigest:
    """Streaming quantile sketch with O(compression) memory.

    Args:
        compression: accuracy/size knob (the paper's delta).  More
            centroids, better quantiles; 100 is the library default in
            most implementations, 400 gives comfortably <1% relative
            error at p50/p99 on heavy-tailed FCT distributions.
    """

    __slots__ = ("compression", "_means", "_weights", "_total",
                 "_buffer", "_min", "_max", "_buffer_limit")

    def __init__(self, compression: float = 400.0) -> None:
        if compression < 20:
            raise ValueError(
                f"compression must be >= 20, got {compression}"
            )
        self.compression = float(compression)
        self._means: List[float] = []
        self._weights: List[float] = []
        self._total = 0.0
        self._buffer: List[Tuple[float, float]] = []
        self._min = math.inf
        self._max = -math.inf
        # Large enough to amortize the sort, small enough that flushing
        # stays cheap and memory stays visibly bounded.
        self._buffer_limit = max(64, int(4 * compression))

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def add(self, value: float, weight: float = 1.0) -> None:
        """Fold one observation (optionally weighted) into the sketch."""
        if not math.isfinite(value):
            raise ValueError(f"t-digest values must be finite, got {value}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._buffer.append((float(value), float(weight)))
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= self._buffer_limit:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------ #
    # Clustering
    # ------------------------------------------------------------------ #

    def _k(self, q: float) -> float:
        """Scale function: position of quantile ``q`` in k-space."""
        q = min(1.0, max(0.0, q))
        return self.compression / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)

    def _q_right(self, k: float) -> float:
        """Inverse scale: the q where cluster ``k`` must end (k + 1)."""
        sin_arg = 2.0 * math.pi * k / self.compression
        if sin_arg >= math.pi / 2.0:
            return 1.0
        if sin_arg <= -math.pi / 2.0:
            return 0.0
        return (math.sin(sin_arg) + 1.0) / 2.0

    def _compress(self) -> None:
        """Merge buffer + centroids into a fresh centroid list (pure
        function of the sorted multiset — determinism lives here)."""
        if not self._buffer:
            return
        pairs = sorted(
            list(zip(self._means, self._weights)) + self._buffer
        )
        self._buffer = []
        total = math.fsum(w for _, w in pairs)
        means: List[float] = []
        weights: List[float] = []
        cur_mean, cur_weight = pairs[0]
        weight_so_far = 0.0
        q_limit = self._q_right(self._k(0.0) + 1.0)
        for mean, weight in pairs[1:]:
            if weight_so_far + cur_weight + weight <= q_limit * total:
                # Same cluster: weighted-mean update.
                cur_weight += weight
                cur_mean += (mean - cur_mean) * (weight / cur_weight)
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                weight_so_far += cur_weight
                q_limit = self._q_right(
                    self._k(weight_so_far / total) + 1.0
                )
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights
        self._total = total

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def count(self) -> float:
        """Total ingested weight."""
        return self._total + math.fsum(w for _, w in self._buffer)

    @property
    def n_centroids(self) -> int:
        self._compress()
        return len(self._means)

    def memory_items(self) -> int:
        """Retained items (centroids + buffered values) — the number the
        bounded-memory tests assert on."""
        return len(self._means) + len(self._buffer)

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("empty t-digest has no minimum")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("empty t-digest has no maximum")
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Linear interpolation between centroid means, anchored at the
        exact min/max at the extremes (so q=0 and q=1 are exact).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._compress()
        if self._total == 0:
            raise ValueError("quantile of an empty t-digest")
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        target = q * self._total
        # Centroid i's mass is centred at cum_{i-1} + w_i / 2.
        prev_center = 0.0
        prev_value = self._min
        cumulative = 0.0
        for mean, weight in zip(means, weights):
            center = cumulative + weight / 2.0
            if target < center:
                span = center - prev_center
                frac = (target - prev_center) / span if span > 0 else 0.0
                return prev_value + frac * (mean - prev_value)
            cumulative += weight
            prev_center = center
            prev_value = mean
        span = self._total - prev_center
        frac = (target - prev_center) / span if span > 0 else 1.0
        return prev_value + min(1.0, frac) * (self._max - prev_value)

    def cdf(self, value: float) -> float:
        """Estimate P(X <= value), the inverse of :meth:`quantile`."""
        self._compress()
        if self._total == 0:
            raise ValueError("cdf of an empty t-digest")
        if value <= self._min:
            return 0.0 if value < self._min else 1.0 / (2 * self._total)
        if value >= self._max:
            return 1.0
        prev_center = 0.0
        prev_value = self._min
        cumulative = 0.0
        for mean, weight in zip(self._means, self._weights):
            center = cumulative + weight / 2.0
            if value < mean:
                span = mean - prev_value
                frac = (value - prev_value) / span if span > 0 else 0.0
                return (prev_center + frac * (center - prev_center)) / self._total
            cumulative += weight
            prev_center = center
            prev_value = mean
        span = self._max - prev_value
        frac = (value - prev_value) / span if span > 0 else 1.0
        return (prev_center + frac * (self._total - prev_center)) / self._total

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #

    def merge(self, other: "TDigest") -> None:
        """Absorb ``other`` in place (pool centroids, re-cluster once)."""
        if other.count == 0:
            return
        other._compress()
        pooled = (
            list(zip(self._means, self._weights))
            + self._buffer
            + list(zip(other._means, other._weights))
        )
        self._means, self._weights, self._total = [], [], 0.0
        self._buffer = pooled
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()

    def merged(self, other: "TDigest") -> "TDigest":
        """Commutative out-of-place merge: ``a.merged(b)`` is
        bit-identical to ``b.merged(a)``.

        Both inputs' centroids are pooled and re-clustered in a *single*
        compression pass, so the result depends only on the combined
        sorted multiset — symmetric by construction.
        """
        self._compress()
        other._compress()
        out = TDigest(max(self.compression, other.compression))
        out._buffer = list(zip(self._means, self._weights)) + list(
            zip(other._means, other._weights)
        )
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        out._compress()
        return out

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe state; ``from_dict`` restores it bit-identically."""
        self._compress()
        return {
            "compression": self.compression,
            "count": self._total,
            "min": self._min if self._total else None,
            "max": self._max if self._total else None,
            "means": list(self._means),
            "weights": list(self._weights),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TDigest":
        digest = cls(data["compression"])
        digest._means = [float(m) for m in data["means"]]
        digest._weights = [float(w) for w in data["weights"]]
        digest._total = float(data["count"])
        if data.get("min") is not None:
            digest._min = float(data["min"])
        if data.get("max") is not None:
            digest._max = float(data["max"])
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TDigest(compression={self.compression:g}, count={self.count:g}, "
            f"centroids={len(self._means)})"
        )
