"""Decision audit log: *why* Hermes did what it did.

Two hook families feed the log:

* **Algorithm 1 (sensing)** — every :meth:`HermesLeafState.classify`
  result flows through :meth:`DecisionAudit.on_path_class`; the audit
  keeps the last class per (leaf, destination leaf, path) and records a
  transition entry whenever it changes, with the EWMA values and the
  thresholds they were compared against.  Failure overlays (explicit
  ``mark_failed`` and the τ-sweep's silent-drop detector) are recorded
  with their cause and the retransmission fraction that fired.
* **Algorithm 2 (rerouting)** — every path decision of a
  :class:`~repro.core.hermes.HermesLB` agent is recorded with a reason
  code mirroring the algorithm's branches (``new-flow``, ``timeout``,
  ``failed-path``, ``congested-moved``, ``congested-stay``,
  ``gated-stay``) plus the gate/threshold values that produced it —
  enough to answer "why did flow F leave path P at time T" after the
  fact.

Like the tracer, the audit is bounded (ring buffer) and zero-cost when
no audit object is attached: each hook site is one ``is not None``
branch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

# Algorithm 2 reason codes (one per branch of the decision logic).
REASON_NEW_FLOW = "new-flow"
REASON_TIMEOUT = "timeout"
REASON_FAILED_PATH = "failed-path"
REASON_CONGESTED_MOVED = "congested-moved"
REASON_CONGESTED_STAY = "congested-stay"
REASON_GATED_STAY = "gated-stay"

REASONS = (
    REASON_NEW_FLOW,
    REASON_TIMEOUT,
    REASON_FAILED_PATH,
    REASON_CONGESTED_MOVED,
    REASON_CONGESTED_STAY,
    REASON_GATED_STAY,
)

# Record categories.
REC_DECISION = "decision"
REC_PATH_CLASS = "path_class"
REC_FAILURE = "failure"
REC_FAULT = "fault"
REC_VERDICT = "verdict"

_CLASS_NAMES = {0: "good", 1: "gray", 2: "congested", 3: "failed"}


class AuditRecord:
    """One audit entry.  ``category`` selects which fields are
    meaningful; ``detail`` carries the threshold/gate values."""

    __slots__ = (
        "time_ns",
        "category",
        "flow_id",
        "leaf",
        "dst_leaf",
        "path",
        "new_path",
        "reason",
        "detail",
    )

    def __init__(
        self,
        time_ns: int,
        category: str,
        flow_id: int = -1,
        leaf: int = -1,
        dst_leaf: int = -1,
        path: int = -1,
        new_path: int = -1,
        reason: str = "",
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time_ns = time_ns
        self.category = category
        self.flow_id = flow_id
        self.leaf = leaf
        self.dst_leaf = dst_leaf
        self.path = path
        self.new_path = new_path
        self.reason = reason
        self.detail = detail if detail is not None else {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.time_ns,
            "category": self.category,
            "flow": self.flow_id,
            "leaf": self.leaf,
            "dst_leaf": self.dst_leaf,
            "path": self.path,
            "new_path": self.new_path,
            "reason": self.reason,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditRecord(t={self.time_ns} {self.category} "
            f"flow={self.flow_id} path={self.path}->{self.new_path} "
            f"{self.reason})"
        )


class DecisionAudit:
    """Bounded audit log over Hermes' Algorithm 1 + 2 machinery."""

    def __init__(self, sim: "Simulator", capacity: int = 200_000) -> None:
        if capacity < 1:
            raise ValueError(f"audit capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0
        self.reason_counts: Dict[str, int] = {}
        self.transitions = 0
        # Last class seen per (id(leaf_state), dst_leaf, path).
        self._last_class: Dict[tuple, int] = {}

    def _append(self, record: AuditRecord) -> None:
        self.recorded += 1
        self._ring.append(record)

    # ------------------------------------------------------------------ #
    # Algorithm 2 hook (called from HermesLB.select_path)
    # ------------------------------------------------------------------ #

    def on_decision(
        self,
        flow_id: int,
        leaf: int,
        dst_leaf: int,
        reason: str,
        old_path: int,
        new_path: int,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.reason_counts[reason] = self.reason_counts.get(reason, 0) + 1
        self._append(
            AuditRecord(
                self.sim.now,
                REC_DECISION,
                flow_id=flow_id,
                leaf=leaf,
                dst_leaf=dst_leaf,
                path=old_path,
                new_path=new_path,
                reason=reason,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------ #
    # Algorithm 1 hooks (called from HermesLeafState)
    # ------------------------------------------------------------------ #

    def on_path_class(
        self, leaf_state: Any, dst_leaf: int, path: int, result: int, state: Any
    ) -> None:
        """Record a path characterization *transition* (steady states are
        not logged — classify() runs per packet and would swamp the ring)."""
        key = (id(leaf_state), dst_leaf, path)
        previous = self._last_class.get(key)
        if previous == result:
            return
        self._last_class[key] = result
        if previous is None and result == 0:
            # Initial classification of an untouched path is always
            # "good"; logging it adds nothing.
            return
        self.transitions += 1
        params = leaf_state.params
        self._append(
            AuditRecord(
                self.sim.now,
                REC_PATH_CLASS,
                leaf=leaf_state.leaf,
                dst_leaf=dst_leaf,
                path=path,
                reason=(
                    f"{_CLASS_NAMES.get(previous, '-')}"
                    f"->{_CLASS_NAMES.get(result, '?')}"
                ),
                detail={
                    "f_ecn": round(state.f_ecn, 6),
                    "rtt_ns": round(state.rtt_ns, 1),
                    "t_ecn": params.t_ecn,
                    "t_rtt_low_ns": params.t_rtt_low_ns,
                    "t_rtt_high_ns": params.t_rtt_high_ns,
                },
            )
        )

    def on_mark_failed(
        self,
        leaf_state: Any,
        dst_leaf: int,
        path: int,
        cause: str,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A failure overlay was written onto a path (``cause``:
        ``explicit`` or ``retx-sweep``)."""
        self._append(
            AuditRecord(
                self.sim.now,
                REC_FAILURE,
                leaf=leaf_state.leaf,
                dst_leaf=dst_leaf,
                path=path,
                reason=cause,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------ #
    # Detector hook (called from repro.detect on every verdict flip)
    # ------------------------------------------------------------------ #

    def on_verdict(
        self,
        detector: Any,
        dst_leaf: int,
        path: int,
        old: int,
        new: int,
        cause: str,
        detail: str = "",
    ) -> None:
        """A detector changed its verdict for (dst_leaf, path).  The
        record's reason reads ``up->down (bfd-timeout)`` — the cause a
        post-mortem needs next to the fault record that provoked it."""
        from repro.detect.base import VERDICT_NAMES

        self._append(
            AuditRecord(
                self.sim.now,
                REC_VERDICT,
                leaf=getattr(detector, "leaf", -1),
                dst_leaf=dst_leaf,
                path=path,
                reason=(
                    f"{VERDICT_NAMES.get(old, '?')}->"
                    f"{VERDICT_NAMES.get(new, '?')} ({cause})"
                ),
                detail={
                    "detector": getattr(detector, "name", "?"),
                    **({"note": detail} if detail else {}),
                },
            )
        )

    # ------------------------------------------------------------------ #
    # Fault-plane hook (called from repro.faults.plane.FaultSchedule)
    # ------------------------------------------------------------------ #

    def on_fault(self, record: Any) -> None:
        """A scheduled fault was applied or reverted.  Landing these in
        the same log as path transitions lets ``path_events`` show the
        network-level cause next to its sensed effect."""
        self._append(
            AuditRecord(
                self.sim.now,
                REC_FAULT,
                reason=f"{record.action} {record.phase}",
                detail={"target": record.target, **record.detail},
            )
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def records(self) -> List[AuditRecord]:
        return list(self._ring)

    @property
    def evicted(self) -> int:
        return self.recorded - len(self._ring)

    def decisions(self, flow_id: Optional[int] = None) -> List[AuditRecord]:
        """Algorithm 2 decisions, optionally for one flow."""
        return [
            r
            for r in self._ring
            if r.category == REC_DECISION
            and (flow_id is None or r.flow_id == flow_id)
        ]

    def path_events(
        self, dst_leaf: Optional[int] = None, path: Optional[int] = None
    ) -> List[AuditRecord]:
        """Path-state transitions, failure overlays, detector verdict
        flips and scheduled fault transitions, optionally filtered to one
        (destination leaf, path).  Fault records carry no (dst_leaf,
        path) and always pass a filter — they are the network-level cause
        of whatever sensed transitions surround them."""
        return [
            r
            for r in self._ring
            if (
                r.category in (REC_PATH_CLASS, REC_FAILURE, REC_VERDICT)
                and (dst_leaf is None or r.dst_leaf == dst_leaf)
                and (path is None or r.path == path)
            )
            or r.category == REC_FAULT
        ]

    def why_left(self, flow_id: int, path: int) -> List[AuditRecord]:
        """The decisions that moved ``flow_id`` *off* ``path``."""
        return [
            r
            for r in self.decisions(flow_id)
            if r.path == path and r.new_path != path
        ]

    def explain_flow(self, flow_id: int) -> List[str]:
        """Human-readable decision history for one flow."""
        from repro.telemetry.export import explain_flow

        return explain_flow((r.to_dict() for r in self._ring), flow_id)

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        for record in self._ring:
            yield record.to_dict()

    def summary(self) -> Dict[str, Any]:
        return {
            "recorded": self.recorded,
            "retained": len(self._ring),
            "evicted": self.evicted,
            "decisions_by_reason": dict(sorted(self.reason_counts.items())),
            "path_transitions": self.transitions,
        }
