"""TransportDetector: today's passive timeout/retx sensing as a detector.

This is :class:`repro.lb.failaware.LeafPathHealth` — the evidence rules
Hermes derives from §3.1.2 (timeouts fail a path immediately,
retransmissions only past a windowed threshold, a completed round trip
is proof of life) — dressed in the detector protocol.  It stays a
subclass rather than a wrapper so the zoo schemes that were written
against a health table (REPS, DiffFlow, RDNA) run *exactly* the same
code when the experiment asks for ``detector="transport"``: same dict
lookups, same verdict timing, same RNG silence.

The detector is fully passive: it schedules no events, sends no
packets and draws no randomness, so attaching it to any scheme leaves
a failure-free run bit-identical.  Detection latency is bounded below
by the transport's RTO floor — the reason :class:`~repro.detect.bfd.
BfdDetector` exists.
"""

from __future__ import annotations

from typing import List

from repro.detect.base import DOWN, SUSPECT, UP, FlipListener
from repro.lb.failaware import (
    DEFAULT_HOLD_NS,
    DEFAULT_RETX_THRESHOLD,
    DEFAULT_RETX_WINDOW_NS,
    LeafPathHealth,
)


class TransportDetector(LeafPathHealth):
    """Passive transport-evidence detector (drop-in ``LeafPathHealth``)."""

    name = "transport"
    active = False

    def __init__(
        self,
        fabric,
        leaf: int,
        hold_ns: int = DEFAULT_HOLD_NS,
        retx_threshold: int = DEFAULT_RETX_THRESHOLD,
        retx_window_ns: int = DEFAULT_RETX_WINDOW_NS,
    ) -> None:
        super().__init__(
            fabric,
            leaf,
            hold_ns=hold_ns,
            retx_threshold=retx_threshold,
            retx_window_ns=retx_window_ns,
        )
        self.audit = None
        #: Evidence absorbed while a hold was already standing.
        self.flap_suppressions = 0
        self._flip_listeners: List[FlipListener] = []

    # -- detector protocol additions ----------------------------------- #

    @property
    def false_positive_count(self) -> int:
        """Verdicts lifted by proof-of-life ACKs (``false_alarms``)."""
        return self.false_alarms

    def path_verdict(self, dst_leaf: int, path: int) -> int:
        if self.is_failed(dst_leaf, path):
            return DOWN
        window = self._retx.get((dst_leaf, path))
        if (
            window is not None
            and window[1] > 0
            and self.sim.now - window[0] <= self.retx_window_ns
        ):
            return SUSPECT
        return UP

    def start(self) -> None:
        """Passive: nothing to start."""

    def add_flip_listener(self, listener: FlipListener) -> None:
        self._flip_listeners.append(listener)

    def _notify(self, dst_leaf: int, path: int, old: int, new: int, cause: str) -> None:
        audit = self.audit
        if audit is not None:
            audit.on_verdict(self, dst_leaf, path, old, new, cause, "")
        for listener in self._flip_listeners:
            listener(self, dst_leaf, path, old, new)

    def metrics(self) -> dict:
        return {
            "detector": self.name,
            "detections": self.failed_detections,
            "false_positive_count": self.false_positive_count,
            "flap_suppressions": self.flap_suppressions,
        }

    # -- evidence feeds: same verdict logic, now observable ------------- #

    def mark_failed(self, dst_leaf: int, path: int) -> bool:
        fresh = super().mark_failed(dst_leaf, path)
        if fresh:
            self._notify(dst_leaf, path, UP, DOWN, "transport-evidence")
        else:
            # The hold window is the flap suppressor: repeated evidence
            # against an already-failed path extends the hold without a
            # second detection.
            self.flap_suppressions += 1
        return fresh

    def note_ok(self, dst_leaf: int, path: int) -> None:
        was_failed = path >= 0 and self.is_failed(dst_leaf, path)
        super().note_ok(dst_leaf, path)
        if was_failed:
            self._notify(dst_leaf, path, DOWN, UP, "proof-of-life")
