"""Detector protocol: verdicts, the base class, and probe plumbing.

A *detector* answers one question per (dst_leaf, path) pair: is that
path usable right now?  The answer is a three-state verdict —

- ``UP``      — no adverse evidence; schemes should use the path.
- ``SUSPECT`` — evidence is accumulating (missed heartbeats, a live
  retransmission window, sub-threshold failure rate) but not yet
  conclusive.  Schemes keep using the path; combiners may weigh it.
- ``DOWN``    — conclusive evidence; schemes must steer around it.

Detectors are per-leaf objects (mirroring ``LeafPathHealth``): each
leaf judges its own uplink paths to every destination leaf.  All of
them expose the same duck-typed surface, so a detector is a drop-in
replacement wherever a ``LeafPathHealth`` was accepted before.

Verdict flips are observable twice over: the audit trail receives an
``on_verdict`` record for every transition (see
:mod:`repro.telemetry.audit`), and *flip listeners* — registered by
combining detectors — get a synchronous callback so a quorum can
recompute the combined verdict at the instant a member changes its
mind, rather than polling.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

UP = 0
SUSPECT = 1
DOWN = 2

VERDICT_NAMES = {UP: "up", SUSPECT: "suspect", DOWN: "down"}

#: Reserved probe ``flow_id`` sentinels.  The Hermes prober stamps its
#: probes with flow_id 0; detector probes use distinct negative ids so
#: one agent host can demultiplex replies for several probe consumers
#: (see :func:`chain_probe_sink`).
BFD_FLOW_ID = -101
BREAKER_FLOW_ID = -102

FlipListener = Callable[["Detector", int, int, int, int], None]


def agent_host_of(fabric, leaf: int) -> int:
    """The designated probing host of a leaf (same convention as the
    Hermes prober: the first host of the rack)."""
    return next(iter(fabric.topology.hosts_of_leaf(leaf)))


def chain_probe_sink(fabric, host_id: int, flow_id: int, handler) -> None:
    """Route PROBE_REPLY packets with ``flow_id`` to ``handler``.

    A host has a single ``probe_sink`` slot; probe consumers (the
    Hermes prober, BFD, breaker trials) coexist by chaining: replies
    carrying our sentinel id go to ``handler``, everything else falls
    through to whatever sink was installed before us.  Installation
    order therefore never matters — each layer only claims its own id.
    """
    host = fabric.hosts[host_id]
    prev = host.probe_sink

    def sink(reply, _prev=prev, _handler=handler, _fid=flow_id):
        if reply.flow_id == _fid:
            _handler(reply)
        elif _prev is not None:
            _prev(reply)

    host.probe_sink = sink


class Detector:
    """Base class for failure detectors.

    Subclasses implement :meth:`path_verdict` plus whichever evidence
    feeds they consume; everything else (live-path filtering, flip
    bookkeeping, metrics) is shared.  The surface is a strict superset
    of :class:`repro.lb.failaware.LeafPathHealth`, so zoo schemes that
    were built against a health table accept any detector unchanged.
    """

    #: Short kind name, also used by the spec DSL.
    name = "detector"
    #: Active detectors inject packets / schedule events and therefore
    #: perturb the simulation; passive ones are bit-identity safe.
    active = False

    def __init__(self, fabric, leaf: int) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.leaf = leaf
        #: Simulation times at which a path was (newly) declared DOWN.
        self.detection_times: List[int] = []
        #: Count of UP/SUSPECT -> DOWN transitions.
        self.failed_detections = 0
        #: DOWN verdicts contradicted by proof the path was alive.
        self.false_positive_count = 0
        #: Adverse episodes absorbed without flipping to DOWN.
        self.flap_suppressions = 0
        #: Optional decision-audit hook (set via ``HookSet``).
        self.audit = None
        self._flip_listeners: List[FlipListener] = []

    # ------------------------------------------------------------------ #
    # Verdicts
    # ------------------------------------------------------------------ #

    def path_verdict(self, dst_leaf: int, path: int) -> int:
        """Judge ``path`` toward ``dst_leaf``.  Default: everything UP."""
        return UP

    def is_failed(self, dst_leaf: int, path: int) -> bool:
        """LeafPathHealth-compatible view: DOWN means failed."""
        return self.path_verdict(dst_leaf, path) == DOWN

    def alive(self, dst_leaf: int, paths: Sequence[int]) -> Tuple[int, ...]:
        """Filter ``paths`` to those not DOWN.

        Falls back to the full set when every path is DOWN — stranding a
        destination entirely is always worse than sending into a
        possibly-dead path (same contract as ``LeafPathHealth.alive``).
        """
        live = tuple(p for p in paths if self.path_verdict(dst_leaf, p) != DOWN)
        return live if live else tuple(paths)

    # ------------------------------------------------------------------ #
    # Evidence feeds (no-ops by default; passive detectors override)
    # ------------------------------------------------------------------ #

    def note_timeout(self, dst_leaf: int, path: int) -> bool:
        return False

    def note_retransmit(self, dst_leaf: int, path: int) -> bool:
        return False

    def note_ok(self, dst_leaf: int, path: int) -> None:
        return None

    def mark_failed(self, dst_leaf: int, path: int) -> bool:
        return False

    # ------------------------------------------------------------------ #
    # Lifecycle / composition
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Begin active operation (heartbeat rounds etc.).  Passive
        detectors need nothing; calling twice must be harmless."""

    def add_flip_listener(self, listener: FlipListener) -> None:
        """Register a callback invoked on every verdict transition."""
        self._flip_listeners.append(listener)

    def _flip(
        self,
        dst_leaf: int,
        path: int,
        old: int,
        new: int,
        cause: str,
        detail: str = "",
    ) -> None:
        """Record a verdict transition: counters, audit, listeners."""
        if new == DOWN and old != DOWN:
            self.failed_detections += 1
            self.detection_times.append(self.sim.now)
        audit = self.audit
        if audit is not None:
            audit.on_verdict(self, dst_leaf, path, old, new, cause, detail)
        for listener in self._flip_listeners:
            listener(self, dst_leaf, path, old, new)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def metrics(self) -> dict:
        """Counter snapshot for the fault-plane metrics block."""
        return {
            "detector": self.name,
            "detections": self.failed_detections,
            "false_positive_count": self.false_positive_count,
            "flap_suppressions": self.flap_suppressions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} leaf={self.leaf} "
            f"detections={self.failed_detections}>"
        )
