"""Detector spec DSL: parse ``ExperimentConfig.detector`` strings.

The detector is configured by a compact string so it rides through the
config dataclass, the result-cache key, JSON round trips and the CLI
unchanged:

- ``"transport"`` / ``"transport:hold=50ms,retx_threshold=10,retx_window=10ms"``
- ``"bfd"`` / ``"bfd:tx=100us,mult=3"``
- ``"breaker"`` / ``"breaker:threshold=0.5,window=10ms,min_volume=4,open=50ms,trial=25ms"``
- ``"quorum:transport+bfd"`` / ``"quorum:transport+bfd,quorum=2"``
- ``"fastest:transport+bfd"``

Durations reuse the fault-DSL time grammar (``100us``, ``50ms``,
``1.5s``, bare ns).  Member lists in combiners are bare kinds joined
with ``+`` and run with their defaults.

Time-valued *defaults* scale with the experiment's ``time_scale`` —
exactly like the zoo's ``hold_ns``/``retx_window_ns`` and the
transport's RTO floor do in the runner — while explicitly spelled
values are taken literally.  A golden-grid cell at ``time_scale=0.05``
therefore gets a proportionally faster default BFD session instead of
one that outlives the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from repro.faults.spec import parse_time
from repro.sim.engine import microseconds, milliseconds

#: kind -> {param -> ("time" | "int" | "float")}
_PARAM_TYPES: Dict[str, Dict[str, str]] = {
    "transport": {"hold": "time", "retx_threshold": "int", "retx_window": "time"},
    "bfd": {"tx": "time", "mult": "int"},
    "breaker": {
        "threshold": "float",
        "window": "time",
        "min_volume": "int",
        "open": "time",
        "trial": "time",
    },
    "quorum": {"quorum": "int"},
    "fastest": {},
}

DETECTOR_KINDS = tuple(sorted(_PARAM_TYPES))
_COMBINER_KINDS = ("quorum", "fastest")

#: Time-valued defaults (ns at time_scale=1.0); everything else defaults
#: inside the detector constructors.
_TIME_DEFAULTS: Dict[str, Dict[str, int]] = {
    "transport": {
        "hold": milliseconds(50),
        "retx_window": milliseconds(10),
    },
    "bfd": {"tx": microseconds(100)},
    "breaker": {
        "window": milliseconds(10),
        "open": milliseconds(50),
        "trial": milliseconds(25),
    },
}


@dataclass(frozen=True)
class DetectorSpec:
    """Parsed detector configuration (hashable, canonicalizable)."""

    kind: str
    params: Tuple[Tuple[str, Union[int, float]], ...] = ()
    members: Tuple["DetectorSpec", ...] = field(default=())

    def param(self, key: str, default=None):
        for name, value in self.params:
            if name == key:
                return value
        return default

    def canonical(self) -> str:
        """Round-trippable canonical string form."""
        parts = []
        if self.members:
            parts.append("+".join(m.kind for m in self.members))
        parts.extend(f"{k}={v}" for k, v in self.params)
        if not parts:
            return self.kind
        return f"{self.kind}:{','.join(parts)}"


def _parse_value(kind: str, key: str, raw: str) -> Union[int, float]:
    try:
        value_type = _PARAM_TYPES[kind][key]
    except KeyError:
        allowed = ", ".join(sorted(_PARAM_TYPES[kind])) or "(none)"
        raise ValueError(
            f"unknown parameter {key!r} for detector {kind!r} "
            f"(allowed: {allowed})"
        ) from None
    try:
        if value_type == "time":
            return parse_time(raw)
        if value_type == "int":
            return int(raw)
        return float(raw)
    except ValueError:
        raise ValueError(
            f"bad value {raw!r} for detector parameter {kind}:{key}"
        ) from None


def parse_detector(text: str) -> DetectorSpec:
    """Parse a detector spec string; raises ``ValueError`` on nonsense."""
    if not isinstance(text, str) or not text.strip():
        raise ValueError("detector spec must be a non-empty string")
    text = text.strip()
    kind, _, rest = text.partition(":")
    kind = kind.strip().lower()
    if kind not in _PARAM_TYPES:
        raise ValueError(
            f"unknown detector kind {kind!r} "
            f"(one of: {', '.join(DETECTOR_KINDS)})"
        )
    members: Tuple[DetectorSpec, ...] = ()
    params = []
    tokens = [t.strip() for t in rest.split(",") if t.strip()] if rest else []
    for token in tokens:
        if "=" in token:
            key, _, raw = token.partition("=")
            key = key.strip().lower()
            params.append((key, _parse_value(kind, key, raw.strip())))
        elif "+" in token or token in _PARAM_TYPES:
            if kind not in _COMBINER_KINDS:
                raise ValueError(
                    f"detector {kind!r} does not take a member list "
                    f"({token!r})"
                )
            if members:
                raise ValueError("only one member list is allowed")
            member_specs = []
            for name in token.split("+"):
                name = name.strip().lower()
                if name in _COMBINER_KINDS:
                    raise ValueError("combiners cannot nest combiners")
                member_specs.append(parse_detector(name))
            members = tuple(member_specs)
        else:
            raise ValueError(f"cannot parse detector token {token!r}")
    if kind in _COMBINER_KINDS:
        if len(members) < 2:
            raise ValueError(
                f"detector {kind!r} needs a member list like "
                f"'{kind}:transport+bfd'"
            )
        quorum = dict(params).get("quorum", 0)
        if quorum and not 1 <= quorum <= len(members):
            raise ValueError(
                f"quorum={quorum} out of range for {len(members)} members"
            )
    elif members:
        raise ValueError(f"detector {kind!r} does not take members")
    return DetectorSpec(kind, tuple(params), members)


def _scaled(default_ns: int, time_scale: float) -> int:
    return max(1, int(default_ns * time_scale))


def build_detector(spec, fabric, leaf: int, time_scale: float = 1.0):
    """Instantiate one detector for ``leaf`` from a spec (or string).

    ``time_scale`` scales *default* durations only; explicit spec values
    are honored verbatim.
    """
    if isinstance(spec, str):
        spec = parse_detector(spec)
    # Imported here: the implementations pull in lb/net modules that the
    # LB factory itself imports, and the spec layer must stay cheap.
    from repro.detect.bfd import DEFAULT_DETECT_MULT, BfdDetector
    from repro.detect.breaker import (
        DEFAULT_FAILURE_THRESHOLD,
        DEFAULT_MIN_VOLUME,
        CircuitBreakerDetector,
    )
    from repro.detect.combine import FastestOfDetector, QuorumDetector
    from repro.detect.transport import TransportDetector
    from repro.lb.failaware import DEFAULT_RETX_THRESHOLD

    defaults = _TIME_DEFAULTS.get(spec.kind, {})

    def timed(key: str) -> int:
        explicit = spec.param(key)
        if explicit is not None:
            return int(explicit)
        return _scaled(defaults[key], time_scale)

    if spec.kind == "transport":
        return TransportDetector(
            fabric,
            leaf,
            hold_ns=timed("hold"),
            retx_threshold=int(spec.param("retx_threshold",
                                          DEFAULT_RETX_THRESHOLD)),
            retx_window_ns=timed("retx_window"),
        )
    if spec.kind == "bfd":
        return BfdDetector(
            fabric,
            leaf,
            tx_interval_ns=timed("tx"),
            detect_mult=int(spec.param("mult", DEFAULT_DETECT_MULT)),
        )
    if spec.kind == "breaker":
        return CircuitBreakerDetector(
            fabric,
            leaf,
            failure_threshold=float(spec.param("threshold",
                                               DEFAULT_FAILURE_THRESHOLD)),
            window_ns=timed("window"),
            min_volume=int(spec.param("min_volume", DEFAULT_MIN_VOLUME)),
            open_timeout_ns=timed("open"),
            trial_timeout_ns=timed("trial"),
        )
    members = [
        build_detector(member, fabric, leaf, time_scale=time_scale)
        for member in spec.members
    ]
    if spec.kind == "quorum":
        return QuorumDetector(fabric, leaf, members,
                              quorum=int(spec.param("quorum", 0)))
    return FastestOfDetector(fabric, leaf, members)


def build_leaf_detectors(fabric, spec, time_scale: float = 1.0) -> dict:
    """One detector per leaf, keyed by leaf index — the shape installers
    publish as ``shared["detectors"]``."""
    if isinstance(spec, str):
        spec = parse_detector(spec)
    return {
        leaf: build_detector(spec, fabric, leaf, time_scale=time_scale)
        for leaf in range(fabric.config.n_leaves)
    }
