"""Circuit-breaker path detector: closed / open / half-open per path.

The breaker consumes the same passive transport evidence as
:class:`~repro.detect.transport.TransportDetector` but replaces the
fixed hold with the classic breaker lifecycle:

- ``CLOSED`` — healthy.  Successes and retransmissions are tallied in a
  sliding window; a timeout, or a windowed failure *rate* above
  ``failure_threshold`` (once ``min_volume`` samples exist), trips the
  breaker.
- ``OPEN`` — the path reads DOWN.  After ``open_timeout_ns`` the
  breaker probes for recovery instead of blindly re-admitting traffic.
- ``HALF_OPEN`` — a single *trial probe* (a real PROBE packet down the
  suspect path) is in flight; data traffic still reads DOWN.  An echo
  closes the breaker; a trial timeout re-opens it for another
  ``open_timeout_ns``.

A proof-of-life ACK landing while the breaker is OPEN closes it early
and counts a false positive — the same congested-but-alive bound
``LeafPathHealth`` enforces.  Adverse evidence arriving while already
OPEN is absorbed into ``flap_suppressions`` rather than re-detected.

On a clean run the breaker never trips, never schedules an event and
never sends a packet, so it is bit-identity safe like the transport
detector.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.detect.base import (
    BREAKER_FLOW_ID,
    DOWN,
    SUSPECT,
    UP,
    Detector,
    agent_host_of,
    chain_probe_sink,
)
from repro.sim.engine import milliseconds

DEFAULT_FAILURE_THRESHOLD = 0.5
DEFAULT_WINDOW_NS = milliseconds(10)
DEFAULT_MIN_VOLUME = 4
DEFAULT_OPEN_TIMEOUT_NS = milliseconds(50)
DEFAULT_TRIAL_TIMEOUT_NS = milliseconds(25)

_CLOSED = 0
_OPEN = 1
_HALF_OPEN = 2


class _Breaker:
    """Per-(dst_leaf, path) breaker state."""

    __slots__ = ("state", "window_start", "failures", "successes", "epoch",
                 "down_since")

    def __init__(self, now: int) -> None:
        self.state = _CLOSED
        self.window_start = now
        self.failures = 0
        self.successes = 0
        #: Bumped on every state change; outstanding timers carry the
        #: epoch they were armed in and no-op if it moved on.
        self.epoch = 0
        self.down_since = -1


class CircuitBreakerDetector(Detector):
    """Failure-rate breaker with half-open trial probes."""

    name = "breaker"
    active = False  # passive until tripped; clean runs stay untouched

    def __init__(
        self,
        fabric,
        leaf: int,
        failure_threshold: float = DEFAULT_FAILURE_THRESHOLD,
        window_ns: int = DEFAULT_WINDOW_NS,
        min_volume: int = DEFAULT_MIN_VOLUME,
        open_timeout_ns: int = DEFAULT_OPEN_TIMEOUT_NS,
        trial_timeout_ns: int = DEFAULT_TRIAL_TIMEOUT_NS,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window_ns <= 0 or open_timeout_ns <= 0 or trial_timeout_ns <= 0:
            raise ValueError("breaker windows/timeouts must be positive")
        if min_volume < 1:
            raise ValueError("min_volume must be >= 1")
        super().__init__(fabric, leaf)
        self.failure_threshold = failure_threshold
        self.window_ns = window_ns
        self.min_volume = min_volume
        self.open_timeout_ns = open_timeout_ns
        self.trial_timeout_ns = trial_timeout_ns
        self.agent_host = agent_host_of(fabric, leaf)
        self.trials_sent = 0
        self._breakers: Dict[Tuple[int, int], _Breaker] = {}
        chain_probe_sink(fabric, self.agent_host, BREAKER_FLOW_ID,
                         self._on_trial_reply)

    # ------------------------------------------------------------------ #
    # Verdicts
    # ------------------------------------------------------------------ #

    def path_verdict(self, dst_leaf: int, path: int) -> int:
        breaker = self._breakers.get((dst_leaf, path))
        if breaker is None:
            return UP
        if breaker.state != _CLOSED:
            return DOWN
        if (
            breaker.failures > 0
            and self.sim.now - breaker.window_start <= self.window_ns
        ):
            return SUSPECT
        return UP

    # ------------------------------------------------------------------ #
    # Evidence feeds
    # ------------------------------------------------------------------ #

    def note_ok(self, dst_leaf: int, path: int) -> None:
        if path < 0:
            return
        breaker = self._breakers.get((dst_leaf, path))
        if breaker is None:
            return
        if breaker.state == _CLOSED:
            self._roll_window(breaker)
            breaker.successes += 1
            return
        # Proof of life while tripped: an open breaker was wrong, a
        # half-open one was just raced by the real recovery.
        if breaker.state == _OPEN:
            self.false_positive_count += 1
            self._close(dst_leaf, path, breaker, "proof-of-life")
        else:
            self._close(dst_leaf, path, breaker, "recovery-raced-trial")

    def note_retransmit(self, dst_leaf: int, path: int) -> bool:
        if path < 0:
            return False
        breaker = self._get(dst_leaf, path)
        if breaker.state == _OPEN:
            self.flap_suppressions += 1
            return False
        if breaker.state == _HALF_OPEN:
            self._reopen(dst_leaf, path, breaker, "half-open-failure")
            return False
        self._roll_window(breaker)
        breaker.failures += 1
        volume = breaker.failures + breaker.successes
        if (
            volume >= self.min_volume
            and breaker.failures / volume >= self.failure_threshold
        ):
            self._trip(dst_leaf, path, breaker, "failure-rate",
                       f"{breaker.failures}/{volume} in window")
            return True
        return False

    def note_timeout(self, dst_leaf: int, path: int) -> bool:
        if path < 0:
            return False
        breaker = self._get(dst_leaf, path)
        if breaker.state == _OPEN:
            self.flap_suppressions += 1
            return False
        if breaker.state == _HALF_OPEN:
            self._reopen(dst_leaf, path, breaker, "half-open-timeout")
            return False
        self._trip(dst_leaf, path, breaker, "timeout", "")
        return True

    def mark_failed(self, dst_leaf: int, path: int) -> bool:
        return self.note_timeout(dst_leaf, path)

    # ------------------------------------------------------------------ #
    # Breaker lifecycle
    # ------------------------------------------------------------------ #

    def _get(self, dst_leaf: int, path: int) -> _Breaker:
        key = (dst_leaf, path)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = _Breaker(self.sim.now)
            self._breakers[key] = breaker
        return breaker

    def _roll_window(self, breaker: _Breaker) -> None:
        now = self.sim.now
        if now - breaker.window_start > self.window_ns:
            breaker.window_start = now
            breaker.failures = 0
            breaker.successes = 0

    def _trip(self, dst_leaf: int, path: int, breaker: _Breaker,
              cause: str, detail: str) -> None:
        old = SUSPECT if breaker.failures > 0 else UP
        breaker.state = _OPEN
        breaker.down_since = self.sim.now
        breaker.epoch += 1
        self._flip(dst_leaf, path, old, DOWN, cause, detail)
        self.sim.schedule(self.open_timeout_ns, self._on_open_timeout,
                          dst_leaf, path, breaker.epoch)

    def _reopen(self, dst_leaf: int, path: int, breaker: _Breaker,
                cause: str) -> None:
        """Half-open trial failed: back to OPEN for another timeout.
        The verdict never left DOWN, so this is not a new detection —
        it is a suppressed oscillation."""
        breaker.state = _OPEN
        breaker.epoch += 1
        self.flap_suppressions += 1
        audit = self.audit
        if audit is not None:
            audit.on_verdict(self, dst_leaf, path, DOWN, DOWN, cause, "")
        self.sim.schedule(self.open_timeout_ns, self._on_open_timeout,
                          dst_leaf, path, breaker.epoch)

    def _close(self, dst_leaf: int, path: int, breaker: _Breaker,
               cause: str) -> None:
        if breaker.state == _CLOSED:
            return
        breaker.state = _CLOSED
        breaker.epoch += 1
        breaker.window_start = self.sim.now
        breaker.failures = 0
        breaker.successes = 0
        self._flip(dst_leaf, path, DOWN, UP, cause, "")

    # ------------------------------------------------------------------ #
    # Timers and trial probes
    # ------------------------------------------------------------------ #

    def _on_open_timeout(self, dst_leaf: int, path: int, epoch: int) -> None:
        breaker = self._breakers.get((dst_leaf, path))
        if breaker is None or breaker.epoch != epoch or breaker.state != _OPEN:
            return
        breaker.state = _HALF_OPEN
        breaker.epoch += 1
        probe = self.fabric.packet_pool.probe(
            BREAKER_FLOW_ID,
            self.agent_host,
            agent_host_of(self.fabric, dst_leaf),
            path,
            self.sim.now,
        )
        self.trials_sent += 1
        self.fabric.send(probe)
        self.sim.schedule(self.trial_timeout_ns, self._on_trial_timeout,
                          dst_leaf, path, breaker.epoch)

    def _on_trial_timeout(self, dst_leaf: int, path: int, epoch: int) -> None:
        breaker = self._breakers.get((dst_leaf, path))
        if (
            breaker is None
            or breaker.epoch != epoch
            or breaker.state != _HALF_OPEN
        ):
            return
        self._reopen(dst_leaf, path, breaker, "trial-timeout")

    def _on_trial_reply(self, reply) -> None:
        dst_leaf = self.fabric.topology.leaf_of(reply.src)
        path = reply.path_id
        breaker = self._breakers.get((dst_leaf, path))
        if breaker is None or breaker.state == _CLOSED:
            return
        # A trial echo proves the path delivers, whether it arrives
        # during the half-open window or (late) after a re-open.
        self._close(dst_leaf, path, breaker, "trial-ok")

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def metrics(self) -> dict:
        out = super().metrics()
        out["trials_sent"] = self.trials_sent
        return out
