"""Verdict combination: quorum and fastest-of detector composition.

Layered detection only pays off if the layers cover for each other:
BFD is fast but a queueing spike can starve heartbeats; transport
evidence is slow but grounded in real traffic.  Combiners hold several
member detectors, forward all passive evidence to each, and derive a
*combined* verdict per (dst_leaf, path):

- :class:`QuorumDetector` — DOWN only when at least ``quorum`` members
  say DOWN (default: a strict majority).  A single layer's false
  positive cannot strand a path.
- :class:`FastestOfDetector` — DOWN as soon as *any* member says DOWN
  (a quorum of one).  Detection latency is the minimum over members;
  false positives are the union.

Members push: every member verdict flip triggers a recomputation of
the combined verdict for that pair (via the flip-listener hook on
:class:`~repro.detect.base.Detector`), so the combiner keeps its own
``detection_times`` — stamped when the *combination* crossed into
DOWN, which is the number the detection-latency metric should see.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.detect.base import DOWN, SUSPECT, UP, VERDICT_NAMES, Detector


class ComboDetector(Detector):
    """Shared machinery for verdict-combining detectors."""

    def __init__(self, fabric, leaf: int, members: Sequence, quorum: int) -> None:
        members = tuple(members)
        if len(members) < 2:
            raise ValueError("combiners need at least two member detectors")
        if not 1 <= quorum <= len(members):
            raise ValueError("quorum must be within 1..len(members)")
        self.members = members
        self._audit = None
        super().__init__(fabric, leaf)
        self.quorum = quorum
        self._combined: Dict[Tuple[int, int], int] = {}
        for member in members:
            member.add_flip_listener(self._member_flip)

    @property
    def active(self) -> bool:  # type: ignore[override]
        return any(member.active for member in self.members)

    # The audit hook fans out: member flips are audited with the member
    # as the source, combined flips with the combiner itself.
    @property
    def audit(self):
        return self._audit

    @audit.setter
    def audit(self, value) -> None:
        self._audit = value
        for member in self.members:
            member.audit = value

    # ------------------------------------------------------------------ #
    # Verdicts
    # ------------------------------------------------------------------ #

    def path_verdict(self, dst_leaf: int, path: int) -> int:
        down = 0
        adverse = 0
        for member in self.members:
            verdict = member.path_verdict(dst_leaf, path)
            if verdict == DOWN:
                down += 1
                adverse += 1
            elif verdict == SUSPECT:
                adverse += 1
        if down >= self.quorum:
            return DOWN
        if adverse:
            return SUSPECT
        return UP

    def _member_flip(self, member, dst_leaf: int, path: int,
                     old: int, new: int) -> None:
        key = (dst_leaf, path)
        combined = self.path_verdict(dst_leaf, path)
        previous = self._combined.get(key, UP)
        if combined == previous:
            return
        self._combined[key] = combined
        self._flip(
            dst_leaf,
            path,
            previous,
            combined,
            f"member-{member.name}-{VERDICT_NAMES[new]}",
            f"quorum={self.quorum}/{len(self.members)}",
        )

    # ------------------------------------------------------------------ #
    # Evidence feeds fan out to every member
    # ------------------------------------------------------------------ #

    def note_timeout(self, dst_leaf: int, path: int) -> bool:
        tripped = False
        for member in self.members:
            tripped = member.note_timeout(dst_leaf, path) or tripped
        return tripped

    def note_retransmit(self, dst_leaf: int, path: int) -> bool:
        tripped = False
        for member in self.members:
            tripped = member.note_retransmit(dst_leaf, path) or tripped
        return tripped

    def note_ok(self, dst_leaf: int, path: int) -> None:
        for member in self.members:
            member.note_ok(dst_leaf, path)

    def mark_failed(self, dst_leaf: int, path: int) -> bool:
        tripped = False
        for member in self.members:
            tripped = member.mark_failed(dst_leaf, path) or tripped
        return tripped

    # ------------------------------------------------------------------ #
    # Lifecycle / reporting
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        for member in self.members:
            member.start()

    def metrics(self) -> dict:
        out = super().metrics()
        out["quorum"] = self.quorum
        out["members"] = [member.metrics() for member in self.members]
        return out


class QuorumDetector(ComboDetector):
    """DOWN when at least ``quorum`` members agree (default majority)."""

    name = "quorum"

    def __init__(self, fabric, leaf: int, members: Sequence,
                 quorum: int = 0) -> None:
        members = tuple(members)
        if quorum <= 0:
            quorum = len(members) // 2 + 1
        super().__init__(fabric, leaf, members, quorum)


class FastestOfDetector(ComboDetector):
    """DOWN as soon as any member is (quorum of one)."""

    name = "fastest"

    def __init__(self, fabric, leaf: int, members: Sequence) -> None:
        super().__init__(fabric, leaf, tuple(members), 1)
