"""Pluggable failure-detection plane.

``repro.detect`` decouples *how a path is judged dead* from *what a load
balancer does about it*.  Every detector exposes the same protocol (a
superset of :class:`repro.lb.failaware.LeafPathHealth`):

- ``path_verdict(dst_leaf, path) -> UP | SUSPECT | DOWN``
- ``alive(dst_leaf, paths)`` / ``is_failed(dst_leaf, path)``
- evidence feeds ``note_timeout`` / ``note_retransmit`` / ``note_ok``
- ``detection_times`` / ``false_positive_count`` / ``flap_suppressions``
- ``start()`` for active detectors that schedule engine events

Implementations:

- :class:`TransportDetector` — today's passive timeout/retx evidence
  (wraps ``LeafPathHealth``); schedules nothing, sends nothing.
- :class:`BfdDetector` — BFD-style async-mode heartbeat sessions per
  (dst_leaf, path); heartbeats are real in-fabric PROBE packets, so
  they die with the link and experience real queueing.
- :class:`CircuitBreakerDetector` — closed/open/half-open breaker per
  path with a failure-rate window and half-open trial probes.
- :class:`QuorumDetector` / :class:`FastestOfDetector` — combine
  member verdicts so one layer's false positive cannot strand a path.

Select via ``ExperimentConfig.detector`` (e.g. ``"bfd:tx=100us,mult=3"``,
see :func:`parse_detector`), or build directly with
:func:`build_leaf_detectors`.
"""

from repro.detect.base import (
    DOWN,
    SUSPECT,
    UP,
    VERDICT_NAMES,
    BFD_FLOW_ID,
    BREAKER_FLOW_ID,
    Detector,
    agent_host_of,
    chain_probe_sink,
)
from repro.detect.bfd import BfdDetector
from repro.detect.breaker import CircuitBreakerDetector
from repro.detect.combine import FastestOfDetector, QuorumDetector
from repro.detect.spec import (
    DETECTOR_KINDS,
    DetectorSpec,
    build_detector,
    build_leaf_detectors,
    parse_detector,
)
from repro.detect.transport import TransportDetector

__all__ = [
    "UP",
    "SUSPECT",
    "DOWN",
    "VERDICT_NAMES",
    "BFD_FLOW_ID",
    "BREAKER_FLOW_ID",
    "Detector",
    "TransportDetector",
    "BfdDetector",
    "CircuitBreakerDetector",
    "QuorumDetector",
    "FastestOfDetector",
    "DetectorSpec",
    "DETECTOR_KINDS",
    "parse_detector",
    "build_detector",
    "build_leaf_detectors",
    "agent_host_of",
    "chain_probe_sink",
]
