"""BFD-style heartbeat detector.

One :class:`BfdDetector` per leaf runs an async-mode session per
(dst_leaf, path) pair: every ``tx_interval_ns`` the leaf's agent host
transmits a heartbeat (a real PROBE packet) down each spine path to the
destination rack's agent host, which echoes it back (``Host.receive``
already answers PROBE with PROBE_REPLY).  A session that has not heard
an echo for ``detect_mult`` transmit intervals is declared Down — the
classic BFD detection time of ``mult × tx``.

Because heartbeats are ordinary in-fabric packets they die with the
link (admin-down drops them at enqueue), get delayed by real queueing
on degraded paths, and cost real bandwidth — the detector's speed and
its false-positive exposure are both physical, not modelled.

Session state machine (async mode, simplified to echo evidence):

- ``Down``: no recent echo.  The first echo moves the session to
  ``Init``; a second consecutive echo establishes ``Up`` (standing in
  for BFD's three-way handshake).
- ``Init``: one echo heard; not yet trusted.
- ``Up``: established.  Missing ~2 intervals marks the session
  SUSPECT; missing ``detect_mult`` intervals flips it DOWN.

Sessions that have *never* established read UP — a cold start must not
strand every path before the first round trip completes.

A flap shorter than the ``detect_mult`` window never reaches DOWN: the
session dips to SUSPECT and recovers, counted in ``flap_suppressions``.
An echo whose probe was launched *before* a DOWN flip (``ts_echo <
down_since``) proves the path was alive when condemned and increments
``false_positive_count``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.detect.base import (
    BFD_FLOW_ID,
    DOWN,
    SUSPECT,
    UP,
    Detector,
    agent_host_of,
    chain_probe_sink,
)
from repro.sim.engine import microseconds

DEFAULT_TX_INTERVAL_NS = microseconds(100)
DEFAULT_DETECT_MULT = 3

_S_DOWN = 0
_S_INIT = 1
_S_UP = 2


class _Session:
    """Per-(dst_leaf, path) heartbeat session."""

    __slots__ = ("state", "last_heard", "ever_up", "suspect", "down_since")

    def __init__(self, now: int) -> None:
        self.state = _S_DOWN
        self.last_heard = now
        self.ever_up = False
        self.suspect = False
        self.down_since = -1


class BfdDetector(Detector):
    """Per-path heartbeat liveness sessions on real fabric packets."""

    name = "bfd"
    active = True

    def __init__(
        self,
        fabric,
        leaf: int,
        tx_interval_ns: int = DEFAULT_TX_INTERVAL_NS,
        detect_mult: int = DEFAULT_DETECT_MULT,
    ) -> None:
        if tx_interval_ns <= 0:
            raise ValueError("tx_interval_ns must be positive")
        if detect_mult < 1:
            raise ValueError("detect_mult must be >= 1")
        super().__init__(fabric, leaf)
        self.tx_interval_ns = tx_interval_ns
        self.detect_mult = detect_mult
        self.agent_host = agent_host_of(fabric, leaf)
        self._sessions: Dict[Tuple[int, int], _Session] = {}
        #: dst_leaf -> (agent host, probeable path ids).  Paths cut from
        #: the topology outright (static link_overrides) are unroutable
        #: and never probed; admin-down links still have a route and eat
        #: the heartbeat — which is exactly the detection signal.
        self._agents: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        self.heartbeats_sent = 0
        self.replies_heard = 0
        self._started = False
        chain_probe_sink(fabric, self.agent_host, BFD_FLOW_ID, self._on_reply)

    # ------------------------------------------------------------------ #
    # Verdicts
    # ------------------------------------------------------------------ #

    def path_verdict(self, dst_leaf: int, path: int) -> int:
        session = self._sessions.get((dst_leaf, path))
        if session is None or not session.ever_up:
            return UP
        if session.state == _S_UP:
            return SUSPECT if session.suspect else UP
        return DOWN

    # ------------------------------------------------------------------ #
    # Heartbeat rounds
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        topo = self.fabric.topology
        config = self.fabric.config
        for dst_leaf in range(config.n_leaves):
            if dst_leaf == self.leaf:
                continue
            paths = topo.paths(self.leaf, dst_leaf)
            if not paths or paths == (-1,):
                continue
            self._agents[dst_leaf] = (
                agent_host_of(self.fabric, dst_leaf), tuple(paths)
            )
        # Deterministic per-leaf jitter de-phases the racks' rounds (the
        # same convention the Hermes prober uses) without touching RNG.
        jitter = (self.leaf * 7919) % max(1, self.tx_interval_ns)
        self.sim.schedule(jitter, self._round)

    def _round(self) -> None:
        now = self.sim.now
        sessions = self._sessions
        deadline = self.detect_mult * self.tx_interval_ns
        suspect_after = 2 * self.tx_interval_ns
        pool = self.fabric.packet_pool
        send = self.fabric.send
        for dst_leaf, (dst_agent, paths) in self._agents.items():
            for path in paths:
                key = (dst_leaf, path)
                session = sessions.get(key)
                if session is None:
                    session = _Session(now)
                    sessions[key] = session
                elif session.state == _S_UP:
                    idle = now - session.last_heard
                    if idle >= deadline:
                        session.state = _S_DOWN
                        session.down_since = now
                        session.suspect = False
                        self._flip(dst_leaf, path, UP, DOWN, "bfd-timeout",
                                   f"idle={idle}ns")
                    elif idle >= suspect_after and not session.suspect:
                        session.suspect = True
                        self._flip(dst_leaf, path, UP, SUSPECT, "bfd-miss",
                                   f"idle={idle}ns")
                probe = pool.probe(BFD_FLOW_ID, self.agent_host, dst_agent,
                                   path, now)
                self.heartbeats_sent += 1
                send(probe)
        self.sim.schedule(self.tx_interval_ns, self._round)

    # ------------------------------------------------------------------ #
    # Echo handling
    # ------------------------------------------------------------------ #

    def _on_reply(self, reply) -> None:
        session = self._sessions.get(
            (self.fabric.topology.leaf_of(reply.src), reply.path_id)
        )
        if session is None:
            return
        dst_leaf = self.fabric.topology.leaf_of(reply.src)
        path = reply.path_id
        self.replies_heard += 1
        state = session.state
        if state == _S_DOWN:
            if session.ever_up and reply.ts_echo < session.down_since:
                # The echoed probe was in flight when we declared the
                # path dead: it was alive all along.
                self.false_positive_count += 1
            session.state = _S_INIT
        elif state == _S_INIT:
            session.state = _S_UP
            session.suspect = False
            if session.ever_up:
                self._flip(dst_leaf, path, DOWN, UP, "bfd-up", "")
            session.ever_up = True
        else:  # _S_UP
            if session.suspect:
                session.suspect = False
                self.flap_suppressions += 1
                self._flip(dst_leaf, path, SUSPECT, UP, "bfd-recover", "")
        session.last_heard = self.sim.now

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def metrics(self) -> dict:
        out = super().metrics()
        out["heartbeats_sent"] = self.heartbeats_sent
        out["replies_heard"] = self.replies_heard
        return out
