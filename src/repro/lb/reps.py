"""REPS: recycled-entropy packet spraying with failure mitigation.

Bonato et al.'s scheme (arXiv 2407.21625): packets are sprayed per
packet like DRB, but the spray is *biased by feedback* — every ACK that
returns clean (no ECN echo, not a retransmission) proves its packet's
path entropy was good, so the sender **recycles** it into a per-flow
FIFO cache and prefers cached entropies over fresh random draws.  Under
congestion the marked paths stop being recycled and the cache drains
toward the good ones; on a clean fabric REPS degenerates to uniform
spraying.

Failure mitigation follows the paper's two rules:

* an RTO **flushes the flow's entire entropy cache** (every cached
  entropy is stale evidence once the flow stalls) and reports the path
  to the shared :class:`~repro.lb.failaware.LeafPathHealth` table, which
  fails it immediately;
* retransmissions evict the implicated entropy from the cache and feed
  the table's windowed retransmission counter, so a lossy-but-alive link
  is also detected and avoided.

Fresh entropies are drawn uniformly from the paths the health table
still trusts, which is what steers traffic off a dead spine within one
RTO — the behaviour the Fig. 16/17 recovery timelines measure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, TYPE_CHECKING

from repro.lb.base import LoadBalancer
from repro.lb.failaware import LeafPathHealth

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase

#: Per-flow entropy cache bound — about one congestion window's worth of
#: in-flight packets; recycling more than that only repeats information.
DEFAULT_CACHE_SIZE = 32


class RepsLB(LoadBalancer):
    """Per-packet spraying that recycles ACK-proven good entropies."""

    name = "reps"
    granularity = "packet"

    def __init__(
        self,
        host,
        fabric,
        rng,
        health: LeafPathHealth,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__(host, fabric, rng)
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.health = health
        self.cache_size = cache_size
        #: flow_id -> FIFO of recycled path entropies.
        self._cache: Dict[int, Deque[int]] = {}
        #: Entropies served from the cache vs drawn fresh (introspection).
        self.recycled = 0
        self.fresh = 0

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = self.topology.paths(self.host.leaf, dst_leaf)
        cache = self._cache.get(flow.flow_id)
        if cache:
            health = self.health
            while cache:
                entropy = cache.popleft()
                # A cached entropy may have gone stale: its path can be
                # cut (topology change) or freshly failed.  Skip, don't
                # re-queue — staleness is why it is being discarded.
                if entropy in paths and not health.is_failed(dst_leaf, entropy):
                    self.recycled += 1
                    return self._note_path(flow, entropy)
        alive = self.health.alive(dst_leaf, paths)
        self.fresh += 1
        return self._note_path(flow, self.rng.choice(alive))

    def on_ack(self, flow: "FlowBase", path_id: int, ece: bool, rtt_ns: int,
               is_retx: bool) -> None:
        if path_id < 0:
            return
        dst_leaf = self.topology.leaf_of(flow.dst)
        # Any round trip is proof of life for the path (clears false
        # failure verdicts) ...
        self.health.note_ok(dst_leaf, path_id)
        # ... but only clean ones prove a *good* entropy worth recycling.
        if ece or is_retx:
            return
        cache = self._cache.get(flow.flow_id)
        if cache is None:
            cache = deque()
            self._cache[flow.flow_id] = cache
        if len(cache) < self.cache_size:
            cache.append(path_id)

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        # Failure mitigation: the stall invalidates everything the flow
        # thought it knew about good entropies.
        self._cache.pop(flow.flow_id, None)
        if path_id >= 0:
            self.health.note_timeout(self.topology.leaf_of(flow.dst), path_id)

    def on_retransmit(self, flow: "FlowBase", path_id: int) -> None:
        if path_id < 0:
            return
        cache = self._cache.get(flow.flow_id)
        if cache and path_id in cache:
            self._cache[flow.flow_id] = deque(
                e for e in cache if e != path_id
            )
        self.health.note_retransmit(self.topology.leaf_of(flow.dst), path_id)

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._cache.pop(flow.flow_id, None)


def install_reps(
    fabric,
    hold_ns: int = None,
    retx_threshold: int = None,
    retx_window_ns: int = None,
    leaf_health=None,
    **params,
):
    """Install REPS on every host with one shared health table per rack.

    ``leaf_health`` replaces the built-in tables with pre-built per-leaf
    health objects — how the factory substitutes a configured
    :mod:`repro.detect` detector (a drop-in ``LeafPathHealth`` superset).
    """
    if leaf_health is not None:
        leaf_states = leaf_health
    else:
        health_kwargs = {
            k: v
            for k, v in (
                ("hold_ns", hold_ns),
                ("retx_threshold", retx_threshold),
                ("retx_window_ns", retx_window_ns),
            )
            if v is not None
        }
        leaf_states = {
            leaf: LeafPathHealth(fabric, leaf, **health_kwargs)
            for leaf in range(fabric.config.n_leaves)
        }
    for host in fabric.hosts:
        host.lb = RepsLB(
            host,
            fabric,
            fabric.rng.spawn("reps", host.host_id),
            leaf_states[host.leaf],
            **params,
        )
    return {"leaf_states": leaf_states}
