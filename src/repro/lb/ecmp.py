"""ECMP: per-flow random hashing (RFC 2992).

Each flow is hashed to one path once and never moves — oblivious to both
congestion and failures, which is exactly why it wastes bisection
bandwidth under hash collisions and never escapes a blackholed spine.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from repro.lb.base import LoadBalancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase


class EcmpLB(LoadBalancer):
    """Static per-flow hashing."""

    name = "ecmp"
    granularity = "flow"

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        if flow.current_path >= 0 and (
            self.detector is None
            or not self.path_down(
                self.topology.leaf_of(flow.dst), flow.current_path
            )
        ):
            return flow.current_path
        # Stickiness is broken only by a detector verdict: the flow
        # re-hashes over the still-live paths (pure ECMP, with no
        # detector, never reaches this with an established path).
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = self.live_paths(dst_leaf, self.paths_to(flow.dst))
        digest = zlib.crc32(
            f"{flow.flow_id}:{flow.src}:{flow.dst}".encode("ascii")
        )
        return self._note_path(flow, paths[digest % len(paths)])
