"""LetFlow: per-flowlet random hashing (Vanini et al., NSDI 2017).

A flow is re-hashed to a uniformly random path whenever an inactivity gap
longer than the flowlet timeout is observed.  No congestion information
is used at all — balance emerges because flowlets on congested paths
stretch and those on idle paths shrink.  As the paper shows, this
converges slowly when traffic is too steady to create flowlet gaps
(data-mining workload) and cannot avoid failed switches.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.lb.base import LoadBalancer
from repro.sim.engine import microseconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase


class LetFlowLB(LoadBalancer):
    """Flowlet switching with random path selection."""

    name = "letflow"
    granularity = "flowlet"

    def __init__(self, host, fabric, rng, flowlet_timeout_ns: int = microseconds(150)) -> None:
        super().__init__(host, fabric, rng)
        if flowlet_timeout_ns <= 0:
            raise ValueError("flowlet timeout must be positive")
        self.flowlet_timeout_ns = flowlet_timeout_ns
        self._paths: Dict[int, int] = {}
        self.flowlets = 0

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        now = self.fabric.sim.now
        path = self._paths.get(flow.flow_id)
        if (
            path is None
            or now - flow.last_tx_time > self.flowlet_timeout_ns
            or (
                self.detector is not None
                and self.path_down(self.topology.leaf_of(flow.dst), path)
            )
        ):
            dst_leaf = self.topology.leaf_of(flow.dst)
            path = self.rng.choice(
                self.live_paths(dst_leaf, self.paths_to(flow.dst))
            )
            self._paths[flow.flow_id] = path
            self.flowlets += 1
            return self._note_path(flow, path)
        return path

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._paths.pop(flow.flow_id, None)
