"""CONGA: global congestion-aware flowlet switching at the leaf switch.

We reproduce the CONGA dataplane (Alizadeh et al., SIGCOMM 2014) in its
leaf-to-leaf form:

* every fabric port runs a DRE (exponentially decayed byte counter) and
  stamps the maximum quantized utilization seen along the forward path
  into the packet (done generically by :class:`repro.net.port.OutputPort`);
* the destination echoes the metric back (our per-packet ACKs play the
  role of CONGA's opportunistic piggybacking);
* the source **leaf** keeps a congestion-to-leaf table per (destination
  leaf, path), *aged out after 10 ms* — an entry with no feedback is
  assumed idle, which is precisely the stale-information flip-flop the
  paper's Fig. 4 demonstrates;
* on a flowlet boundary the flow moves to the path minimizing
  ``max(local uplink DRE, remote table entry)``.

The leaf-switch state is shared by all hosts of the rack — CONGA's
visibility advantage (paper Table 2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.lb.base import LoadBalancer
from repro.sim.engine import microseconds, milliseconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.transport.base import FlowBase


class CongaLeafState:
    """Per-leaf congestion-to-leaf table with aging."""

    def __init__(self, aging_ns: int = milliseconds(10)) -> None:
        self.aging_ns = aging_ns
        # (dst_leaf, path) -> [metric, updated_at]
        self.table: Dict[Tuple[int, int], List[int]] = {}

    def update(self, dst_leaf: int, path: int, metric: int, now: int) -> None:
        entry = self.table.get((dst_leaf, path))
        if entry is None:
            self.table[(dst_leaf, path)] = [metric, now]
        else:
            entry[0] = metric
            entry[1] = now

    def metric(self, dst_leaf: int, path: int, now: int) -> int:
        """Aged read: entries older than ``aging_ns`` read as 0 (idle) —
        the stale-information assumption CONGA actually makes."""
        entry = self.table.get((dst_leaf, path))
        if entry is None or now - entry[1] > self.aging_ns:
            return 0
        return entry[0]


class CongaLB(LoadBalancer):
    """CONGA agent — per-host front end over the shared leaf state."""

    name = "conga"
    granularity = "flowlet"

    def __init__(
        self,
        host,
        fabric: "Fabric",
        rng,
        leaf_state: CongaLeafState,
        flowlet_timeout_ns: int = microseconds(150),
    ) -> None:
        super().__init__(host, fabric, rng)
        if flowlet_timeout_ns <= 0:
            raise ValueError("flowlet timeout must be positive")
        self.leaf_state = leaf_state
        self.flowlet_timeout_ns = flowlet_timeout_ns
        self._paths: Dict[int, int] = {}
        self.flowlets = 0

    def _path_metric(self, dst_leaf: int, path: int, now: int) -> int:
        local = self.topology.leaf_up[self.host.leaf][path]
        local_metric = local.dre_quantized() if local is not None else 0
        remote = self.leaf_state.metric(dst_leaf, path, now)
        return local_metric if local_metric > remote else remote

    def _best_path(self, dst_leaf: int, now: int) -> int:
        paths = self.live_paths(
            dst_leaf, self.topology.paths(self.host.leaf, dst_leaf)
        )
        best: List[int] = []
        best_metric = 10**9
        for p in paths:
            metric = self._path_metric(dst_leaf, p, now)
            if metric < best_metric:
                best_metric = metric
                best = [p]
            elif metric == best_metric:
                best.append(p)
        return best[0] if len(best) == 1 else self.rng.choice(best)

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        now = self.fabric.sim.now
        path = self._paths.get(flow.flow_id)
        if (
            path is None
            or now - flow.last_tx_time > self.flowlet_timeout_ns
            or (
                self.detector is not None
                and self.path_down(self.topology.leaf_of(flow.dst), path)
            )
        ):
            path = self._best_path(self.topology.leaf_of(flow.dst), now)
            self._paths[flow.flow_id] = path
            self.flowlets += 1
            return self._note_path(flow, path)
        return path

    def on_path_feedback(self, flow: "FlowBase", path_id: int, metric: int) -> None:
        if path_id >= 0:
            self.leaf_state.update(
                self.topology.leaf_of(flow.dst), path_id, metric,
                self.fabric.sim.now,
            )

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._paths.pop(flow.flow_id, None)
