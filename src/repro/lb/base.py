"""Load balancer interface.

One agent instance runs per host (the paper's hypervisor module).  The
transport layer calls:

* :meth:`select_path` for **every** outgoing data packet — the agent
  returns the spine index to pin the packet to (packet granularity is
  what lets Hermes react timely; flow/flowlet schemes simply return the
  same path until their switching condition triggers);
* :meth:`on_ack` for every ACK — carrying the data packet's path, its
  ECN echo and the measured RTT (the piggybacked signals);
* :meth:`on_path_feedback` — the CONGA-style quantized utilization metric
  echoed by the receiver;
* :meth:`on_timeout` / :meth:`on_retransmit` — loss events, the signals
  Hermes uses to detect switch failures;
* :meth:`on_flow_done` when the flow completes.
"""

from __future__ import annotations

import random
from typing import Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.net.host import Host
    from repro.transport.base import FlowBase


class LoadBalancer:
    """Base agent: keeps topology handles, counts reroutes, does nothing."""

    name = "base"

    #: Decision granularity the scheme claims: ``"flow"`` (one path per
    #: flow unless rerouted), ``"flowlet"``/``"flowcell"`` (path changes
    #: at idle-gap/cell boundaries), or ``"packet"`` (every packet may
    #: take a different path).  The cross-scheme conformance suite turns
    #: this claim into reordering expectations.
    granularity = "flow"

    def __init__(self, host: "Host", fabric: "Fabric", rng: random.Random) -> None:
        self.host = host
        self.fabric = fabric
        self.topology = fabric.topology
        self.rng = rng
        self.reroutes = 0  # path changes of already-placed flows
        #: Optional failure detector (see :mod:`repro.detect`), shared
        #: per rack and bound by the factory when the experiment asks
        #: for one.  ``None`` — the default — costs each hook one
        #: ``is not None`` branch and nothing else.
        self.detector = None

    # -------------------------- helpers ------------------------------- #

    def paths_to(self, dst_host: int) -> Tuple[int, ...]:
        """Alive path ids from this host's leaf to the destination's."""
        return self.topology.paths(self.host.leaf, self.topology.leaf_of(dst_host))

    def live_paths(self, dst_leaf: int, paths: Tuple[int, ...]) -> Tuple[int, ...]:
        """``paths`` minus detector-DOWN entries (full set when no
        detector is configured, or when everything is down — a suspect
        path still beats no path)."""
        detector = self.detector
        if detector is None:
            return paths
        return detector.alive(dst_leaf, paths)

    def path_down(self, dst_leaf: int, path: int) -> bool:
        """Whether the configured detector has condemned ``path``."""
        detector = self.detector
        return detector is not None and path >= 0 and detector.is_failed(
            dst_leaf, path
        )

    def _note_path(self, flow: "FlowBase", path: int) -> int:
        """Record a path decision, counting reroutes of established flows."""
        if flow.current_path >= 0 and path != flow.current_path:
            self.reroutes += 1
        return path

    # -------------------------- interface ----------------------------- #

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        """Choose the spine for this packet.  Must be overridden."""
        raise NotImplementedError

    def on_ack(
        self,
        flow: "FlowBase",
        path_id: int,
        ece: bool,
        rtt_ns: int,
        is_retx: bool,
    ) -> None:
        """Piggybacked congestion signals (ECN echo + RTT) for a path.

        The default implementations of the three transport hooks feed
        the configured detector, so schemes that do not override them
        (ECMP, Presto, DRB, LetFlow, DRILL, CONGA) supply passive
        evidence for free; schemes that do override them feed the
        detector themselves.
        """
        detector = self.detector
        if detector is not None and path_id >= 0:
            detector.note_ok(self.topology.leaf_of(flow.dst), path_id)

    def on_path_feedback(self, flow: "FlowBase", path_id: int, metric: int) -> None:
        """CONGA-style utilization metric echoed by the far end."""

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        """The flow's RTO fired while pinned to ``path_id``."""
        detector = self.detector
        if detector is not None and path_id >= 0:
            detector.note_timeout(self.topology.leaf_of(flow.dst), path_id)

    def on_retransmit(self, flow: "FlowBase", path_id: int) -> None:
        """The flow retransmitted a segment on ``path_id``."""
        detector = self.detector
        if detector is not None and path_id >= 0:
            detector.note_retransmit(self.topology.leaf_of(flow.dst), path_id)

    def on_flow_done(self, flow: "FlowBase") -> None:
        """The flow completed; drop any per-flow state."""
