"""Load balancer interface.

One agent instance runs per host (the paper's hypervisor module).  The
transport layer calls:

* :meth:`select_path` for **every** outgoing data packet — the agent
  returns the spine index to pin the packet to (packet granularity is
  what lets Hermes react timely; flow/flowlet schemes simply return the
  same path until their switching condition triggers);
* :meth:`on_ack` for every ACK — carrying the data packet's path, its
  ECN echo and the measured RTT (the piggybacked signals);
* :meth:`on_path_feedback` — the CONGA-style quantized utilization metric
  echoed by the receiver;
* :meth:`on_timeout` / :meth:`on_retransmit` — loss events, the signals
  Hermes uses to detect switch failures;
* :meth:`on_flow_done` when the flow completes.
"""

from __future__ import annotations

import random
from typing import Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.net.host import Host
    from repro.transport.base import FlowBase


class LoadBalancer:
    """Base agent: keeps topology handles, counts reroutes, does nothing."""

    name = "base"

    #: Decision granularity the scheme claims: ``"flow"`` (one path per
    #: flow unless rerouted), ``"flowlet"``/``"flowcell"`` (path changes
    #: at idle-gap/cell boundaries), or ``"packet"`` (every packet may
    #: take a different path).  The cross-scheme conformance suite turns
    #: this claim into reordering expectations.
    granularity = "flow"

    def __init__(self, host: "Host", fabric: "Fabric", rng: random.Random) -> None:
        self.host = host
        self.fabric = fabric
        self.topology = fabric.topology
        self.rng = rng
        self.reroutes = 0  # path changes of already-placed flows

    # -------------------------- helpers ------------------------------- #

    def paths_to(self, dst_host: int) -> Tuple[int, ...]:
        """Alive path ids from this host's leaf to the destination's."""
        return self.topology.paths(self.host.leaf, self.topology.leaf_of(dst_host))

    def _note_path(self, flow: "FlowBase", path: int) -> int:
        """Record a path decision, counting reroutes of established flows."""
        if flow.current_path >= 0 and path != flow.current_path:
            self.reroutes += 1
        return path

    # -------------------------- interface ----------------------------- #

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        """Choose the spine for this packet.  Must be overridden."""
        raise NotImplementedError

    def on_ack(
        self,
        flow: "FlowBase",
        path_id: int,
        ece: bool,
        rtt_ns: int,
        is_retx: bool,
    ) -> None:
        """Piggybacked congestion signals (ECN echo + RTT) for a path."""

    def on_path_feedback(self, flow: "FlowBase", path_id: int, metric: int) -> None:
        """CONGA-style utilization metric echoed by the far end."""

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        """The flow's RTO fired while pinned to ``path_id``."""

    def on_retransmit(self, flow: "FlowBase", path_id: int) -> None:
        """The flow retransmitted a segment on ``path_id``."""

    def on_flow_done(self, flow: "FlowBase") -> None:
        """The flow completed; drop any per-flow state."""
