"""FlowBender: blind flow-level rerouting on end-host congestion signals.

Kabbani et al.'s scheme: a flow keeps its (hash-derived) path while the
fraction of ECN-marked ACKs per RTT stays below a threshold; when the
fraction exceeds it — or an RTO fires — the flow re-hashes to a random
different path.  Rerouting is *reactive and random*: no information about
the new path is used, which the paper identifies as the source of its
sub-optimal behaviour at high load.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.lb.base import LoadBalancer
from repro.sim.engine import microseconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase


class FlowBenderLB(LoadBalancer):
    """Per-flow random rerouting when the ECN fraction crosses a threshold."""

    name = "flowbender"
    granularity = "flow"

    def __init__(
        self,
        host,
        fabric,
        rng,
        ecn_threshold: float = 0.05,
        epoch_ns: int = microseconds(100),
    ) -> None:
        super().__init__(host, fabric, rng)
        if not 0.0 < ecn_threshold < 1.0:
            raise ValueError("ECN threshold must be in (0, 1)")
        self.ecn_threshold = ecn_threshold
        self.epoch_ns = epoch_ns
        # flow_id -> [path, epoch_start, acks, marked]
        self._state: Dict[int, List[int]] = {}

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        state = self._state.get(flow.flow_id)
        if state is None:
            dst_leaf = self.topology.leaf_of(flow.dst)
            path = self.rng.choice(
                self.live_paths(dst_leaf, self.paths_to(flow.dst))
            )
            self._state[flow.flow_id] = [path, self.fabric.sim.now, 0, 0]
            return self._note_path(flow, path)
        if self.detector is not None and self.path_down(
            self.topology.leaf_of(flow.dst), state[0]
        ):
            self._bounce(flow, state)
        return state[0]

    def _bounce(self, flow: "FlowBase", state: List[int]) -> None:
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = [
            p
            for p in self.live_paths(dst_leaf, self.paths_to(flow.dst))
            if p != state[0]
        ]
        if paths:
            state[0] = self.rng.choice(paths)
            self.reroutes += 1
        state[1] = self.fabric.sim.now
        state[2] = 0
        state[3] = 0

    def on_ack(self, flow: "FlowBase", path_id: int, ece: bool, rtt_ns: int,
               is_retx: bool) -> None:
        detector = self.detector
        if detector is not None and path_id >= 0:
            detector.note_ok(self.topology.leaf_of(flow.dst), path_id)
        state = self._state.get(flow.flow_id)
        if state is None:
            return
        state[2] += 1
        if ece:
            state[3] += 1
        now = self.fabric.sim.now
        if now - state[1] >= self.epoch_ns and state[2] > 0:
            if state[3] / state[2] > self.ecn_threshold:
                self._bounce(flow, state)
            else:
                state[1] = now
                state[2] = 0
                state[3] = 0

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        detector = self.detector
        if detector is not None and path_id >= 0:
            detector.note_timeout(self.topology.leaf_of(flow.dst), path_id)
        state = self._state.get(flow.flow_id)
        if state is not None:
            self._bounce(flow, state)

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._state.pop(flow.flow_id, None)
