"""DiffFlow: differentiated routing for short and long flows.

Carpio et al.'s scheme (arXiv 1604.05107): short flows — the vast
majority of datacenter flows, carrying a minority of the bytes — are
sprayed per packet (Random Packet Spraying) because their handful of
packets cannot build a queue and finish fastest on whatever capacity is
idle; long flows are pinned ECMP-style so their bulk bytes do not
reorder.  Classification is by *bytes sent so far* against a threshold
(the paper's switches count packets per flow for the same reason): every
flow starts life sprayed and graduates to a pinned path once it crosses
``threshold_bytes``, so no prior size knowledge is needed.

The threshold is configurable through ``ExperimentConfig.lb_params``
(``threshold_bytes``); the experiment runner scales its default by
``size_scale`` exactly like Hermes' ``S`` gate, so scaled runs keep the
paper's short/long boundary.

Failure awareness (``failure_aware=True``, our extension for the
Fig. 16/17 recovery comparison — the original design predates the fault
model): RTOs and retransmission bursts feed the shared
:class:`~repro.lb.failaware.LeafPathHealth` table; sprayed packets avoid
failed paths, and a pinned long flow whose path fails is re-pinned onto
a trusted one at its next packet.  With ``failure_aware=False`` the
scheme is exactly as published: blind to failures, like its ECMP long
half."""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

import zlib

from repro.lb.base import LoadBalancer
from repro.lb.failaware import LeafPathHealth

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase

#: Short/long boundary: 100 KB — the paper's (and the literature's)
#: usual mice/elephant cut, scaled by the runner on scaled runs.
DEFAULT_THRESHOLD_BYTES = 100_000


class DiffFlowLB(LoadBalancer):
    """Spray short flows per packet, pin long flows ECMP-style."""

    name = "diffflow"
    granularity = "packet"

    def __init__(
        self,
        host,
        fabric,
        rng,
        health: LeafPathHealth,
        threshold_bytes: int = DEFAULT_THRESHOLD_BYTES,
        failure_aware: bool = True,
    ) -> None:
        super().__init__(host, fabric, rng)
        if threshold_bytes < 1:
            raise ValueError("threshold_bytes must be >= 1")
        self.health = health
        self.threshold_bytes = threshold_bytes
        self.failure_aware = failure_aware
        #: flow_id -> pinned path of a graduated (long) flow.
        self._pinned: Dict[int, int] = {}
        #: flow_id -> pin evictions so far; salts the re-pin hash so a
        #: flow fleeing a failed path cannot deterministically re-hash
        #: onto the very path it just left.
        self._epoch: Dict[int, int] = {}
        self.sprayed_pkts = 0
        self.pinned_pkts = 0

    def _hash_path(self, flow: "FlowBase", paths) -> int:
        epoch = self._epoch.get(flow.flow_id, 0)
        digest = zlib.crc32(
            f"{flow.flow_id}:{flow.src}:{flow.dst}:{epoch}".encode("ascii")
        )
        return paths[digest % len(paths)]

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = self.topology.paths(self.host.leaf, dst_leaf)
        if flow.bytes_sent < self.threshold_bytes:
            # Short (so far): random packet spraying over trusted paths.
            self.sprayed_pkts += 1
            candidates = (
                self.health.alive(dst_leaf, paths)
                if self.failure_aware
                else paths
            )
            return self._note_path(flow, self.rng.choice(candidates))
        # Long: ECMP-style pin, kept until failure evicts it.
        self.pinned_pkts += 1
        path = self._pinned.get(flow.flow_id)
        if path is not None and path not in paths:
            path = None  # pinned path was cut from under the flow
        if (
            path is not None
            and self.failure_aware
            and self.health.is_failed(dst_leaf, path)
        ):
            path = None
        if path is None:
            if flow.flow_id in self._pinned:
                # Evicting an established pin: bump the hash salt.
                self._epoch[flow.flow_id] = (
                    self._epoch.get(flow.flow_id, 0) + 1
                )
            candidates = (
                self.health.alive(dst_leaf, paths)
                if self.failure_aware
                else paths
            )
            path = self._hash_path(flow, candidates)
            self._pinned[flow.flow_id] = path
            return self._note_path(flow, path)
        return path

    def on_ack(self, flow: "FlowBase", path_id: int, ece: bool, rtt_ns: int,
               is_retx: bool) -> None:
        if not self.failure_aware:
            return
        # A completed round trip is proof the path is alive.
        self.health.note_ok(self.topology.leaf_of(flow.dst), path_id)

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        if not self.failure_aware or path_id < 0:
            return
        self.health.note_timeout(self.topology.leaf_of(flow.dst), path_id)
        # A pinned flow stalled on its path: re-pin at the next packet.
        if self._pinned.get(flow.flow_id) == path_id:
            del self._pinned[flow.flow_id]
            self._epoch[flow.flow_id] = self._epoch.get(flow.flow_id, 0) + 1

    def on_retransmit(self, flow: "FlowBase", path_id: int) -> None:
        if not self.failure_aware or path_id < 0:
            return
        self.health.note_retransmit(self.topology.leaf_of(flow.dst), path_id)

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._pinned.pop(flow.flow_id, None)
        self._epoch.pop(flow.flow_id, None)


def install_diffflow(
    fabric,
    hold_ns: int = None,
    retx_threshold: int = None,
    retx_window_ns: int = None,
    leaf_health=None,
    **params,
):
    """Install DiffFlow on every host with one health table per rack.

    ``leaf_health`` substitutes pre-built per-leaf health objects (a
    configured :mod:`repro.detect` detector) for the built-in tables.
    """
    if leaf_health is not None:
        leaf_states = leaf_health
    else:
        health_kwargs = {
            k: v
            for k, v in (
                ("hold_ns", hold_ns),
                ("retx_threshold", retx_threshold),
                ("retx_window_ns", retx_window_ns),
            )
            if v is not None
        }
        leaf_states = {
            leaf: LeafPathHealth(fabric, leaf, **health_kwargs)
            for leaf in range(fabric.config.n_leaves)
        }
    for host in fabric.hosts:
        host.lb = DiffFlowLB(
            host,
            fabric,
            fabric.rng.spawn("diffflow", host.host_id),
            leaf_states[host.leaf],
            **params,
        )
    return {"leaf_states": leaf_states}
