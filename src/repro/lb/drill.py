"""DRILL: per-packet micro load balancing on local queue state.

Ghorbani et al.'s switch-local scheme: for every packet, sample two
random output queues plus the previously best one and send the packet to
the shortest.  Only the *local* leaf uplink queues are consulted — DRILL
has no view of downstream (spine→leaf) congestion, so it misbalances
under asymmetry and, like the other baselines, cannot detect failures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lb.base import LoadBalancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase


class DrillLB(LoadBalancer):
    """Power-of-two-choices over local uplink queue occupancy, per packet."""

    name = "drill"
    granularity = "packet"

    def __init__(self, host, fabric, rng, samples: int = 2) -> None:
        super().__init__(host, fabric, rng)
        if samples < 1:
            raise ValueError("need at least one random sample")
        self.samples = samples
        self._best: dict[int, int] = {}  # dst_leaf -> last winning path

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = self.live_paths(dst_leaf, self.topology.paths(self.host.leaf, dst_leaf))
        k = min(self.samples, len(paths))
        candidates = set(self.rng.sample(paths, k))
        previous_best = self._best.get(dst_leaf)
        if previous_best is not None and previous_best in paths:
            candidates.add(previous_best)
        uplinks = self.topology.leaf_up[self.host.leaf]
        best = min(candidates, key=lambda p: uplinks[p].backlog_bytes)
        self._best[dst_leaf] = best
        return self._note_path(flow, best)
