"""Presto* and DRB: congestion-oblivious round-robin spraying.

Presto sprays fixed-size *flowcells* (64 KB) round-robin across paths;
DRB sprays individual packets.  Following the paper's methodology, the
evaluation variant Presto* is paired with a receiver-side reordering
buffer (``reorder_mask_ns`` on the flow) so its results isolate
congestion mismatch from reordering artifacts.

Under asymmetry the paper assigns Presto* static topology-dependent
weights to equalize average path load; ``weight_by_capacity=True``
reproduces that: each path is weighted by the bottleneck capacity of its
(leaf→spine, spine→leaf) link pair.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.lb.base import LoadBalancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase

FLOWCELL_BYTES = 64 * 1024


class PrestoLB(LoadBalancer):
    """Per-flowcell round-robin spraying with optional static weights."""

    name = "presto"
    granularity = "flowcell"

    def __init__(self, host, fabric, rng, flowcell_bytes: int = FLOWCELL_BYTES,
                 weight_by_capacity: bool = False) -> None:
        super().__init__(host, fabric, rng)
        if flowcell_bytes < 1:
            raise ValueError("flowcell size must be >= 1 byte")
        self.flowcell_bytes = flowcell_bytes
        self.weight_by_capacity = weight_by_capacity
        # Per destination leaf: the weighted path cycle and a shared cursor
        # (hosts spread flows across the cycle instead of synchronizing).
        self._cycles: Dict[int, List[int]] = {}
        self._cursor: Dict[int, int] = {}
        # Per flow: bytes left in the current cell and the cell's path.
        self._cell: Dict[int, List[int]] = {}

    def _cycle_for(self, dst_leaf: int) -> List[int]:
        cycle = self._cycles.get(dst_leaf)
        if cycle is not None:
            return cycle
        paths = self.topology.paths(self.host.leaf, dst_leaf)
        if not self.weight_by_capacity:
            cycle = list(paths)
        else:
            cfg = self.topology.config
            rates = {
                p: min(
                    cfg.link_rate_gbps(self.host.leaf, p),
                    cfg.link_rate_gbps(dst_leaf, p),
                )
                for p in paths
            }
            unit = min(rates.values())
            cycle = []
            for p in paths:
                cycle.extend([p] * max(1, int(round(rates[p] / unit))))
        self._cycles[dst_leaf] = cycle
        self._cursor[dst_leaf] = self.rng.randrange(len(cycle))
        return cycle

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        dst_leaf = self.topology.leaf_of(flow.dst)
        cycle = self._cycle_for(dst_leaf)
        cell = self._cell.get(flow.flow_id)
        detector = self.detector
        if cell is not None and cell[0] > 0 and detector is not None:
            # A condemned path ends the cell early; the flow falls
            # through to pick a fresh one from the cycle.
            if detector.is_failed(dst_leaf, cell[1]):
                cell = None
        if cell is None or cell[0] <= 0:
            cursor = self._cursor[dst_leaf]
            path = cycle[cursor]
            cursor = (cursor + 1) % len(cycle)
            if detector is not None and detector.is_failed(dst_leaf, path):
                # Advance past DOWN entries (at most one lap; if the
                # whole cycle is condemned, keep the original pick).
                for _ in range(len(cycle) - 1):
                    candidate = cycle[cursor]
                    cursor = (cursor + 1) % len(cycle)
                    if not detector.is_failed(dst_leaf, candidate):
                        path = candidate
                        break
            self._cursor[dst_leaf] = cursor
            self._cell[flow.flow_id] = [self.flowcell_bytes - wire_bytes, path]
            return self._note_path(flow, path)
        cell[0] -= wire_bytes
        return cell[1]

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._cell.pop(flow.flow_id, None)


class DrbLB(PrestoLB):
    """DRB: per-packet round-robin — Presto with a one-byte flowcell."""

    name = "drb"
    granularity = "packet"

    def __init__(self, host, fabric, rng, weight_by_capacity: bool = False) -> None:
        super().__init__(
            host, fabric, rng, flowcell_bytes=1,
            weight_by_capacity=weight_by_capacity,
        )
