"""Load-balancer factory: build and install agents on every host.

``install_lb(fabric, "hermes", rng)`` wires up the whole scheme: per-host
agents, shared per-leaf state where the scheme needs it (CONGA tables,
Hermes path tables), and auxiliary machinery (Hermes probe agents).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.lb.base import LoadBalancer
from repro.lb.clove import CloveEcnLB
from repro.lb.conga import CongaLB, CongaLeafState
from repro.lb.diffflow import DiffFlowLB, install_diffflow
from repro.lb.drill import DrillLB
from repro.lb.ecmp import EcmpLB
from repro.lb.flowbender import FlowBenderLB
from repro.lb.letflow import LetFlowLB
from repro.lb.presto import DrbLB, PrestoLB
from repro.lb.rdna import RdnaBalanceLB, install_rdna
from repro.lb.reps import RepsLB, install_reps
from repro.net.fabric import Fabric
from repro.sim.engine import microseconds


def _install_simple(cls: type) -> Callable[..., Dict[str, Any]]:
    def installer(fabric: Fabric, **params: Any) -> Dict[str, Any]:
        for host in fabric.hosts:
            host.lb = cls(
                host, fabric, fabric.rng.spawn(cls.name, host.host_id), **params
            )
        return {}

    return installer


def _install_conga(fabric: Fabric, **params: Any) -> Dict[str, Any]:
    aging_ns = params.pop("aging_ns", None)
    leaf_states = {
        leaf: CongaLeafState(**({"aging_ns": aging_ns} if aging_ns else {}))
        for leaf in range(fabric.config.n_leaves)
    }
    for host in fabric.hosts:
        host.lb = CongaLB(
            host,
            fabric,
            fabric.rng.spawn("conga", host.host_id),
            leaf_states[host.leaf],
            **params,
        )
    return {"leaf_states": leaf_states}


def _install_hermes(fabric: Fabric, **params: Any) -> Dict[str, Any]:
    # Imported lazily: repro.core.hermes itself depends on repro.lb.base,
    # and a module-level import here would close that cycle.
    from repro.core.hermes import HermesLB
    from repro.core.parameters import HermesParams
    from repro.core.probing import HermesProber, install_probe_loss_accounting
    from repro.core.sensing import HermesLeafState

    hermes_params: HermesParams = params.pop("params", HermesParams())
    hermes_params = hermes_params.resolve(fabric.config)
    leaf_states = {
        leaf: HermesLeafState(fabric, leaf, hermes_params)
        for leaf in range(fabric.config.n_leaves)
    }
    probers = {}
    for leaf, state in leaf_states.items():
        prober = HermesProber(
            fabric, leaf, state, hermes_params, fabric.rng.spawn("probe", leaf)
        )
        prober.start()
        probers[leaf] = prober
    install_probe_loss_accounting(fabric, probers)
    for host in fabric.hosts:
        host.lb = HermesLB(
            host,
            fabric,
            fabric.rng.spawn("hermes", host.host_id),
            leaf_states[host.leaf],
            hermes_params,
        )
    return {
        "leaf_states": leaf_states,
        "probers": probers,
        "params": hermes_params,
    }


#: scheme name -> installer(fabric, **params) -> shared-state dict
LB_REGISTRY: Dict[str, Callable[..., Dict[str, Any]]] = {
    "ecmp": _install_simple(EcmpLB),
    "presto": _install_simple(PrestoLB),
    "drb": _install_simple(DrbLB),
    "letflow": _install_simple(LetFlowLB),
    "clove-ecn": _install_simple(CloveEcnLB),
    "drill": _install_simple(DrillLB),
    "flowbender": _install_simple(FlowBenderLB),
    "conga": _install_conga,
    "hermes": _install_hermes,
    "reps": install_reps,
    "diffflow": install_diffflow,
    "rdna": install_rdna,
}

#: Agent class behind each registry name (the conformance suite reads
#: declared ``granularity`` off these without building a fabric).
LB_CLASSES: Dict[str, type] = {
    "ecmp": EcmpLB,
    "presto": PrestoLB,
    "drb": DrbLB,
    "letflow": LetFlowLB,
    "clove-ecn": CloveEcnLB,
    "drill": DrillLB,
    "flowbender": FlowBenderLB,
    "conga": CongaLB,
    "reps": RepsLB,
    "diffflow": DiffFlowLB,
    "rdna": RdnaBalanceLB,
}


def scheme_names() -> Tuple[str, ...]:
    """Every registered scheme, alphabetically — the single source of
    truth for CLI help strings, chaos draws, and coverage assertions."""
    return tuple(sorted(LB_REGISTRY))


#: Schemes that spray *blindly* per packet and therefore reorder by
#: design; harnesses give their receivers a reordering mask so dup-ACK
#: retransmits reflect loss, not spraying.  (DRILL and Hermes also
#: decide per packet but steer toward one good path rather than spraying
#: across all of them, so they stay maskless like the paper's setups.)
SPRAYING_SCHEMES: Tuple[str, ...] = ("diffflow", "drb", "presto", "reps")


def spraying_schemes() -> Tuple[str, ...]:
    """The blind per-packet sprayers (alphabetical)."""
    return SPRAYING_SCHEMES


#: Schemes whose agents consume a per-leaf health table directly; a
#: configured detector *replaces* that table (drop-in superset) instead
#: of riding alongside it.
_HEALTH_TABLE_SCHEMES: Tuple[str, ...] = ("reps", "diffflow", "rdna")


def install_lb(fabric: Fabric, name: str, **params: Any) -> Dict[str, Any]:
    """Install scheme ``name`` on every host of ``fabric``.

    Returns the scheme's shared state (empty for stateless schemes) so
    harnesses can inspect probers, tables, detection counters, etc.

    ``detector`` (a :mod:`repro.detect` spec string or parsed spec) and
    ``detector_time_scale`` are understood for every scheme: the factory
    builds one detector per leaf, binds it to each agent's ``detector``
    slot, substitutes it for the zoo's health tables, publishes the map
    as ``shared["detectors"]`` and starts active detectors last — after
    any scheme machinery (the Hermes prober) has claimed its probe sink,
    so reply demultiplexing chains instead of clobbering.
    """
    try:
        installer = LB_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(LB_REGISTRY))
        raise ValueError(f"unknown load balancer {name!r}; known: {known}") from None
    detector_spec = params.pop("detector", None)
    detector_time_scale = params.pop("detector_time_scale", 1.0)
    if detector_spec is None:
        return installer(fabric, **params)
    # Imported lazily: repro.detect pulls in implementation modules that
    # themselves import from repro.lb.
    from repro.detect import build_leaf_detectors

    detectors = None
    if name in _HEALTH_TABLE_SCHEMES:
        detectors = build_leaf_detectors(
            fabric, detector_spec, time_scale=detector_time_scale
        )
        params["leaf_health"] = detectors
    shared = installer(fabric, **params)
    if detectors is None:
        # Built after the installer ran (see docstring: sink chaining).
        detectors = build_leaf_detectors(
            fabric, detector_spec, time_scale=detector_time_scale
        )
    for host in fabric.hosts:
        agent = host.lb
        if agent is not None:
            agent.detector = detectors[host.leaf]
    shared = dict(shared)
    shared["detectors"] = detectors
    for det in detectors.values():
        det.start()
    return shared


def make_lb(fabric: Fabric, name: str, host_id: int, **params: Any) -> LoadBalancer:
    """Build a single agent (convenience for unit tests)."""
    install_lb(fabric, name, **params)
    agent = fabric.hosts[host_id].lb
    if agent is None:
        # Typed instead of a bare assert: survives python -O and names
        # the actual wiring failure.
        from repro.validate.errors import InstallError

        raise InstallError(
            f"installer for {name!r} left host {host_id} without an agent"
        )
    return agent
