"""CLOVE-ECN: edge-based flowlet switching with ECN-derived path weights.

Katta et al.'s readily-deployable edge scheme: the source hypervisor
splits flows into flowlets and picks paths by weighted round-robin, where
a path's weight decays every time an ECN-marked ACK returns over it (the
weight is redistributed to the other paths).  Visibility is limited to
what the flows themselves piggyback — no probing — which is the
shortcoming Hermes' active probing addresses.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.lb.base import LoadBalancer
from repro.sim.engine import microseconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase

MIN_WEIGHT = 0.02


class CloveEcnLB(LoadBalancer):
    """Per-flowlet weighted round-robin with multiplicative ECN decrease."""

    name = "clove-ecn"
    granularity = "flowlet"

    def __init__(
        self,
        host,
        fabric,
        rng,
        flowlet_timeout_ns: int = microseconds(150),
        beta: float = 0.25,
    ) -> None:
        super().__init__(host, fabric, rng)
        if flowlet_timeout_ns <= 0:
            raise ValueError("flowlet timeout must be positive")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.flowlet_timeout_ns = flowlet_timeout_ns
        self.beta = beta
        self._weights: Dict[int, Dict[int, float]] = {}  # dst_leaf -> path -> w
        self._paths: Dict[int, int] = {}
        self.flowlets = 0

    def _weights_for(self, dst_leaf: int) -> Dict[int, float]:
        weights = self._weights.get(dst_leaf)
        if weights is None:
            paths = self.topology.paths(self.host.leaf, dst_leaf)
            weights = {p: 1.0 / len(paths) for p in paths}
            self._weights[dst_leaf] = weights
        return weights

    def _weighted_pick(self, dst_leaf: int, weights: Dict[int, float]) -> int:
        detector = self.detector
        if detector is not None:
            live = {
                p: w
                for p, w in weights.items()
                if not detector.is_failed(dst_leaf, p)
            }
            if live:
                weights = live
        total = sum(weights.values())
        mark = self.rng.random() * total
        acc = 0.0
        for path, weight in weights.items():
            acc += weight
            if mark <= acc:
                return path
        return next(reversed(weights))  # floating-point slack

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        now = self.fabric.sim.now
        path = self._paths.get(flow.flow_id)
        if (
            path is None
            or now - flow.last_tx_time > self.flowlet_timeout_ns
            or (
                self.detector is not None
                and self.path_down(self.topology.leaf_of(flow.dst), path)
            )
        ):
            dst_leaf = self.topology.leaf_of(flow.dst)
            path = self._weighted_pick(dst_leaf, self._weights_for(dst_leaf))
            self._paths[flow.flow_id] = path
            self.flowlets += 1
            return self._note_path(flow, path)
        return path

    def on_ack(self, flow: "FlowBase", path_id: int, ece: bool, rtt_ns: int,
               is_retx: bool) -> None:
        detector = self.detector
        if detector is not None and path_id >= 0:
            detector.note_ok(self.topology.leaf_of(flow.dst), path_id)
        if not ece or path_id < 0:
            return
        weights = self._weights_for(self.topology.leaf_of(flow.dst))
        if len(weights) < 2 or path_id not in weights:
            return
        # Move beta of the marked path's weight to the others, evenly.
        delta = weights[path_id] * self.beta
        floor_delta = weights[path_id] - MIN_WEIGHT
        delta = max(0.0, min(delta, floor_delta))
        if delta <= 0.0:
            return
        weights[path_id] -= delta
        share = delta / (len(weights) - 1)
        for p in weights:
            if p != path_id:
                weights[p] += share

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._paths.pop(flow.flow_id, None)
