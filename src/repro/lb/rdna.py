"""RDNA Balance: elephant isolation via strict source routing.

Valentim et al.'s scheme (arXiv 1904.05664): in an RDNA fabric every
packet carries its full path stamped at the edge (strict source
routing), which makes moving a flow a pure edge decision — exactly the
XPath-style source-stamped paths this simulator already uses
(``packet.path_id`` pins the spine at the sender).  The controller
detects **elephant flows** and isolates each on its own lightly-loaded
path, away from the mice and from each other, so a single elephant can
no longer fill the queue every short flow must cross.

Our reproduction keeps the split edge/controller roles:

* mice use plain ECMP hashing (the fabric's default routing);
* a flow that has sent more than ``elephant_threshold_bytes`` is
  reported to the rack-shared :class:`RdnaLeafState`, which assigns it
  the path currently carrying the fewest elephants (ties break on the
  lowest path id — deterministic) and tracks the assignment until the
  flow completes;
* failure awareness rides the shared
  :class:`~repro.lb.failaware.LeafPathHealth` table: a failed path's
  elephants are re-placed on the healthiest least-loaded path and mice
  re-hash off it, giving the scheme a finite Fig. 16-style recovery
  where plain ECMP strands its flows.

The threshold is configurable via ``ExperimentConfig.lb_params``
(``elephant_threshold_bytes``) and the runner scales its default by
``size_scale``."""

from __future__ import annotations

from typing import Dict, Tuple, TYPE_CHECKING

import zlib

from repro.lb.base import LoadBalancer
from repro.lb.failaware import LeafPathHealth

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase

#: Elephant boundary: 1 MB sent, scaled by the runner on scaled runs.
DEFAULT_ELEPHANT_THRESHOLD_BYTES = 1_000_000


class RdnaLeafState:
    """Rack-shared elephant registry: who is isolated where.

    The per-path elephant counts are the scheme's balancing signal; the
    registry is deliberately ignorant of byte rates — RDNA Balance
    spreads elephants by *count*, trusting isolation to do the rest.
    """

    def __init__(self, health: LeafPathHealth) -> None:
        self.health = health
        #: flow_id -> (dst_leaf, path) of an isolated elephant.
        self.assignments: Dict[int, Tuple[int, int]] = {}
        #: (dst_leaf, path) -> number of elephants isolated on it.
        self.elephants_on: Dict[Tuple[int, int], int] = {}
        self.elephants_seen = 0
        self.replacements = 0

    #: The runner's detection metric reads ``detection_times`` off every
    #: object in ``shared["leaf_states"]``; forward to the health table.
    @property
    def detection_times(self):
        return self.health.detection_times

    def _least_loaded(self, dst_leaf: int, paths: Tuple[int, ...]) -> int:
        candidates = self.health.alive(dst_leaf, paths)
        return min(
            candidates,
            key=lambda p: (self.elephants_on.get((dst_leaf, p), 0), p),
        )

    def place(self, flow_id: int, dst_leaf: int, paths: Tuple[int, ...]) -> int:
        """Isolate a newly detected elephant on the emptiest path."""
        path = self._least_loaded(dst_leaf, paths)
        self.assignments[flow_id] = (dst_leaf, path)
        self.elephants_on[(dst_leaf, path)] = (
            self.elephants_on.get((dst_leaf, path), 0) + 1
        )
        self.elephants_seen += 1
        return path

    def replace(self, flow_id: int, dst_leaf: int, paths: Tuple[int, ...]) -> int:
        """Move an elephant whose path failed (or was cut) elsewhere."""
        old = self.assignments.get(flow_id)
        self.release(flow_id)
        if old is not None and len(paths) > 1:
            # Never re-place onto the path being fled, even when the
            # health table's never-strand fallback offers the full set.
            paths = tuple(p for p in paths if p != old[1]) or paths
        path = self.place(flow_id, dst_leaf, paths)
        self.elephants_seen -= 1  # a move is not a new elephant
        self.replacements += 1
        return path

    def release(self, flow_id: int) -> None:
        assignment = self.assignments.pop(flow_id, None)
        if assignment is not None:
            remaining = self.elephants_on.get(assignment, 0) - 1
            if remaining > 0:
                self.elephants_on[assignment] = remaining
            else:
                self.elephants_on.pop(assignment, None)


class RdnaBalanceLB(LoadBalancer):
    """ECMP for mice, per-elephant isolated source-routed paths."""

    name = "rdna"
    granularity = "flow"

    def __init__(
        self,
        host,
        fabric,
        rng,
        registry: RdnaLeafState,
        elephant_threshold_bytes: int = DEFAULT_ELEPHANT_THRESHOLD_BYTES,
    ) -> None:
        super().__init__(host, fabric, rng)
        if elephant_threshold_bytes < 1:
            raise ValueError("elephant_threshold_bytes must be >= 1")
        self.registry = registry
        self.health = registry.health
        self.elephant_threshold_bytes = elephant_threshold_bytes
        #: flow_id -> hashed mouse path (dropped on failure to re-hash).
        self._mouse_path: Dict[int, int] = {}
        #: flow_id -> re-hash count; salts the mouse hash so fleeing a
        #: failed path cannot deterministically re-select it.
        self._epoch: Dict[int, int] = {}

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = self.topology.paths(self.host.leaf, dst_leaf)
        registry = self.registry
        assignment = registry.assignments.get(flow.flow_id)
        if assignment is not None:
            path = assignment[1]
            if path in paths and not self.health.is_failed(dst_leaf, path):
                return path
            # Isolated path died under the elephant: controller re-places.
            path = registry.replace(flow.flow_id, dst_leaf, paths)
            return self._note_path(flow, path)
        if flow.bytes_sent >= self.elephant_threshold_bytes:
            # Mouse just graduated: detect + isolate.
            self._mouse_path.pop(flow.flow_id, None)
            path = registry.place(flow.flow_id, dst_leaf, paths)
            return self._note_path(flow, path)
        # Mouse: static ECMP hash, re-hashed only off failed/cut paths.
        path = self._mouse_path.get(flow.flow_id)
        if (
            path is None
            or path not in paths
            or self.health.is_failed(dst_leaf, path)
        ):
            if path is not None:
                self._epoch[flow.flow_id] = (
                    self._epoch.get(flow.flow_id, 0) + 1
                )
            candidates = self.health.alive(dst_leaf, paths)
            if path is not None and len(candidates) > 1:
                candidates = tuple(
                    p for p in candidates if p != path
                ) or candidates
            epoch = self._epoch.get(flow.flow_id, 0)
            digest = zlib.crc32(
                f"{flow.flow_id}:{flow.src}:{flow.dst}:{epoch}".encode("ascii")
            )
            path = candidates[digest % len(candidates)]
            self._mouse_path[flow.flow_id] = path
            return self._note_path(flow, path)
        return path

    def on_ack(self, flow: "FlowBase", path_id: int, ece: bool, rtt_ns: int,
               is_retx: bool) -> None:
        # A completed round trip is proof the path is alive.
        self.health.note_ok(self.topology.leaf_of(flow.dst), path_id)

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        if path_id < 0:
            return
        self.health.note_timeout(self.topology.leaf_of(flow.dst), path_id)

    def on_retransmit(self, flow: "FlowBase", path_id: int) -> None:
        if path_id < 0:
            return
        self.health.note_retransmit(self.topology.leaf_of(flow.dst), path_id)

    def on_flow_done(self, flow: "FlowBase") -> None:
        self.registry.release(flow.flow_id)
        self._mouse_path.pop(flow.flow_id, None)
        self._epoch.pop(flow.flow_id, None)


def install_rdna(
    fabric,
    hold_ns: int = None,
    retx_threshold: int = None,
    retx_window_ns: int = None,
    leaf_health=None,
    **params,
):
    """Install RDNA Balance with one registry + health table per rack.

    ``leaf_health`` substitutes pre-built per-leaf health objects (a
    configured :mod:`repro.detect` detector) for the built-in tables;
    each still gets wrapped in the rack's :class:`RdnaLeafState`.
    """
    if leaf_health is not None:
        leaf_states = {
            leaf: RdnaLeafState(health) for leaf, health in leaf_health.items()
        }
    else:
        health_kwargs = {
            k: v
            for k, v in (
                ("hold_ns", hold_ns),
                ("retx_threshold", retx_threshold),
                ("retx_window_ns", retx_window_ns),
            )
            if v is not None
        }
        leaf_states = {
            leaf: RdnaLeafState(LeafPathHealth(fabric, leaf, **health_kwargs))
            for leaf in range(fabric.config.n_leaves)
        }
    for host in fabric.hosts:
        host.lb = RdnaBalanceLB(
            host,
            fabric,
            fabric.rng.spawn("rdna", host.host_id),
            leaf_states[host.leaf],
            **params,
        )
    return {"leaf_states": leaf_states}
