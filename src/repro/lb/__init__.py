"""Load balancers: the paper's baselines plus Hermes (in ``repro.core``)
and the post-2017 failure-aware zoo (REPS, DiffFlow, RDNA Balance).

Every scheme implements the :class:`~repro.lb.base.LoadBalancer`
interface.  Edge-based schemes (ECMP, Presto*, DRB, CLOVE-ECN,
FlowBender, Hermes, REPS, DiffFlow, RDNA Balance) keep per-host state;
switch-based schemes (CONGA, LetFlow, DRILL) share their leaf switch's
state between all hosts of the rack, which is exactly the visibility
advantage the paper's Table 2 quantifies.  The zoo schemes additionally
share a per-rack :class:`~repro.lb.failaware.LeafPathHealth` failure
table so the recovery-timeline metrics read detection times uniformly.
"""

from repro.lb.base import LoadBalancer
from repro.lb.ecmp import EcmpLB
from repro.lb.presto import PrestoLB, DrbLB
from repro.lb.letflow import LetFlowLB
from repro.lb.conga import CongaLB, CongaLeafState
from repro.lb.clove import CloveEcnLB
from repro.lb.drill import DrillLB
from repro.lb.flowbender import FlowBenderLB
from repro.lb.failaware import LeafPathHealth
from repro.lb.reps import RepsLB
from repro.lb.diffflow import DiffFlowLB
from repro.lb.rdna import RdnaBalanceLB, RdnaLeafState
from repro.lb.factory import (
    LB_CLASSES,
    LB_REGISTRY,
    SPRAYING_SCHEMES,
    install_lb,
    make_lb,
    scheme_names,
    spraying_schemes,
)

__all__ = [
    "LoadBalancer",
    "EcmpLB",
    "PrestoLB",
    "DrbLB",
    "LetFlowLB",
    "CongaLB",
    "CongaLeafState",
    "CloveEcnLB",
    "DrillLB",
    "FlowBenderLB",
    "LeafPathHealth",
    "RepsLB",
    "DiffFlowLB",
    "RdnaBalanceLB",
    "RdnaLeafState",
    "make_lb",
    "install_lb",
    "LB_REGISTRY",
    "LB_CLASSES",
    "SPRAYING_SCHEMES",
    "scheme_names",
    "spraying_schemes",
]
