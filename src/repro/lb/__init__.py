"""Load balancers: the paper's baselines plus Hermes (in ``repro.core``).

Every scheme implements the :class:`~repro.lb.base.LoadBalancer`
interface.  Edge-based schemes (ECMP, Presto*, DRB, CLOVE-ECN,
FlowBender, Hermes) keep per-host state; switch-based schemes (CONGA,
LetFlow, DRILL) share their leaf switch's state between all hosts of the
rack, which is exactly the visibility advantage the paper's Table 2
quantifies.
"""

from repro.lb.base import LoadBalancer
from repro.lb.ecmp import EcmpLB
from repro.lb.presto import PrestoLB, DrbLB
from repro.lb.letflow import LetFlowLB
from repro.lb.conga import CongaLB, CongaLeafState
from repro.lb.clove import CloveEcnLB
from repro.lb.drill import DrillLB
from repro.lb.flowbender import FlowBenderLB
from repro.lb.factory import make_lb, install_lb, LB_REGISTRY

__all__ = [
    "LoadBalancer",
    "EcmpLB",
    "PrestoLB",
    "DrbLB",
    "LetFlowLB",
    "CongaLB",
    "CongaLeafState",
    "CloveEcnLB",
    "DrillLB",
    "FlowBenderLB",
    "make_lb",
    "install_lb",
    "LB_REGISTRY",
]
