"""Shared per-rack failure memory for the failure-aware scheme zoo.

REPS, DiffFlow and RDNA Balance all need the same minimal sensing
surface Hermes builds from transport signals (§3.1.2): *which paths are
currently suspect* and *when each suspicion was first raised*.  None of
them needs Algorithm 1's full ECN/RTT characterization, so instead of
dragging a resolved :class:`~repro.core.parameters.HermesParams` through
every installer they share this stripped-down table.

One :class:`LeafPathHealth` instance is shared by every hypervisor under
a rack (the same rack-level aggregation the Hermes probe agents use) and
is returned in the installer's ``shared["leaf_states"]`` mapping, so the
experiment runner's detection-latency metric — which reads
``detection_times`` off whatever the scheme published there — works for
the whole zoo without scheme-specific plumbing.

Signals in, verdicts out:

* :meth:`note_timeout` — an RTO on a path is treated as hard evidence
  and fails the path immediately for ``hold_ns`` (transport timeouts are
  the strongest end-host failure signal the paper identifies);
* :meth:`note_retransmit` — retransmissions only fail a path after
  ``retx_threshold`` of them accumulate inside one ``retx_window_ns``
  window (congestion and reordering also retransmit; a genuinely lossy
  link hits the threshold quickly, noise does not);
* :meth:`note_ok` — a completed round trip is proof of life: it clears
  the path's retransmission window and lifts a standing failure verdict
  early.  This is the false-positive bound that keeps the threshold
  signals honest — Hermes gets the same property by requiring *zero*
  ACKs alongside its timeout count (§3.1.2); a congested-but-alive path
  keeps delivering ACKs and therefore can never stay failed;
* :meth:`is_failed` / :meth:`alive` — the read side.  ``alive`` never
  returns an empty tuple: when *every* path to a destination is suspect
  the caller gets the full set back, because sending into a suspected
  path beats stranding the flow with no path at all.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.sim.engine import milliseconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

#: How long a detected path stays failed (matches Hermes'
#: ``failure_hold_ns`` so zoo detection timelines are comparable).
DEFAULT_HOLD_NS = milliseconds(50)

#: Retransmissions within one window that fail a path.
DEFAULT_RETX_THRESHOLD = 10

#: Width of the retransmission-counting window (matches the Hermes
#: τ-sweep period).
DEFAULT_RETX_WINDOW_NS = milliseconds(10)


class LeafPathHealth:
    """Per-rack path-failure table shared by the zoo schemes.

    Args:
        fabric: the network (for the clock).
        leaf: which rack this table belongs to.
        hold_ns: how long a detection keeps a path failed.
        retx_threshold: retransmissions inside one window that fail a
            path (timeouts always fail it immediately).
        retx_window_ns: the retransmission-counting window.
    """

    def __init__(
        self,
        fabric: "Fabric",
        leaf: int,
        hold_ns: int = DEFAULT_HOLD_NS,
        retx_threshold: int = DEFAULT_RETX_THRESHOLD,
        retx_window_ns: int = DEFAULT_RETX_WINDOW_NS,
    ) -> None:
        if hold_ns <= 0:
            raise ValueError("hold_ns must be positive")
        if retx_threshold < 1:
            raise ValueError("retx_threshold must be >= 1")
        if retx_window_ns <= 0:
            raise ValueError("retx_window_ns must be positive")
        self.fabric = fabric
        self.sim = fabric.sim
        self.leaf = leaf
        self.hold_ns = hold_ns
        self.retx_threshold = retx_threshold
        self.retx_window_ns = retx_window_ns
        #: (dst_leaf, path) -> failed-until time (ns).
        self._failed_until: Dict[Tuple[int, int], int] = {}
        #: (dst_leaf, path) -> [window_start_ns, retx_count].
        self._retx: Dict[Tuple[int, int], List[int]] = {}
        #: Simulation times at which a path was *newly* detected failed —
        #: the runner's detection-latency metric reads this.
        self.detection_times: List[int] = []
        self.failed_detections = 0
        #: Verdicts lifted early by a proof-of-life ACK (false alarms).
        self.false_alarms = 0

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    def is_failed(self, dst_leaf: int, path: int) -> bool:
        return self.sim.now < self._failed_until.get((dst_leaf, path), -1)

    def alive(self, dst_leaf: int, paths: Tuple[int, ...]) -> Tuple[int, ...]:
        """The subset of ``paths`` not currently failed; falls back to
        the full set when everything is suspect (never strand a flow)."""
        live = tuple(p for p in paths if not self.is_failed(dst_leaf, p))
        return live if live else paths

    # ------------------------------------------------------------------ #
    # Signal ingestion
    # ------------------------------------------------------------------ #

    def mark_failed(self, dst_leaf: int, path: int) -> bool:
        """Fail a path for ``hold_ns`` from now.

        Returns ``True`` for a *new* detection (the path was healthy);
        re-marking an already-failed path only extends the hold and does
        not inflate the detection timeline.
        """
        key = (dst_leaf, path)
        now = self.sim.now
        fresh = now >= self._failed_until.get(key, -1)
        self._failed_until[key] = now + self.hold_ns
        if fresh:
            self.failed_detections += 1
            self.detection_times.append(now)
            self._retx.pop(key, None)
        return fresh

    def note_timeout(self, dst_leaf: int, path: int) -> bool:
        """An RTO fired on the path: hard evidence, fail it now."""
        if path < 0:
            return False
        return self.mark_failed(dst_leaf, path)

    def note_ok(self, dst_leaf: int, path: int) -> None:
        """A round trip completed on the path: clear its retransmission
        window, and lift a standing failure verdict — the ACK is proof
        the path is alive, so the verdict was a false alarm."""
        if path < 0:
            return
        key = (dst_leaf, path)
        self._retx.pop(key, None)
        if self.sim.now < self._failed_until.get(key, -1):
            del self._failed_until[key]
            self.false_alarms += 1

    def note_retransmit(self, dst_leaf: int, path: int) -> bool:
        """A retransmission implicated the path: fail it only once
        ``retx_threshold`` of them land inside one window."""
        if path < 0 or self.is_failed(dst_leaf, path):
            return False
        key = (dst_leaf, path)
        now = self.sim.now
        window = self._retx.get(key)
        if window is None or now - window[0] > self.retx_window_ns:
            window = [now, 0]
            self._retx[key] = window
        window[1] += 1
        if window[1] >= self.retx_threshold:
            return self.mark_failed(dst_leaf, path)
        return False
