"""repro — reproduction of "Resilient Datacenter Load Balancing in the
Wild" (Hermes, SIGCOMM 2017).

A packet-level discrete-event datacenter simulator plus the Hermes load
balancer and every baseline the paper compares against.  The stable
public surface lives in :mod:`repro.api` (re-exported here).  Quick
start::

    from repro.api import ExperimentConfig, run_experiment, bench_topology

    result = run_experiment(
        ExperimentConfig(
            topology=bench_topology(),
            lb="hermes",
            workload="web-search",
            load=0.5,
            n_flows=200,
            size_scale=0.1,
        )
    )
    print(result.mean_fct_ms, "ms")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.api import (
    ResultSummary,
    load_result,
    run_grid,
    save_result,
)
from repro.core import HermesParams, HermesLB, probe_overhead_model
from repro.hooks import HookSet
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    FailureSpec,
    run_experiment,
    format_table,
    testbed_topology,
    simulation_topology,
    bench_topology,
    asymmetric_overrides,
)
from repro.lb import LB_REGISTRY, install_lb
from repro.metrics import FctStats, FlowRecord
from repro.net import Fabric, TopologyConfig
from repro.sim import Simulator, RngStreams
from repro.workload import WEB_SEARCH, DATA_MINING, FlowGenerator
from repro.workload.patterns import incast, permutation, staggered_elephants
from repro.core.tuning import tune_hermes, TuningOutcome
from repro.experiments.export import write_flow_csv, write_summary_json, summary_dict

__version__ = "1.0.0"

__all__ = [
    "HermesParams",
    "HermesLB",
    "probe_overhead_model",
    "ExperimentConfig",
    "ExperimentResult",
    "FailureSpec",
    "run_experiment",
    "run_grid",
    "ResultSummary",
    "save_result",
    "load_result",
    "HookSet",
    "format_table",
    "testbed_topology",
    "simulation_topology",
    "bench_topology",
    "asymmetric_overrides",
    "LB_REGISTRY",
    "install_lb",
    "FctStats",
    "FlowRecord",
    "Fabric",
    "TopologyConfig",
    "Simulator",
    "RngStreams",
    "WEB_SEARCH",
    "DATA_MINING",
    "FlowGenerator",
    "incast",
    "permutation",
    "staggered_elephants",
    "tune_hermes",
    "TuningOutcome",
    "write_flow_csv",
    "write_summary_json",
    "summary_dict",
    "__version__",
]
