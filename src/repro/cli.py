"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro run --lb hermes --workload web-search --load 0.6
    python -m repro compare --schemes ecmp,conga,hermes --asymmetric
    python -m repro probe-model --leaves 100 --spines 100
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.probing import probe_overhead_model
from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.parallel import (
    ResultCache,
    ResultSummary,
    run_cells,
)
from repro.experiments.report import format_table
from repro.lb.factory import SPRAYING_SCHEMES, scheme_names
from repro.experiments.scenarios import (
    bench_topology,
    failure_bench_topology,
    simulation_topology,
    testbed_topology,
)

TOPOLOGIES = {
    "bench": bench_topology,
    "testbed": testbed_topology,
    "simulation": simulation_topology,
    "failure-bench": lambda asymmetric=False: failure_bench_topology(),
}

#: Topology builders that accept a rack-size override.
_SIZED_TOPOLOGIES = {"bench": bench_topology,
                     "failure-bench": failure_bench_topology}


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _common_parser() -> argparse.ArgumentParser:
    """The flags every subcommand shares, as one argparse parent.

    ``repro run/compare/chaos/golden/trace/cache`` all accept these; each
    subcommand consumes what applies to it (e.g. ``--trace`` is implied
    by ``trace run``, and ``cache`` uses none of the run-shape flags).
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scheduler",
                        choices=["heap", "wheel", "wheel:auto"],
                        default=None,
                        help="event-queue engine (default: the config's, "
                             "normally wheel; results are bit-identical "
                             "across all engines; wheel:auto derives the "
                             "slot geometry from the topology; "
                             "$REPRO_SCHEDULER overrides everything)")
    common.add_argument("--jobs", type=_positive_int, default=None,
                        help="worker processes for multi-cell runs "
                             "(default: $REPRO_JOBS, else all cores); "
                             "1 = in-process")
    common.add_argument("--shards", type=_positive_int, default=None,
                        help="spatially partition each run into this many "
                             "leaf-group shards (repro.shard), one worker "
                             "each, synchronized by conservative lookahead; "
                             "results are bit-identical to --shards 1")
    common.add_argument("--validate", action="store_true",
                        help="run under the repro.validate invariant "
                             "layer (conservation, FIFO, clock, ECN, "
                             "path-state checks)")
    common.add_argument("--trace", action="store_true",
                        help="attach the repro.telemetry layer "
                             "(structured tracer, decision audit, loop "
                             "profiler) to every run")
    common.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")
    return common


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment-shape flags (what to run; the shared parent carries
    how to run it)."""
    parser.add_argument("--topology", choices=sorted(TOPOLOGIES), default="bench")
    parser.add_argument("--asymmetric", action="store_true")
    parser.add_argument("--hosts-per-leaf", type=_positive_int, default=None,
                        metavar="N",
                        help="override the rack size of the bench / "
                             "failure-bench topologies")
    parser.add_argument("--workload", default="web-search",
                        choices=["web-search", "data-mining"])
    parser.add_argument("--load", type=float, default=0.6)
    parser.add_argument("--flows", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--size-scale", type=float, default=0.2)
    parser.add_argument("--time-scale", type=float, default=None,
                        help="defaults to --size-scale")
    parser.add_argument("--transport", choices=["dctcp", "tcp"], default="dctcp")
    parser.add_argument("--failure", choices=["random_drop", "blackhole"],
                        default=None)
    parser.add_argument("--drop-rate", type=float, default=0.02)
    parser.add_argument("--faults", default=None, metavar="SCHEDULE",
                        help="time-scheduled fault plane, e.g. "
                             "'link_down@5ms:leaf=0,spine=1; "
                             "link_up@20ms:leaf=0,spine=1' or "
                             "'flap@2ms:leaf=0,spine=0,period=4ms,"
                             "duty=0.5,until=30ms' (times in ns/us/ms/s)")
    parser.add_argument("--detector", default=None, metavar="SPEC",
                        help="failure-detection plane (repro.detect), "
                             "e.g. 'transport', 'bfd:tx=100us,mult=3', "
                             "'breaker:threshold=0.5,open=50ms', "
                             "'quorum:transport+bfd' or "
                             "'fastest:transport+bfd'")
    parser.add_argument("--drain-ms", type=float, default=None,
                        help="cap the post-arrival drain (default 2000); "
                             "Fig. 16-style runs cap it so flows a "
                             "failure-blind scheme strands register as "
                             "unrecovered instead of limping home")


def _apply_common(config: ExperimentConfig, args) -> ExperimentConfig:
    """Overlay the shared flags (--scheduler/--validate/--trace) onto a
    config, e.g. one loaded from ``--config file.json``."""
    import dataclasses

    updates = {}
    if getattr(args, "scheduler", None):
        updates["scheduler"] = args.scheduler
    if getattr(args, "shards", None):
        updates["shards"] = args.shards
    if getattr(args, "validate", False):
        updates["validate"] = True
    if getattr(args, "trace", False):
        updates["trace"] = True
    return dataclasses.replace(config, **updates) if updates else config


def _config_from_args(args, lb: str) -> ExperimentConfig:
    if getattr(args, "config", None):
        # --config FILE is the full experiment spec (the to_dict()
        # round-trip); shape flags are ignored, shared flags overlay.
        import json

        with open(args.config) as fh:
            loaded = ExperimentConfig.from_dict(json.load(fh))
        return _apply_common(loaded, args)
    hosts_per_leaf = getattr(args, "hosts_per_leaf", None)
    if hosts_per_leaf is not None:
        builder = _SIZED_TOPOLOGIES.get(args.topology)
        if builder is None:
            raise ValueError(
                f"--hosts-per-leaf is not supported for "
                f"topology {args.topology!r}"
            )
        if args.topology == "bench":
            topology = builder(asymmetric=args.asymmetric,
                               hosts_per_leaf=hosts_per_leaf)
        else:
            topology = builder(hosts_per_leaf=hosts_per_leaf)
    else:
        topology = TOPOLOGIES[args.topology](asymmetric=args.asymmetric)
    failure = None
    if args.failure:
        failure = FailureSpec(kind=args.failure, spine=0,
                              drop_rate=args.drop_rate)
    faults = None
    if getattr(args, "faults", None):
        from repro.faults import parse_schedule

        faults = parse_schedule(args.faults)
    time_scale = args.time_scale if args.time_scale is not None else args.size_scale
    extra = {}
    if lb in SPRAYING_SCHEMES:
        extra["reorder_mask_us"] = (
            800.0 if topology.host_link_gbps <= 2.0 else 100.0
        )
    if getattr(args, "drain_ms", None) is not None:
        from repro.sim.engine import milliseconds

        extra["extra_drain_ns"] = milliseconds(args.drain_ms)
    config = ExperimentConfig(
        topology=topology,
        lb=lb,
        transport=args.transport,
        workload=args.workload,
        load=args.load,
        n_flows=args.flows,
        seed=args.seed,
        size_scale=args.size_scale,
        time_scale=time_scale,
        failure=failure,
        faults=faults,
        detector=getattr(args, "detector", None),
        **extra,
    )
    return _apply_common(config, args)


def _result_row(lb: str, result: ResultSummary) -> List:
    stats = result.stats
    return [
        lb,
        result.mean_fct_ms,
        stats.small.mean_ms(),
        stats.small.p99_ms(),
        stats.large.mean_ms(),
        stats.unfinished_count,
        result.total_reroutes,
    ]


RESULT_HEADERS = [
    "scheme", "avg FCT (ms)", "small avg", "small p99", "large avg",
    "unfinished", "reroutes",
]

FAULT_HEADERS = ["scheme", "detect (ms)", "recover (ms)", "unrecovered"]


def _fault_ms(value_ns: Optional[int]) -> str:
    return "-" if value_ns is None else f"{value_ns / 1e6:.3f}"


def _print_fault_report(pairs: List) -> None:
    """Detection/recovery table + fault timeline for faulted runs."""
    rows = [
        [lb, _fault_ms(r.detection_ns), _fault_ms(r.recovery_ns),
         r.unrecovered_timeouts]
        for lb, r in pairs
    ]
    print("\nfault plane:")
    print(format_table(FAULT_HEADERS, rows))
    timeline = pairs[0][1].fault_timeline
    if timeline:
        print("\nfault timeline:")
        for event in timeline:
            print(
                f"  t={event['t'] / 1e6:10.3f}ms  {event['action']:<18}"
                f"{event['target']:<22}{event['phase']}"
            )


def _print_cell_errors(pairs: List) -> int:
    """Report failed cells (timeout / crashed worker) on stderr."""
    failed = [(lb, r.error) for lb, r in pairs if r.error is not None]
    for lb, reason in failed:
        print(f"warning: cell '{lb}' failed: {reason}", file=sys.stderr)
    return len(failed)


def cmd_run(args) -> int:
    config = _config_from_args(args, args.lb)
    result = run_cells(
        [config],
        jobs=1,
        use_cache=False if args.no_cache else None,
    )[0]
    lb = config.lb  # may come from --config, not --lb
    print(format_table(RESULT_HEADERS, [_result_row(lb, result)]))
    if result.fault_timeline:
        _print_fault_report([(lb, result)])
    if _print_cell_errors([(lb, result)]):
        return 1
    return 0


def cmd_compare(args) -> int:
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not schemes:
        print("no schemes given", file=sys.stderr)
        return 2
    configs = [_config_from_args(args, lb) for lb in schemes]
    results = run_cells(
        configs, jobs=args.jobs, use_cache=False if args.no_cache else None
    )
    rows = [
        _result_row(lb, result) for lb, result in zip(schemes, results)
    ]
    print(format_table(RESULT_HEADERS, rows))
    if any(r.fault_timeline for r in results):
        _print_fault_report(list(zip(schemes, results)))
    if _print_cell_errors(list(zip(schemes, results))):
        return 1
    return 0


def _parse_bytes(value: str) -> int:
    """'500M', '2G', '100k', '12345' -> bytes."""
    units = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
    text = value.strip().lower().rstrip("b")
    factor = 1
    if text and text[-1] in units:
        factor = units[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{value!r} is not a size (try 12345, 500M, 2G)"
        ) from None


def _parse_age(value: str) -> float:
    """'30d', '12h', '15m', '90s', '3600' -> seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    text = value.strip().lower()
    factor = 1.0
    if text and text[-1] in units:
        factor = units[text[-1]]
        text = text[:-1]
    try:
        return float(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{value!r} is not an age (try 3600, 90s, 12h, 30d)"
        ) from None


def cmd_cache(args) -> int:
    cache = ResultCache()
    if getattr(args, "action", None) == "prune":
        if args.max_bytes is None and args.max_age is None:
            print(
                "error: prune needs --max-bytes and/or --max-age",
                file=sys.stderr,
            )
            return 2
        removed, reclaimed = cache.prune(
            max_bytes=args.max_bytes, max_age_s=args.max_age
        )
        print(
            f"pruned {removed} entries, reclaimed {reclaimed} bytes "
            f"({reclaimed / 1024**2:.1f} MiB); "
            f"{cache.size()} entries ({cache.total_bytes()} bytes) remain"
        )
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.directory}")
    else:
        print(f"cache dir:   {cache.directory}")
        print(f"entries:     {cache.size()}")
        print(f"size:        {cache.total_bytes()} bytes")
        print(f"corruptions: {cache.corruption_count()} (healed)")
    return 0


def cmd_chaos(args) -> int:
    from repro.validate.fuzz import chaos_command, run_case, run_sweep, shrink_case

    with_faults = True if getattr(args, "faults", False) else None
    if args.seed is not None:
        # Single-case replay: the command every violation fingerprint
        # points back to.
        case = run_case(
            args.seed,
            raise_error=not args.shrink,
            with_faults=with_faults,
            scheduler=args.scheduler,
        )
        if case.ok:
            inv = case.invariants or {}
            print(
                f"seed {args.seed}: OK — {case.config.lb}/"
                f"{case.config.transport}, {case.events} events, "
                f"{inv.get('packets_sent', 0)} packets, "
                f"{inv.get('marks_checked', 0)} marks checked"
            )
            return 0
        print(f"seed {args.seed}: VIOLATION\n{case.error}", file=sys.stderr)
        if args.shrink:
            shrunk = shrink_case(case.config)
            print(
                f"\nshrunk after {shrunk.attempts} runs to:\n"
                f"{shrunk.config!r}\n{shrunk.error}",
                file=sys.stderr,
            )
        return 1

    seeds = range(args.base_seed, args.base_seed + args.cases)
    results = run_sweep(
        seeds, with_faults=with_faults, scheduler=args.scheduler
    )
    failures = [case for case in results if not case.ok]
    rows = [
        [
            case.seed,
            case.config.lb,
            case.config.failure.kind if case.config.failure else "-",
            (
                case.config.faults.events[0].action
                if case.config.faults
                else "-"
            ),
            case.events,
            "VIOLATION" if not case.ok else "ok",
        ]
        for case in results
    ]
    print(format_table(
        ["seed", "scheme", "failure", "faults", "events", "verdict"], rows
    ))
    if failures:
        for case in failures:
            print(f"\n{case.error}", file=sys.stderr)
            print(f"replay: {chaos_command(case.seed)}", file=sys.stderr)
        return 1
    print(f"\n{len(results)} cases, all invariants held")
    return 0


def cmd_golden(args) -> int:
    from repro.validate import golden

    path = args.path or golden.DEFAULT_PATH
    actual = golden.compute_reference(
        scheduler=args.scheduler,
        detector=getattr(args, "detector", None),
        shards=getattr(args, "shards", None),
    )
    if args.refresh:
        golden.write_reference(actual, path)
        print(f"golden reference written to {path}")
        return 0
    expected = golden.load_reference(path)
    if expected is None:
        print(
            f"no golden reference at {path}; create one with "
            "python -m repro golden --refresh",
            file=sys.stderr,
        )
        return 2
    mismatches = golden.compare_reference(expected, actual)
    if mismatches:
        print("golden grid drifted:", file=sys.stderr)
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
        print(
            "if the change is intentional: python -m repro golden --refresh",
            file=sys.stderr,
        )
        return 1
    print(f"golden grid matches {path} ({len(actual['cells'])} cells)")
    return 0


def cmd_trace_run(args) -> int:
    """Run one cell with the telemetry layer on and write a trace dir."""
    import dataclasses
    import json
    import os

    from repro.experiments.runner import run_experiment
    from repro.telemetry.export import write_jsonl, write_perfetto

    config = dataclasses.replace(
        _config_from_args(args, args.lb), trace=True
    )
    result = run_experiment(config)
    telemetry = result.telemetry
    os.makedirs(args.out, exist_ok=True)
    n_events = write_jsonl(
        os.path.join(args.out, "events.jsonl"), telemetry.tracer.iter_dicts()
    )
    n_audit = write_jsonl(
        os.path.join(args.out, "audit.jsonl"), telemetry.audit.iter_dicts()
    )
    meta = {
        "lb": config.lb,
        "workload": config.workload,
        "load": config.load,
        "n_flows": config.n_flows,
        "seed": config.seed,
        "sim_time_ns": result.sim_time_ns,
        "events_fired": result.events,
    }
    n_trace = write_perfetto(
        os.path.join(args.out, "perfetto.json"),
        telemetry.tracer.iter_dicts(),
        telemetry.audit.iter_dicts(),
        series=telemetry.counter_series(),
        meta=meta,
    )
    with open(os.path.join(args.out, "summary.json"), "w") as fh:
        json.dump(
            {"run": meta, "telemetry": telemetry.summary()}, fh, indent=2
        )
        fh.write("\n")
    print(format_table(RESULT_HEADERS, [_result_row(args.lb, result)]))
    print(
        f"\ntrace dir: {args.out}\n"
        f"  events.jsonl   {n_events} records\n"
        f"  audit.jsonl    {n_audit} records\n"
        f"  perfetto.json  {n_trace} trace events "
        "(load at https://ui.perfetto.dev)\n"
        f"  summary.json"
    )
    if args.flow is not None:
        print(f"\ndecision history for flow {args.flow}:")
        for line in telemetry.audit.explain_flow(args.flow):
            print(f"  {line}")
    return 0


def cmd_trace_summarize(args) -> int:
    """Aggregate a trace directory written by ``trace run``."""
    import json
    import os

    from repro.telemetry.export import (
        explain_flow,
        read_jsonl,
        summarize_audit,
        summarize_events,
    )

    events_path = os.path.join(args.dir, "events.jsonl")
    audit_path = os.path.join(args.dir, "audit.jsonl")
    if not os.path.exists(events_path):
        print(f"no events.jsonl under {args.dir}", file=sys.stderr)
        return 2
    report = {"events": summarize_events(read_jsonl(events_path))}
    if os.path.exists(audit_path):
        report["audit"] = summarize_audit(read_jsonl(audit_path))
    print(json.dumps(report, indent=2))
    if args.flow is not None:
        if not os.path.exists(audit_path):
            print(f"no audit.jsonl under {args.dir}", file=sys.stderr)
            return 2
        print(f"\ndecision history for flow {args.flow}:")
        for line in explain_flow(read_jsonl(audit_path), args.flow):
            print(f"  {line}")
    return 0


def cmd_trace_export(args) -> int:
    """Re-export a trace directory as Perfetto JSON or CSV."""
    import os

    from repro.telemetry.export import read_jsonl, write_csv, write_perfetto

    events_path = os.path.join(args.dir, "events.jsonl")
    audit_path = os.path.join(args.dir, "audit.jsonl")
    if not os.path.exists(events_path):
        print(f"no events.jsonl under {args.dir}", file=sys.stderr)
        return 2
    if args.format == "perfetto":
        out = args.out or os.path.join(args.dir, "perfetto.json")
        audit = (
            read_jsonl(audit_path) if os.path.exists(audit_path) else ()
        )
        count = write_perfetto(out, read_jsonl(events_path), audit)
        print(f"{out}: {count} trace events")
    else:
        out = args.out or os.path.join(args.dir, "events.csv")
        count = write_csv(out, read_jsonl(events_path))
        print(f"{out}: {count} rows")
    return 0


def cmd_serve(args) -> int:
    """Run the always-on experiment service until interrupted."""
    from repro.serve import serve

    service = serve(
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        use_cache=False if args.no_cache else None,
        default_cell_timeout_s=args.cell_timeout,
    )
    host, port = service.http_address
    print(f"repro service on http://{host}:{port}")
    print(
        f"  workers={args.workers} queue_capacity={args.queue_capacity}\n"
        "  POST /submit   GET /jobs /status/<id> /result/<id>\n"
        "  GET  /healthz  /metrics   /events (SSE)\n"
        "Ctrl-C to stop."
    )
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping...")
        service.stop()
    return 0


def cmd_submit(args) -> int:
    """Build a grid from the run flags and submit it to a service."""
    from repro.serve import BackpressureError, ServiceClient

    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not schemes:
        print("no schemes given", file=sys.stderr)
        return 2
    configs = [_config_from_args(args, lb) for lb in schemes]
    client = ServiceClient(args.url)
    try:
        job = client.submit(
            configs,
            priority=args.priority,
            jobs_per_cell=args.jobs,
            cell_timeout_s=args.cell_timeout,
        )
    except BackpressureError as exc:
        print(f"rejected (backpressure): {exc.message}", file=sys.stderr)
        return 3
    job_id = job["job_id"]
    dedup = " (deduplicated)" if job.get("deduplicated") else ""
    print(f"submitted {job_id}{dedup}: {len(configs)} cells")
    if args.no_wait:
        return 0
    status = client.wait(job_id, timeout_s=args.timeout)
    if status["state"] != "done":
        print(
            f"{job_id}: {status['state']}"
            + (f" — {status['error']}" if status.get("error") else ""),
            file=sys.stderr,
        )
        return 1
    cells = client.result(job_id)["cells"]
    rows = []
    for lb, cell in zip(schemes, cells):
        fct = cell["fct_ms"]
        rows.append([
            lb,
            fct["mean"],
            fct["small_mean"],
            fct["small_p99"],
            fct["large_mean"],
            cell["flows"]["unfinished"],
            cell["run"]["reroutes"],
        ])
    print(format_table(RESULT_HEADERS, rows))
    return 0


def cmd_jobs(args) -> int:
    """List a service's jobs (or one job's status / event stream)."""
    from repro.serve import ServiceClient

    client = ServiceClient(args.url)
    if args.watch:
        for event in client.events(job_id=args.watch, timeout_s=args.timeout):
            print(
                f"{event.get('kind', 'event'):<10} "
                f"{event.get('event', event.get('state', '')):<10} "
                + ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(event.items())
                    if k not in ("kind", "event")
                )
            )
        return 0
    if args.job:
        import json

        print(json.dumps(client.status(args.job), indent=2, sort_keys=True))
        return 0
    rows = [
        [
            j["job_id"],
            j["state"],
            j["cells"],
            j["priority"],
            j["error"] or "-",
        ]
        for j in client.jobs()
    ]
    print(format_table(["job", "state", "cells", "priority", "error"], rows))
    return 0


def cmd_probe_model(args) -> int:
    model = probe_overhead_model(
        n_leaves=args.leaves,
        n_spines=args.spines,
        hosts_per_leaf=args.hosts_per_leaf,
        link_gbps=args.link_gbps,
        probe_interval_us=args.interval_us,
    )
    rows = [
        [name, vals["visibility"], vals["overhead"]]
        for name, vals in model.items()
    ]
    print(format_table(["scheme", "visibility", "overhead (x capacity)"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hermes (SIGCOMM 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parser()

    run_parser = sub.add_parser("run", help="run one experiment",
                                parents=[common])
    run_parser.add_argument("--lb", default="hermes", metavar="SCHEME",
                            help="load-balancing scheme (default: hermes; "
                                 "one of: " + ", ".join(scheme_names()) + ")")
    run_parser.add_argument("--config", default=None, metavar="FILE",
                            help="load the full experiment spec from a "
                                 "JSON file (ExperimentConfig.to_dict "
                                 "format); shape flags are ignored, "
                                 "shared flags still apply")
    _add_run_arguments(run_parser)
    run_parser.set_defaults(fn=cmd_run)

    compare_parser = sub.add_parser("compare", help="race several schemes",
                                    parents=[common])
    compare_parser.add_argument("--schemes", default="ecmp,conga,hermes",
                                help="comma-separated schemes to race "
                                     "(default: ecmp,conga,hermes; known: "
                                     + ", ".join(scheme_names()) + ")")
    _add_run_arguments(compare_parser)
    compare_parser.set_defaults(fn=cmd_compare)

    probe_parser = sub.add_parser(
        "probe-model", help="Table 6 probing overhead model"
    )
    probe_parser.add_argument("--leaves", type=int, default=100)
    probe_parser.add_argument("--spines", type=int, default=100)
    probe_parser.add_argument("--hosts-per-leaf", type=int, default=100)
    probe_parser.add_argument("--link-gbps", type=float, default=10.0)
    probe_parser.add_argument("--interval-us", type=float, default=500.0)
    probe_parser.set_defaults(fn=cmd_probe_model)

    cache_parser = sub.add_parser(
        "cache", help="inspect, clear or prune the experiment result cache",
        parents=[common],
    )
    cache_parser.add_argument("action", nargs="?", choices=["prune"],
                              default=None,
                              help="'prune' garbage-collects by size/age "
                                   "(requires --max-bytes and/or --max-age)")
    cache_parser.add_argument("--clear", action="store_true",
                              help="delete all cached results")
    cache_parser.add_argument("--max-bytes", type=_parse_bytes, default=None,
                              metavar="SIZE",
                              help="prune oldest entries until the cache "
                                   "fits (e.g. 500M, 2G)")
    cache_parser.add_argument("--max-age", type=_parse_age, default=None,
                              metavar="AGE",
                              help="prune entries older than this "
                                   "(e.g. 12h, 30d, 3600)")
    cache_parser.set_defaults(fn=cmd_cache)

    serve_parser = sub.add_parser(
        "serve", help="run the always-on experiment service (HTTP + SSE)",
        parents=[common],
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument("--workers", type=_positive_int, default=2,
                              help="concurrent jobs (each fans its cells "
                                   "out over processes; default 2)")
    serve_parser.add_argument("--queue-capacity", type=_positive_int,
                              default=64,
                              help="queued-job bound; submissions past it "
                                   "are rejected with backpressure")
    serve_parser.add_argument("--cell-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="default per-cell budget for jobs that "
                                   "set none")
    serve_parser.set_defaults(fn=cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a scheme grid to a running service",
        parents=[common],
    )
    submit_parser.add_argument("--url", default="http://127.0.0.1:8642",
                               help="service base URL")
    submit_parser.add_argument("--schemes", default="ecmp,conga,hermes",
                               help="comma-separated schemes (known: "
                                    + ", ".join(scheme_names()) + ")")
    submit_parser.add_argument("--priority", type=int, default=0,
                               help="higher runs first")
    submit_parser.add_argument("--cell-timeout", type=float, default=None,
                               metavar="SECONDS",
                               help="per-cell budget for this job")
    submit_parser.add_argument("--no-wait", action="store_true",
                               help="return after enqueueing instead of "
                                    "waiting for the results table")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="wait budget in seconds")
    _add_run_arguments(submit_parser)
    submit_parser.set_defaults(fn=cmd_submit)

    jobs_parser = sub.add_parser(
        "jobs", help="list a service's jobs, or watch one via SSE",
        parents=[common],
    )
    jobs_parser.add_argument("--url", default="http://127.0.0.1:8642",
                             help="service base URL")
    jobs_parser.add_argument("--job", default=None, metavar="JOB_ID",
                             help="show one job's status JSON")
    jobs_parser.add_argument("--watch", default=None, metavar="JOB_ID",
                             help="stream one job's events (SSE) until it "
                                  "finishes")
    jobs_parser.add_argument("--timeout", type=float, default=600.0,
                             help="SSE read budget in seconds")
    jobs_parser.set_defaults(fn=cmd_jobs)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run seeded chaos scenarios under full invariant checking",
        parents=[common],
    )
    chaos_parser.add_argument("--seed", type=int, default=None,
                              help="replay a single case by seed")
    chaos_parser.add_argument("--cases", type=_positive_int, default=50,
                              help="number of cases in sweep mode")
    chaos_parser.add_argument("--base-seed", type=int, default=1,
                              help="first seed of the sweep")
    chaos_parser.add_argument("--shrink", action="store_true",
                              help="on violation, shrink to a minimal "
                                   "failing config")
    chaos_parser.add_argument("--faults", action="store_true",
                              help="attach a randomized time-scheduled "
                                   "fault schedule to every case")
    chaos_parser.set_defaults(fn=cmd_chaos)

    golden_parser = sub.add_parser(
        "golden",
        help="check (or refresh) the golden reference-grid statistics",
        parents=[common],
    )
    golden_parser.add_argument("--refresh", action="store_true",
                               help="recompute and overwrite the "
                                    "committed reference")
    golden_parser.add_argument("--path", default=None,
                               help="reference JSON location (default: "
                                    "tests/golden/reference_grid.json)")
    golden_parser.add_argument("--detector", default=None, metavar="SPEC",
                               help="attach a repro.detect spec to every "
                                    "cell; passive detectors (transport, "
                                    "breaker) must reproduce the committed "
                                    "reference bit-for-bit")
    golden_parser.set_defaults(fn=cmd_golden)

    trace_parser = sub.add_parser(
        "trace",
        help="run with the telemetry layer and inspect/export the trace",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    trace_run = trace_sub.add_parser(
        "run", help="run one cell with tracing on, write a trace directory",
        parents=[common],
    )
    trace_run.add_argument("--lb", default="hermes", metavar="SCHEME",
                           help="load-balancing scheme (default: hermes; "
                                "one of: " + ", ".join(scheme_names()) + ")")
    _add_run_arguments(trace_run)
    trace_run.add_argument("--out", default="trace-out",
                           help="trace directory (created if missing)")
    trace_run.add_argument("--flow", type=int, default=None,
                           help="also print this flow's decision history")
    trace_run.set_defaults(fn=cmd_trace_run)

    trace_summarize = trace_sub.add_parser(
        "summarize", help="aggregate an existing trace directory",
        parents=[common],
    )
    trace_summarize.add_argument("--dir", default="trace-out")
    trace_summarize.add_argument("--flow", type=int, default=None,
                                 help="print this flow's decision history")
    trace_summarize.set_defaults(fn=cmd_trace_summarize)

    trace_export = trace_sub.add_parser(
        "export", help="re-export a trace directory (perfetto or csv)",
        parents=[common],
    )
    trace_export.add_argument("--dir", default="trace-out")
    trace_export.add_argument("--format", choices=["perfetto", "csv"],
                              default="perfetto")
    trace_export.add_argument("--out", default=None,
                              help="output file (default: inside --dir)")
    trace_export.set_defaults(fn=cmd_trace_export)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as exc:
        # Bad knob values (e.g. a garbage REPRO_JOBS) get a clean
        # one-line error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
