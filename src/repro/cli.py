"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro run --lb hermes --workload web-search --load 0.6
    python -m repro compare --schemes ecmp,conga,hermes --asymmetric
    python -m repro probe-model --leaves 100 --spines 100
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.probing import probe_overhead_model
from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.parallel import (
    ResultCache,
    ResultSummary,
    run_cells,
)
from repro.experiments.report import format_table
from repro.experiments.scenarios import (
    bench_topology,
    failure_bench_topology,
    simulation_topology,
    testbed_topology,
)

TOPOLOGIES = {
    "bench": bench_topology,
    "testbed": testbed_topology,
    "simulation": simulation_topology,
    "failure-bench": lambda asymmetric=False: failure_bench_topology(),
}


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", choices=sorted(TOPOLOGIES), default="bench")
    parser.add_argument("--asymmetric", action="store_true")
    parser.add_argument("--workload", default="web-search",
                        choices=["web-search", "data-mining"])
    parser.add_argument("--load", type=float, default=0.6)
    parser.add_argument("--flows", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--size-scale", type=float, default=0.2)
    parser.add_argument("--time-scale", type=float, default=None,
                        help="defaults to --size-scale")
    parser.add_argument("--transport", choices=["dctcp", "tcp"], default="dctcp")
    parser.add_argument("--failure", choices=["random_drop", "blackhole"],
                        default=None)
    parser.add_argument("--drop-rate", type=float, default=0.02)
    parser.add_argument("--jobs", type=_positive_int, default=None,
                        help="worker processes for multi-cell runs "
                             "(default: $REPRO_JOBS, else all cores); "
                             "1 = in-process")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")


def _config_from_args(args, lb: str) -> ExperimentConfig:
    topology = TOPOLOGIES[args.topology](asymmetric=args.asymmetric)
    failure = None
    if args.failure:
        failure = FailureSpec(kind=args.failure, spine=0,
                              drop_rate=args.drop_rate)
    time_scale = args.time_scale if args.time_scale is not None else args.size_scale
    extra = {}
    if lb in ("presto", "drb"):
        extra["reorder_mask_us"] = (
            800.0 if topology.host_link_gbps <= 2.0 else 100.0
        )
    return ExperimentConfig(
        topology=topology,
        lb=lb,
        transport=args.transport,
        workload=args.workload,
        load=args.load,
        n_flows=args.flows,
        seed=args.seed,
        size_scale=args.size_scale,
        time_scale=time_scale,
        failure=failure,
        **extra,
    )


def _result_row(lb: str, result: ResultSummary) -> List:
    stats = result.stats
    return [
        lb,
        result.mean_fct_ms,
        stats.small.mean_ms(),
        stats.small.p99_ms(),
        stats.large.mean_ms(),
        stats.unfinished_count,
        result.total_reroutes,
    ]


RESULT_HEADERS = [
    "scheme", "avg FCT (ms)", "small avg", "small p99", "large avg",
    "unfinished", "reroutes",
]


def cmd_run(args) -> int:
    result = run_cells(
        [_config_from_args(args, args.lb)],
        jobs=1,
        use_cache=False if args.no_cache else None,
    )[0]
    print(format_table(RESULT_HEADERS, [_result_row(args.lb, result)]))
    return 0


def cmd_compare(args) -> int:
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not schemes:
        print("no schemes given", file=sys.stderr)
        return 2
    configs = [_config_from_args(args, lb) for lb in schemes]
    results = run_cells(
        configs, jobs=args.jobs, use_cache=False if args.no_cache else None
    )
    rows = [
        _result_row(lb, result) for lb, result in zip(schemes, results)
    ]
    print(format_table(RESULT_HEADERS, rows))
    return 0


def cmd_cache(args) -> int:
    cache = ResultCache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.directory}")
    else:
        print(f"cache dir: {cache.directory}")
        print(f"entries:   {cache.size()}")
    return 0


def cmd_probe_model(args) -> int:
    model = probe_overhead_model(
        n_leaves=args.leaves,
        n_spines=args.spines,
        hosts_per_leaf=args.hosts_per_leaf,
        link_gbps=args.link_gbps,
        probe_interval_us=args.interval_us,
    )
    rows = [
        [name, vals["visibility"], vals["overhead"]]
        for name, vals in model.items()
    ]
    print(format_table(["scheme", "visibility", "overhead (x capacity)"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hermes (SIGCOMM 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("--lb", default="hermes")
    _add_run_arguments(run_parser)
    run_parser.set_defaults(fn=cmd_run)

    compare_parser = sub.add_parser("compare", help="race several schemes")
    compare_parser.add_argument("--schemes", default="ecmp,conga,hermes")
    _add_run_arguments(compare_parser)
    compare_parser.set_defaults(fn=cmd_compare)

    probe_parser = sub.add_parser(
        "probe-model", help="Table 6 probing overhead model"
    )
    probe_parser.add_argument("--leaves", type=int, default=100)
    probe_parser.add_argument("--spines", type=int, default=100)
    probe_parser.add_argument("--hosts-per-leaf", type=int, default=100)
    probe_parser.add_argument("--link-gbps", type=float, default=10.0)
    probe_parser.add_argument("--interval-us", type=float, default=500.0)
    probe_parser.set_defaults(fn=cmd_probe_model)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the experiment result cache"
    )
    cache_parser.add_argument("--clear", action="store_true",
                              help="delete all cached results")
    cache_parser.set_defaults(fn=cmd_cache)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as exc:
        # Bad knob values (e.g. a garbage REPRO_JOBS) get a clean
        # one-line error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
