"""repro.hooks — one attach/detach surface for every nullable hook.

Four subsystems observe a running fabric through nullable attributes
that default to ``None`` and cost one ``is not None`` branch per hook
site when off: the invariant checker (:mod:`repro.validate`), the
structured tracer and decision audit (:mod:`repro.telemetry`), and the
engine loop profiler.  Historically each subsystem hand-wired its own
attributes (``fabric.tracer``, ``port.tracer``, ``port.checker``,
``sim.profiler``, ...) with its own occupancy checks; :class:`HookSet`
replaces that with a single fabric-bound surface::

    fabric.hooks.attach(checker=checker, tracer=tracer)
    ...
    fabric.hooks.detach(tracer=True)    # or detach_all()

Attach refuses to overwrite an occupied slot (``InstallError``-free:
plain ``RuntimeError``, checked for *all* requested slots before any
wiring happens, so a failed attach changes nothing).  The legacy
attributes survive only as **read-only** properties; assigning them
(``fabric.checker = ...``, ``sim.profiler = ...``, ``port.tracer =
...``) is a hard ``AttributeError`` pointing here — the deprecation
grace period ended with the sharded-runner API redesign.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

#: HookSet slot names, in attach/report order.
SLOTS = ("checker", "tracer", "audit", "profiler")


class HookSet:
    """The attach/detach surface of one fabric's observability hooks.

    Built by :class:`repro.net.fabric.Fabric` as ``fabric.hooks``; holds
    at most one occupant per slot:

    * ``checker`` — wired into the fabric (send/deliver), the engine
      (clock monotonicity) and every port (``watch_port`` shadow
      accounting — ports must be idle);
    * ``tracer`` — wired into the fabric (send/forward/flow lifecycle)
      and every port (drops);
    * ``audit`` — wired into every per-host agent exposing an ``audit``
      attribute and, when ``shared`` is given, every Hermes leaf-state
      table in ``shared["leaf_states"]``;
    * ``profiler`` — wired into the engine (one callback per dispatched
      event).
    """

    def __init__(self, fabric: "Fabric") -> None:
        self._fabric = fabric
        self._occupants: Dict[str, Any] = {name: None for name in SLOTS}
        #: shared-state dict captured at audit attach, for clean detach.
        self._audit_shared: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def occupant(self, slot: str) -> Any:
        """Current occupant of ``slot`` (``None`` when free)."""
        return self._occupants[slot]

    def occupied(self) -> Dict[str, Any]:
        """Mapping of the non-empty slots to their occupants."""
        return {k: v for k, v in self._occupants.items() if v is not None}

    # ------------------------------------------------------------------ #
    # Attach
    # ------------------------------------------------------------------ #

    def attach(
        self,
        *,
        checker: Any = None,
        tracer: Any = None,
        audit: Any = None,
        profiler: Any = None,
        shared: Optional[Dict[str, Any]] = None,
    ) -> "HookSet":
        """Wire the given observers into the fabric.  Atomic: every
        requested slot is checked for occupancy *before* any wiring, so
        on ``RuntimeError`` nothing has changed.

        Args:
            checker: an :class:`repro.validate.InvariantChecker`; ports
                must be idle (its ``watch_port`` precondition).
            tracer: anything implementing the
                :class:`repro.telemetry.tracer.TracerHooks` protocol.
            audit: a :class:`repro.telemetry.audit.DecisionAudit`.
            profiler: a :class:`repro.telemetry.series.LoopProfiler`.
            shared: the scheme's shared-state dict (``install_lb``
                output); lets ``checker``/``audit`` reach Hermes
                leaf-state tables.  May be passed alone to extend an
                already-attached checker/audit to a freshly installed
                scheme.

        Returns:
            self, for chaining.
        """
        requested = {
            "checker": checker,
            "tracer": tracer,
            "audit": audit,
            "profiler": profiler,
        }
        for slot, value in requested.items():
            if value is None:
                continue
            occupant = self._occupants[slot]
            if occupant is not None and occupant is not value:
                raise RuntimeError(
                    f"fabric already has a {slot} attached "
                    f"({occupant!r}); detach it first (one {slot} per fabric)"
                )
        fabric = self._fabric
        if checker is not None and self._occupants["checker"] is None:
            fabric._checker = checker
            fabric.sim._checker = checker
            for port in fabric.topology.all_ports():
                checker.watch_port(port)
                port._refresh_fast_path()
            fabric._refresh_fast_path()
            self._occupants["checker"] = checker
        if tracer is not None and self._occupants["tracer"] is None:
            fabric._tracer = tracer
            for port in fabric.topology.all_ports():
                port._tracer = tracer
                port._refresh_fast_path()
            fabric._refresh_fast_path()
            self._occupants["tracer"] = tracer
        if profiler is not None and self._occupants["profiler"] is None:
            fabric.sim._profiler = profiler
            self._occupants["profiler"] = profiler
        if audit is not None and self._occupants["audit"] is None:
            for host in fabric.hosts:
                agent = host.lb
                if agent is not None and hasattr(agent, "audit"):
                    agent.audit = audit
            self._occupants["audit"] = audit
        if shared:
            self._wire_shared(shared)
        return self

    def _wire_shared(self, shared: Dict[str, Any]) -> None:
        """Extend the attached checker/audit to a scheme's shared state
        (Hermes per-leaf path tables)."""
        checker = self._occupants["checker"]
        audit = self._occupants["audit"]
        for state in shared.get("leaf_states", {}).values():
            if not hasattr(state, "classify"):
                continue
            if checker is not None and hasattr(state, "checker"):
                state.checker = checker
            if audit is not None and hasattr(state, "audit"):
                state.audit = audit
        if audit is not None:
            # Detectors (repro.detect) record verdict flips through the
            # same audit; they never expose ``classify`` so the
            # leaf-state loop above skips them by design.
            for detector in shared.get("detectors", {}).values():
                detector.audit = audit
            self._audit_shared = shared

    # ------------------------------------------------------------------ #
    # Detach
    # ------------------------------------------------------------------ #

    def detach(
        self,
        *,
        checker: bool = False,
        tracer: bool = False,
        audit: bool = False,
        profiler: bool = False,
    ) -> "HookSet":
        """Unwire the named slots (each a no-op when already free)."""
        fabric = self._fabric
        if checker and self._occupants["checker"] is not None:
            fabric._checker = None
            fabric.sim._checker = None
            for port in fabric.topology.all_ports():
                port._checker = None
                port._refresh_fast_path()
            fabric._refresh_fast_path()
            self._occupants["checker"] = None
        if tracer and self._occupants["tracer"] is not None:
            fabric._tracer = None
            for port in fabric.topology.all_ports():
                port._tracer = None
                port._refresh_fast_path()
            fabric._refresh_fast_path()
            self._occupants["tracer"] = None
        if profiler and self._occupants["profiler"] is not None:
            fabric.sim._profiler = None
            self._occupants["profiler"] = None
        if audit and self._occupants["audit"] is not None:
            for host in fabric.hosts:
                agent = host.lb
                if agent is not None and hasattr(agent, "audit"):
                    agent.audit = None
            if self._audit_shared:
                for state in self._audit_shared.get("leaf_states", {}).values():
                    if hasattr(state, "audit"):
                        state.audit = None
                for detector in self._audit_shared.get(
                    "detectors", {}
                ).values():
                    detector.audit = None
                self._audit_shared = None
            self._occupants["audit"] = None
        return self

    def detach_all(self) -> "HookSet":
        """Release every occupied slot."""
        return self.detach(checker=True, tracer=True, audit=True, profiler=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        occupied = ", ".join(self.occupied()) or "empty"
        return f"HookSet({occupied})"
