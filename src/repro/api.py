"""repro.api — the stable public facade.

Everything an external caller (examples, notebooks, downstream tooling)
needs, in one import, with compatibility guarantees the internal modules
don't make::

    from repro.api import ExperimentConfig, bench_topology, run_experiment

    result = run_experiment(
        ExperimentConfig(topology=bench_topology(), lb="hermes", load=0.5)
    )
    print(result.mean_fct_ms, "ms")

The surface:

* :class:`ExperimentConfig` / :class:`TopologyConfig` /
  :class:`FailureSpec` — declarative run description, JSON round-trip
  via ``ExperimentConfig.to_dict()`` / ``ExperimentConfig.from_dict()``;
* :func:`run_experiment` — one config → one
  :class:`~repro.experiments.runner.ExperimentResult`, in-process;
* :func:`run_grid` — many configs → :class:`ResultSummary` list, with
  process-pool fan-out and the on-disk result cache;
* :func:`save_result` / :func:`load_result` — persist a run's summary +
  per-flow records to JSON and get an equivalent :class:`ResultSummary`
  back (config round-tripped through ``from_dict``);
* topology builders (:func:`bench_topology`, :func:`testbed_topology`,
  :func:`simulation_topology`, :func:`asymmetric_overrides`) matching
  the paper's setups;
* declarative topology specs (:class:`TopologySpec`,
  :class:`LeafSpineSpec`, :class:`ClosSpec`, :func:`spec_from_dict`,
  :func:`as_topology_spec`) — shape descriptions a :class:`Fabric`
  builds from and the sharded runner partitions
  (``ExperimentConfig(shards=N)`` / :func:`run_sharded`);
* :func:`serve` / :class:`ExperimentService` / :class:`ServiceClient` —
  the always-on experiment service (bounded job queue, crash-tolerant
  worker pool, HTTP JSON API + SSE; see :mod:`repro.serve`);
* :class:`StreamingFctStats` / :class:`TDigest` /
  :class:`ReservoirSampler` — bounded-memory statistics for
  million-flow cells (``ExperimentConfig(streaming_stats=True)``).

Internal layers (``repro.sim``, ``repro.net``, ``repro.telemetry``, ...)
remain importable but may reshuffle between releases; this module is the
contract.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Sequence, Union

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.export import (
    summary_dict,
    write_flow_csv,
    write_summary_json,
)
from repro.experiments.parallel import (
    ResultSummary,
    grid_configs,
    grid_results,
)
from repro.experiments.parallel import run_cells as _run_cells
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import (
    asymmetric_overrides,
    bench_topology,
    simulation_topology,
    testbed_topology,
)
from repro.experiments.report import format_table
from repro.faults.spec import FaultEventSpec, FaultScheduleSpec
from repro.hooks import HookSet
from repro.lb.base import LoadBalancer
from repro.lb.factory import (
    LB_REGISTRY,
    SPRAYING_SCHEMES,
    install_lb,
    scheme_names,
    spraying_schemes,
)
from repro.metrics.fct import FctStats, FlowRecord
from repro.metrics.streaming import STREAMING_AUTO_FLOWS, StreamingFctStats
from repro.net.fabric import Fabric
from repro.net.spec import (
    ClosSpec,
    LeafSpineSpec,
    TopologySpec,
    as_topology_spec,
    spec_from_dict,
)
from repro.serve import (
    BackpressureError,
    ExperimentService,
    QueueFull,
    ServiceClient,
    serve,
)
from repro.telemetry.digest import ReservoirSampler, TDigest
from repro.net.topology import TopologyConfig
from repro.sim.engine import (
    SCHEDULERS,
    Simulator,
    WheelSimulator,
    make_simulator,
)
from repro.shard import run_sharded
from repro.sim.rng import RngStreams
from repro.telemetry.series import QueueSampler
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import TcpFlow
from repro.workload.patterns import incast, permutation, staggered_elephants

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ResultSummary",
    "TopologyConfig",
    "TopologySpec",
    "LeafSpineSpec",
    "ClosSpec",
    "spec_from_dict",
    "as_topology_spec",
    "FailureSpec",
    "FaultScheduleSpec",
    "FaultEventSpec",
    "FctStats",
    "FlowRecord",
    "StreamingFctStats",
    "STREAMING_AUTO_FLOWS",
    "TDigest",
    "ReservoirSampler",
    "serve",
    "ExperimentService",
    "ServiceClient",
    "QueueFull",
    "BackpressureError",
    "run_experiment",
    "run_sharded",
    "run_grid",
    "save_result",
    "load_result",
    "summary_dict",
    "write_flow_csv",
    "write_summary_json",
    "grid_configs",
    "grid_results",
    "bench_topology",
    "testbed_topology",
    "simulation_topology",
    "asymmetric_overrides",
    "format_table",
    # Extension surface: build custom harnesses and schemes on these.
    "LoadBalancer",
    "LB_REGISTRY",
    "SPRAYING_SCHEMES",
    "install_lb",
    "scheme_names",
    "spraying_schemes",
    "Fabric",
    "Simulator",
    "WheelSimulator",
    "SCHEDULERS",
    "make_simulator",
    "RngStreams",
    "HookSet",
    "QueueSampler",
    "DctcpFlow",
    "TcpFlow",
    "incast",
    "permutation",
    "staggered_elephants",
]


def run_grid(
    configs: Sequence[ExperimentConfig],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> List[ResultSummary]:
    """Run many experiment cells, fanning out over worker processes.

    Results are bit-identical to running each config serially through
    :func:`run_experiment` (asserted by the test suite); finished cells
    are served from the on-disk result cache when enabled.

    Args:
        configs: the grid cells, in the order results are returned.
        jobs: worker processes (default: ``REPRO_JOBS`` or the CPU
            count); ``1`` runs everything in-process.
        use_cache: override the ``REPRO_CACHE`` switch.
        cache_dir: override the cache location (``REPRO_CACHE_DIR``).
    """
    return _run_cells(
        configs, jobs=jobs, use_cache=use_cache, cache_dir=cache_dir
    )


#: save_result file format version (bumped on incompatible change).
_RESULT_FORMAT = 1


def save_result(
    result: Union[ExperimentResult, ResultSummary],
    path_or_stream: Union[str, "os.PathLike[str]", IO[str]],
) -> None:
    """Persist one run to JSON: full config (``to_dict``), the run
    totals, and either per-flow records (exact run) or the serialized
    streaming collector (``streaming_stats`` run — there are no records;
    the digest/reservoir state round-trips instead).  :func:`load_result`
    restores it as a :class:`ResultSummary` either way."""
    stats = result.stats
    streaming = bool(getattr(stats, "is_streaming", False))
    doc = {
        "format": _RESULT_FORMAT,
        "config": result.config.to_dict(),
        "records": [
            {
                "flow_id": r.flow_id,
                "src": r.src,
                "dst": r.dst,
                "size_bytes": r.size_bytes,
                "start_ns": r.start_ns,
                "fct_ns": r.fct_ns,
                "retransmissions": r.retransmissions,
                "timeouts": r.timeouts,
            }
            for r in stats.records
        ],
        "streaming_stats": stats.to_dict() if streaming else None,
        "percentile_estimators": getattr(
            result, "percentile_estimators", None
        ),
        "small_bytes": result.stats.small_bytes,
        "large_bytes": result.stats.large_bytes,
        "sim_time_ns": result.sim_time_ns,
        "events": result.events,
        "total_reroutes": result.total_reroutes,
        "visibility_switch_pair": result.visibility_switch_pair,
        "visibility_host_pair": result.visibility_host_pair,
        "fault_timeline": list(result.fault_timeline),
        "detection_ns": result.detection_ns,
        "recovery_ns": result.recovery_ns,
        "unrecovered_timeouts": result.unrecovered_timeouts,
    }
    if hasattr(path_or_stream, "write"):
        json.dump(doc, path_or_stream, indent=2, sort_keys=True)
        path_or_stream.write("\n")
    else:
        with open(path_or_stream, "w", encoding="utf-8") as stream:
            json.dump(doc, stream, indent=2, sort_keys=True)
            stream.write("\n")


def load_result(
    path_or_stream: Union[str, "os.PathLike[str]", IO[str]],
) -> ResultSummary:
    """Load a :func:`save_result` file back into a :class:`ResultSummary`
    (same stats/query surface as a fresh run; no live fabric)."""
    if hasattr(path_or_stream, "read"):
        doc = json.load(path_or_stream)
    else:
        with open(path_or_stream, "r", encoding="utf-8") as stream:
            doc = json.load(stream)
    version = doc.get("format")
    if version != _RESULT_FORMAT:
        raise ValueError(
            f"unsupported result file format {version!r} "
            f"(this build reads format {_RESULT_FORMAT})"
        )
    streaming_doc = doc.get("streaming_stats")
    if streaming_doc is not None:
        from repro.metrics.streaming import StreamingFctStats

        stats: Any = StreamingFctStats.from_dict(streaming_doc)
    else:
        records = [FlowRecord(**record) for record in doc["records"]]
        stats = FctStats(
            records,
            small_bytes=doc["small_bytes"],
            large_bytes=doc["large_bytes"],
        )
    estimators = doc.get("percentile_estimators")
    if estimators is None:
        estimators = (
            stats.estimators()
            if streaming_doc is not None
            else {"p50": "exact", "p99": "exact"}
        )
    return ResultSummary(
        config=ExperimentConfig.from_dict(doc["config"]),
        stats=stats,
        percentile_estimators=estimators,
        sim_time_ns=doc["sim_time_ns"],
        events=doc["events"],
        total_reroutes=doc["total_reroutes"],
        visibility_switch_pair=doc.get("visibility_switch_pair"),
        visibility_host_pair=doc.get("visibility_host_pair"),
        fault_timeline=tuple(doc.get("fault_timeline", ())),
        detection_ns=doc.get("detection_ns"),
        recovery_ns=doc.get("recovery_ns"),
        unrecovered_timeouts=doc.get("unrecovered_timeouts", 0),
    )
