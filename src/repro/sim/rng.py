"""Seeded random-number streams.

Every stochastic component (workload generation, ECMP hashing, LetFlow
path picks, failure injection, ...) draws from its own named stream so
that changing one component never perturbs another — a standard trick for
variance reduction and debuggability in network simulators.
"""

from __future__ import annotations

import random
import zlib


class RngStreams:
    """A family of independent ``random.Random`` streams under one seed.

    ``streams.get("letflow")`` always returns the same generator for the
    same name, seeded by a stable hash of ``(master_seed, name)``.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return (creating if needed) the named stream."""
        stream = self._streams.get(name)
        if stream is None:
            derived = (self.master_seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def spawn(self, name: str, index: int) -> random.Random:
        """Return a stream for an indexed family, e.g. per-host streams."""
        return self.get(f"{name}:{index}")
