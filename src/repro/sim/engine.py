"""Event loop with an integer-nanosecond clock.

Time is kept in integer nanoseconds so that event ordering is exact and
runs are bit-reproducible across platforms.  Events scheduled for the same
instant fire in scheduling order (FIFO), which the transport layer relies
on (e.g. an ACK processed before the retransmission timer set in the same
nanosecond).

Two interchangeable schedulers implement that contract:

* :class:`Simulator` — a single binary heap (the original engine and the
  perf baseline);
* :class:`WheelSimulator` — a hierarchical calendar queue: near-future
  events land in fixed-width time slots (O(1) schedule/cancel via
  slot-local lists), far-future events overflow into a fallback heap that
  refills the wheel as the cursor advances.

Both dispatch events in exactly the same total order — ``(time, seq)``
with ``seq`` monotonically increasing per schedule — so results are
bit-identical whichever engine runs them (enforced by the golden grid and
the scheduler-differential test suite).  Select per run with
``ExperimentConfig(scheduler=...)`` or globally with ``REPRO_SCHEDULER``.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heapify, heappop, heappush
from operator import attrgetter
from typing import Any, Callable, Optional

#: Sentinel "never" time: larger than any reachable simulation clock.
_NEVER = (1 << 63) - 1

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000

#: The engine's total dispatch order, as a C-level key extractor.
_TIME_SEQ = attrgetter("time", "seq")

#: Known scheduler names (see :func:`make_simulator`).  ``wheel:auto`` is
#: the calendar wheel with slot geometry derived from the run's topology
#: (see :mod:`repro.sim.tuning`) instead of the fixed defaults.
SCHEDULERS = ("heap", "wheel", "wheel:auto")

#: The engine built when nothing asks for a specific one.  The wheel is
#: bit-identical to the heap (enforced by the golden grid and the
#: scheduler-differential suite) and ~25%+ faster, so it is the default;
#: ``"heap"`` stays selectable per config or via ``REPRO_SCHEDULER``.
DEFAULT_SCHEDULER = "wheel"

#: Error message shared by every legacy hook attribute.  Direct hook
#: assignment was deprecated when :class:`repro.hooks.HookSet` landed
#: (PR 6) and is now a hard error: the fast-path flags HookSet maintains
#: (`Fabric._fast`, `OutputPort._guarded`) are only refreshed through
#: ``attach``/``detach``, so a bypassing write could silently install a
#: hook the hot path never consults.
_HOOK_DEPRECATION = (
    "direct hook attribute assignment was removed; use "
    "repro.hooks.HookSet (fabric.hooks.attach(...)) instead"
)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


class Event:
    """A scheduled callback.

    Events are one-shot.  ``cancel()`` marks the event dead; the engine
    skips dead events when they surface, which is cheaper than removing
    them from the queue.  A fired (or never-scheduled) event may be
    re-armed with :meth:`Simulator.reschedule`, which reuses the object
    instead of allocating a new one — the batched port-drain chain and
    the periodic samplers live on this.

    ``poolable`` marks fire-and-forget events created through
    :meth:`Simulator.schedule_pooled`: the scheduling site promises that
    no one retains the handle once the event has fired (without re-arming
    itself) or been cancelled, so the engine may recycle the object
    through its free list instead of leaving it to the allocator.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "poolable")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.poolable = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """Minimal discrete-event simulator (binary-heap scheduler).

    Usage::

        sim = Simulator()
        sim.schedule(1000, callback, arg1, arg2)
        sim.run()

    The loop stops when the queue drains, when ``until`` is reached, or
    when ``max_events`` events have fired.
    """

    #: Name under which :func:`make_simulator` builds this engine.
    scheduler = "heap"

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._running = False
        self._stop_requested = False
        #: Free list of recycled :class:`Event` objects (see
        #: :meth:`schedule_pooled`).  Fired/cancelled poolable events land
        #: here instead of the allocator; the next pooled schedule reuses
        #: them.  Dispatch order is untouched — pooling only changes where
        #: the object's memory comes from.
        self._event_pool: list[Event] = []
        #: Optional invariant checker (see :mod:`repro.validate`).  When
        #: ``None`` — the default — the event loop pays one predictable
        #: branch per event and nothing else.  Attach via
        #: :class:`repro.hooks.HookSet`.
        self._checker = None
        #: Optional event-loop profiler (see
        #: :class:`repro.telemetry.series.LoopProfiler`); same nullable
        #: pattern — one branch per event when off.
        self._profiler = None

    # ------------------------------------------------------------------ #
    # Legacy hook attributes (read-only; assignment is a hard error)
    # ------------------------------------------------------------------ #

    @property
    def checker(self):
        """The attached invariant checker (read-only view; attach via
        :class:`repro.hooks.HookSet`)."""
        return self._checker

    @checker.setter
    def checker(self, value) -> None:
        raise AttributeError(_HOOK_DEPRECATION)

    @property
    def profiler(self):
        """The attached loop profiler (read-only view; attach via
        :class:`repro.hooks.HookSet`)."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        raise AttributeError(_HOOK_DEPRECATION)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event = Event(self.now + delay_ns, self._seq, fn, args)
        self._seq += 1
        heappush(self._queue, event)
        return event

    def schedule_pooled(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a *fire-and-forget* event through the free list.

        Semantics are identical to :meth:`schedule` (same clock, same
        sequence-number draw, same dispatch order).  The contract is on
        the caller: the returned handle must not be retained past the
        event firing (unless the callback re-arms the same event) or
        being cancelled — once either happens the engine recycles the
        object and a later ``schedule_pooled`` may hand it out again.
        The packet-propagation and RTO-timer hot paths live on this.
        """
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = self.now + delay_ns
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(self.now + delay_ns, self._seq, fn, args)
            event.poolable = True
        self._seq += 1
        heappush(self._queue, event)
        return event

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        event = Event(time_ns, self._seq, fn, args)
        self._seq += 1
        heappush(self._queue, event)
        return event

    def reschedule(self, event: Event, delay_ns: int) -> Event:
        """Re-arm ``event`` to fire ``delay_ns`` nanoseconds from now.

        Reuses the event object (no allocation, same ``fn``/``args``) but
        draws a **fresh** sequence number, so FIFO ordering against other
        events at the new instant is exactly as if a new event had been
        scheduled — both engines produce identical dispatch streams.

        The event must not be pending: only re-arm an event that has
        already fired (e.g. from inside its own callback) or was never
        scheduled.  Re-arming a pending event would enqueue it twice.
        """
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event.time = self.now + delay_ns
        event.seq = self._seq
        self._seq += 1
        event.cancelled = False
        heappush(self._queue, event)
        return event

    def schedule_periodic(
        self, period_ns: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``fn(*args)`` every ``period_ns``, starting one period
        from now.

        The returned handle re-arms itself after each firing without
        re-entering the public scheduling path: one :class:`Event` object
        is reused for the whole chain (in the wheel engine the re-arm is
        an in-slot append).  ``cancel()`` the handle to stop the chain —
        from outside or from within the callback itself.
        """
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        event: Optional[Event] = None

        def tick() -> None:
            fn(*args)
            if not event.cancelled:
                self.reschedule(event, period_ns)

        # Keep profiler attribution on the user callback, not the shim.
        tick.__qualname__ = getattr(fn, "__qualname__", repr(fn))
        tick.__name__ = getattr(fn, "__name__", "tick")
        event = self.schedule(period_ns, tick)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event (no-op for ``None`` or already-cancelled events)."""
        if event is not None:
            event.cancel()

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            event = heappop(self._queue)
            if event.poolable:
                event.args = ()
                self._event_pool.append(event)
        return self._queue[0].time if self._queue else None

    def stop(self) -> None:
        """Ask the running loop to return after the current event.

        Lets a callback (e.g. "last flow finished") end the run at the
        exact event that satisfied the stop condition instead of polling
        in time slices.  A no-op outside :meth:`run`.
        """
        self._stop_requested = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this absolute time.  The
                clock is advanced to ``until`` on exit (unless a callback
                called :meth:`stop` first).
            max_events: stop after this many events have fired.

        Returns:
            The number of events fired during this call.

        Raises:
            RuntimeError: if called from inside an event callback — the
                loop is not re-entrant.
        """
        if self._running:
            raise RuntimeError(
                "Simulator.run() is not re-entrant; "
                "use schedule()/stop() from within callbacks"
            )
        queue = self._queue
        pop = heappop
        pool = self._event_pool
        horizon = _NEVER if until is None else until
        limit = _NEVER if max_events is None else max_events
        checker = self._checker
        profiler = self._profiler
        fired = 0
        self._stop_requested = False
        self._running = True
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    if event.poolable:
                        event.args = ()
                        pool.append(event)
                    continue
                if event.time > horizon or fired >= limit:
                    break
                pop(queue)
                if checker is not None:
                    checker.on_advance(event.time, self.now)
                self.now = event.time
                fired += 1
                if profiler is not None:
                    profiler.on_event(event)
                seq = event.seq
                event.fn(*event.args)
                # Recycle unless the callback re-armed its own event (a
                # re-arm draws a fresh sequence number).
                if event.poolable and event.seq == seq:
                    event.args = ()
                    pool.append(event)
                if self._stop_requested:
                    break
        finally:
            self._events_fired += fired
            self._running = False
        if until is not None and not self._stop_requested and self.now < until:
            self.now = until
        return fired

    def run_until(self, horizon: int, max_events: Optional[int] = None) -> int:
        """Fire every pending event with ``time < horizon`` and return.

        The conservative-lookahead barrier API (see :mod:`repro.shard`):
        unlike :meth:`run`, the bound is *exclusive* and the clock is left
        at the last fired event rather than advanced to the bound, so the
        loop is resumable — a later ``run_until`` with a larger horizon
        continues exactly where this one stopped, and events injected
        between windows at ``t >= horizon`` dispatch in their correct
        ``(time, seq)`` position.

        Returns the number of events fired during this call.
        """
        if self._running:
            raise RuntimeError(
                "Simulator.run_until() is not re-entrant; "
                "use schedule()/stop() from within callbacks"
            )
        queue = self._queue
        pop = heappop
        pool = self._event_pool
        limit = _NEVER if max_events is None else max_events
        checker = self._checker
        profiler = self._profiler
        fired = 0
        self._stop_requested = False
        self._running = True
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    if event.poolable:
                        event.args = ()
                        pool.append(event)
                    continue
                if event.time >= horizon or fired >= limit:
                    break
                pop(queue)
                if checker is not None:
                    checker.on_advance(event.time, self.now)
                self.now = event.time
                fired += 1
                if profiler is not None:
                    profiler.on_event(event)
                seq = event.seq
                event.fn(*event.args)
                if event.poolable and event.seq == seq:
                    event.args = ()
                    pool.append(event)
                if self._stop_requested:
                    break
        finally:
            self._events_fired += fired
            self._running = False
        return fired

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._event_pool.clear()
        self.now = 0
        self._seq = 0
        self._events_fired = 0
        self._stop_requested = False


class WheelSimulator(Simulator):
    """Hierarchical calendar queue: a slotted timer wheel over a fallback
    heap.

    The wheel covers a sliding window of ``num_slots`` fixed-width time
    slots ahead of the cursor.  Scheduling an event inside the window is
    an O(1) integer shift + list append; events beyond the window go to
    an **overflow heap** and are refilled into slots as the cursor
    advances (rollover).  When the cursor reaches a slot, the slot is
    *opened*: its events are sorted once by ``(time, seq)`` (C-level
    stable sort) into the drain **bucket** and popped by index; events
    scheduled at or before the cursor's slot while draining are merged
    into the bucket by binary insertion, preserving the exact dispatch
    order of the heap engine.

    Dispatch order, same-instant FIFO, cancellation semantics, ``stop()``
    and ``run(until=..., max_events=...)`` behaviour are all identical to
    :class:`Simulator` — only the queue mechanics differ.

    Args:
        slot_ns_bits: log2 of the slot width in nanoseconds (default 12 →
            4096 ns slots: one slot spans a few packet serializations at
            10 Gbps, so port tx chains stay in-slot).
        num_slot_bits: log2 of the slot count (default 11 → 2048 slots,
            an ~8.4 ms window that holds RTO timers and samplers; only
            flow arrivals and drain deadlines overflow).
    """

    scheduler = "wheel"

    def __init__(self, slot_ns_bits: int = 12, num_slot_bits: int = 11) -> None:
        super().__init__()
        if slot_ns_bits < 1 or num_slot_bits < 1:
            raise ValueError("wheel geometry bits must be positive")
        self._shift = slot_ns_bits
        self._num_slots = 1 << num_slot_bits
        self._mask = self._num_slots - 1
        self._slots: list[list] = [[] for _ in range(self._num_slots)]
        #: Absolute index of the slot the cursor occupies (== drained).
        self._cur_slot = 0
        #: Events living in slot lists (bucket and overflow not counted).
        self._wheel_count = 0
        #: Sorted drain list of the opened slot + anything scheduled at or
        #: before the cursor while draining.
        self._bucket: list[Event] = []
        self._bucket_pos = 0
        #: Far-future events, ordered by Event.__lt__ == (time, seq).
        self._overflow: list[Event] = []
        # Lazy purge of cancelled events: a schedule/cancel churn workload
        # (rapid RTO re-arms, abandoned timers) would otherwise grow slot
        # lists and the overflow heap without bound until the cursor
        # reaches them.  When a container crosses its threshold the dead
        # events are filtered out in place; thresholds double when a purge
        # finds mostly-live events, keeping the cost amortized O(1).
        self._slot_purge_at = 512
        self._overflow_purge_at = 256
        # Occupancy / rollover counters, surfaced via wheel_stats() and
        # the telemetry LoopProfiler.
        self.wheel_rollovers = 0
        self.wheel_overflow_pushes = 0
        self.wheel_refilled = 0
        self.wheel_cursor_jumps = 0
        self.wheel_slots_opened = 0
        self.wheel_max_bucket = 0
        self.wheel_purged = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def _insert(self, event: Event) -> None:
        idx = event.time >> self._shift
        cur = self._cur_slot
        if idx > cur:
            if idx - cur <= self._num_slots:
                slot = self._slots[idx & self._mask]
                slot.append(event)
                self._wheel_count += 1
                if len(slot) >= self._slot_purge_at:
                    self._purge_slot(slot)
            else:
                heappush(self._overflow, event)
                self.wheel_overflow_pushes += 1
                if len(self._overflow) >= self._overflow_purge_at:
                    self._purge_overflow()
        else:
            # At (or before) the cursor's slot: merge into the live drain
            # bucket.  The new event's seq is the largest allocated, so
            # insort-right lands it after every equal-time event — FIFO.
            insort(self._bucket, event, lo=self._bucket_pos, key=_TIME_SEQ)

    def _purge_slot(self, slot: list) -> None:
        """Filter cancelled events out of one slot list, in place."""
        live = [e for e in slot if not e.cancelled]
        removed = len(slot) - len(live)
        if removed:
            pool = self._event_pool
            for e in slot:
                if e.cancelled and e.poolable:
                    e.args = ()
                    pool.append(e)
            slot[:] = live
            self._wheel_count -= removed
            self.wheel_purged += removed
        if removed * 4 < len(live):
            # Mostly genuinely-live events: raise the threshold so a full
            # slot does not trigger a fruitless O(n) sweep per append.
            self._slot_purge_at = max(self._slot_purge_at, 2 * len(live) + 64)

    def _purge_overflow(self) -> None:
        """Filter cancelled events out of the overflow heap, in place."""
        overflow = self._overflow
        live = [e for e in overflow if not e.cancelled]
        removed = len(overflow) - len(live)
        if removed:
            pool = self._event_pool
            for e in overflow:
                if e.cancelled and e.poolable:
                    e.args = ()
                    pool.append(e)
            overflow[:] = live
            heapify(overflow)
            self.wheel_purged += removed
        self._overflow_purge_at = max(256, 2 * len(live))

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event = Event(self.now + delay_ns, self._seq, fn, args)
        self._seq += 1
        self._insert(event)
        return event

    def schedule_pooled(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = self.now + delay_ns
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(self.now + delay_ns, self._seq, fn, args)
            event.poolable = True
        self._seq += 1
        self._insert(event)
        return event

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        event = Event(time_ns, self._seq, fn, args)
        self._seq += 1
        self._insert(event)
        return event

    def reschedule(self, event: Event, delay_ns: int) -> Event:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event.time = self.now + delay_ns
        event.seq = self._seq
        self._seq += 1
        event.cancelled = False
        self._insert(event)
        return event

    # ------------------------------------------------------------------ #
    # Cursor movement
    # ------------------------------------------------------------------ #

    def _refill(self, horizon_idx: int) -> None:
        """Move overflow events whose slot is now inside the window
        (``idx <= horizon_idx``) into their slots (or the live bucket)."""
        overflow = self._overflow
        shift = self._shift
        cur = self._cur_slot
        moved = 0
        pool = self._event_pool
        while overflow:
            head = overflow[0]
            if head.cancelled:
                heappop(overflow)
                if head.poolable:
                    head.args = ()
                    pool.append(head)
                continue
            idx = head.time >> shift
            if idx > horizon_idx:
                break
            heappop(overflow)
            moved += 1
            if idx > cur:
                self._slots[idx & self._mask].append(head)
                self._wheel_count += 1
            else:
                insort(self._bucket, head, lo=self._bucket_pos, key=_TIME_SEQ)
        if moved:
            self.wheel_refilled += moved
            self.wheel_rollovers += 1

    def _advance(self) -> bool:
        """Ensure the bucket holds the next events to dispatch.

        Returns ``False`` when nothing is pending anywhere (the bucket,
        the wheel and the overflow heap are all drained).
        """
        while True:
            if self._bucket_pos < len(self._bucket):
                return True
            # Bucket exhausted: recycle the list before moving on.
            if self._bucket:
                self._bucket.clear()
                self._bucket_pos = 0
            overflow = self._overflow
            pool = self._event_pool
            while overflow and overflow[0].cancelled:
                dead = heappop(overflow)
                if dead.poolable:
                    dead.args = ()
                    pool.append(dead)
            if overflow:
                horizon = self._cur_slot + self._num_slots
                head_idx = overflow[0].time >> self._shift
                if self._wheel_count == 0 and head_idx > horizon:
                    # Whole revolutions of dead air: jump the cursor
                    # straight to the overflow head's slot.
                    self._cur_slot = head_idx
                    self.wheel_cursor_jumps += 1
                    horizon = head_idx + self._num_slots
                if head_idx <= horizon:
                    self._refill(horizon)
                    continue  # bucket/slots may have gained events
            if self._wheel_count == 0:
                return False
            # Scan for the next non-empty slot.  Guaranteed to terminate:
            # every slotted event satisfies cur < idx <= cur + num_slots.
            cur = self._cur_slot
            slots = self._slots
            mask = self._mask
            while True:
                cur += 1
                slot = slots[cur & mask]
                if slot:
                    break
            self._cur_slot = cur
            self._open_slot(slot)
            return True

    def _open_slot(self, slot: list) -> None:
        """Turn a slot's contents into the sorted drain bucket."""
        n = len(slot)
        self._wheel_count -= n
        self.wheel_slots_opened += 1
        if n > self.wheel_max_bucket:
            self.wheel_max_bucket = n
        bucket = self._bucket
        bucket.extend(slot)
        slot.clear()
        if n > 1:
            # Stable C sort on (time, seq): restores the heap engine's
            # exact total order however direct appends and overflow
            # refills interleaved in the slot.
            bucket.sort(key=_TIME_SEQ)
        self._bucket_pos = 0

    def _peek(self) -> Optional[Event]:
        """The next live event, advancing the cursor as needed (the clock
        is untouched)."""
        while True:
            pos = self._bucket_pos
            if pos < len(self._bucket):
                event = self._bucket[pos]
                if event.cancelled:
                    self._bucket_pos = pos + 1
                    if event.poolable:
                        event.args = ()
                        self._event_pool.append(event)
                    continue
                return event
            if not self._advance():
                return None

    # ------------------------------------------------------------------ #
    # Engine API
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        return (
            self._wheel_count
            + (len(self._bucket) - self._bucket_pos)
            + len(self._overflow)
        )

    def peek_time(self) -> Optional[int]:
        event = self._peek()
        return event.time if event is not None else None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        if self._running:
            raise RuntimeError(
                "Simulator.run() is not re-entrant; "
                "use schedule()/stop() from within callbacks"
            )
        horizon = _NEVER if until is None else until
        limit = _NEVER if max_events is None else max_events
        checker = self._checker
        profiler = self._profiler
        fired = 0
        self._stop_requested = False
        self._running = True
        bucket = self._bucket
        pool = self._event_pool
        try:
            while True:
                pos = self._bucket_pos
                if pos < len(bucket):
                    event = bucket[pos]
                    if event.cancelled:
                        self._bucket_pos = pos + 1
                        if event.poolable:
                            event.args = ()
                            pool.append(event)
                        continue
                    if event.time > horizon or fired >= limit:
                        break
                    self._bucket_pos = pos + 1
                    if checker is not None:
                        checker.on_advance(event.time, self.now)
                    self.now = event.time
                    fired += 1
                    if profiler is not None:
                        profiler.on_event(event)
                    seq = event.seq
                    event.fn(*event.args)
                    # Recycle unless the callback re-armed its own event
                    # (a re-arm draws a fresh sequence number).
                    if event.poolable and event.seq == seq:
                        event.args = ()
                        pool.append(event)
                    if self._stop_requested:
                        break
                    continue
                if not self._advance():
                    break
                bucket = self._bucket
        finally:
            self._events_fired += fired
            self._running = False
        if until is not None and not self._stop_requested and self.now < until:
            self.now = until
        return fired

    def run_until(self, horizon: int, max_events: Optional[int] = None) -> int:
        if self._running:
            raise RuntimeError(
                "Simulator.run_until() is not re-entrant; "
                "use schedule()/stop() from within callbacks"
            )
        limit = _NEVER if max_events is None else max_events
        checker = self._checker
        profiler = self._profiler
        fired = 0
        self._stop_requested = False
        self._running = True
        bucket = self._bucket
        pool = self._event_pool
        try:
            while True:
                pos = self._bucket_pos
                if pos < len(bucket):
                    event = bucket[pos]
                    if event.cancelled:
                        self._bucket_pos = pos + 1
                        if event.poolable:
                            event.args = ()
                            pool.append(event)
                        continue
                    if event.time >= horizon or fired >= limit:
                        break
                    self._bucket_pos = pos + 1
                    if checker is not None:
                        checker.on_advance(event.time, self.now)
                    self.now = event.time
                    fired += 1
                    if profiler is not None:
                        profiler.on_event(event)
                    seq = event.seq
                    event.fn(*event.args)
                    if event.poolable and event.seq == seq:
                        event.args = ()
                        pool.append(event)
                    if self._stop_requested:
                        break
                    continue
                if not self._advance():
                    break
                bucket = self._bucket
        finally:
            self._events_fired += fired
            self._running = False
        return fired

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        for slot in self._slots:
            slot.clear()
        self._cur_slot = 0
        self._wheel_count = 0
        self._bucket = []
        self._bucket_pos = 0
        self._overflow = []
        self._slot_purge_at = 512
        self._overflow_purge_at = 256

    def wheel_stats(self) -> dict:
        """Occupancy / rollover counters (also surfaced by the telemetry
        :class:`~repro.telemetry.series.LoopProfiler`)."""
        return {
            "slot_ns": 1 << self._shift,
            "num_slots": self._num_slots,
            "pending_slots": self._wheel_count,
            "pending_bucket": len(self._bucket) - self._bucket_pos,
            "pending_overflow": len(self._overflow),
            "occupied_slots": sum(1 for slot in self._slots if slot),
            "rollovers": self.wheel_rollovers,
            "overflow_pushes": self.wheel_overflow_pushes,
            "refilled": self.wheel_refilled,
            "cursor_jumps": self.wheel_cursor_jumps,
            "slots_opened": self.wheel_slots_opened,
            "max_bucket": self.wheel_max_bucket,
            "purged": self.wheel_purged,
        }


# --------------------------------------------------------------------- #
# Scheduler selection
# --------------------------------------------------------------------- #


def resolve_scheduler(scheduler: Optional[str] = None) -> str:
    """Effective scheduler name: ``REPRO_SCHEDULER`` env > argument >
    :data:`DEFAULT_SCHEDULER`.  Raises ``ValueError`` for unknown names."""
    env = os.environ.get("REPRO_SCHEDULER")
    source = ""
    if env:
        scheduler = env
        source = " (from REPRO_SCHEDULER)"
    if scheduler is None:
        scheduler = DEFAULT_SCHEDULER
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}{source}; known: {SCHEDULERS}"
        )
    return scheduler


def scheduler_forced() -> bool:
    """True when ``REPRO_SCHEDULER`` overrides every config's scheduler
    choice (which also bypasses the result cache — a cached summary says
    nothing about the engine the override asked to exercise)."""
    return bool(os.environ.get("REPRO_SCHEDULER"))


def make_simulator(
    scheduler: Optional[str] = None,
    *,
    slot_ns_bits: Optional[int] = None,
    num_slot_bits: Optional[int] = None,
) -> Simulator:
    """Build the engine named by ``scheduler`` (after env resolution).

    ``slot_ns_bits`` / ``num_slot_bits`` override the wheel geometry
    (ignored for the heap engine); ``"wheel:auto"`` callers pass the
    geometry computed by :func:`repro.sim.tuning.wheel_geometry_for`.
    Without an explicit geometry, ``wheel:auto`` falls back to the fixed
    wheel defaults — the dispatch order is identical either way.
    """
    name = resolve_scheduler(scheduler)
    if name == "heap":
        return Simulator()
    kwargs = {}
    if slot_ns_bits is not None:
        kwargs["slot_ns_bits"] = slot_ns_bits
    if num_slot_bits is not None:
        kwargs["num_slot_bits"] = num_slot_bits
    sim = WheelSimulator(**kwargs)
    if name != "wheel":
        # Instance label (shadows the class attribute) so results record
        # which selection path produced this engine.
        sim.scheduler = name
    return sim
