"""Event loop with an integer-nanosecond clock.

Time is kept in integer nanoseconds so that event ordering is exact and
runs are bit-reproducible across platforms.  Events scheduled for the same
instant fire in scheduling order (FIFO), which the transport layer relies
on (e.g. an ACK processed before the retransmission timer set in the same
nanosecond).
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Optional

#: Sentinel "never" time: larger than any reachable simulation clock.
_NEVER = (1 << 63) - 1

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


class Event:
    """A scheduled callback.

    Events are one-shot.  ``cancel()`` marks the event dead; the engine
    skips dead events when they surface, which is cheaper than removing
    them from the heap.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """Minimal discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1000, callback, arg1, arg2)
        sim.run()

    The loop stops when the queue drains, when ``until`` is reached, or
    when ``max_events`` events have fired.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._running = False
        self._stop_requested = False
        #: Optional invariant checker (see :mod:`repro.validate`).  When
        #: ``None`` — the default — the event loop pays one predictable
        #: branch per event and nothing else.
        self.checker = None
        #: Optional event-loop profiler (see
        #: :class:`repro.telemetry.series.LoopProfiler`); same nullable
        #: pattern — one branch per event when off.
        self.profiler = None

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        event = Event(self.now + delay_ns, self._seq, fn, args)
        self._seq += 1
        heappush(self._queue, event)
        return event

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        event = Event(time_ns, self._seq, fn, args)
        self._seq += 1
        heappush(self._queue, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event (no-op for ``None`` or already-cancelled events)."""
        if event is not None:
            event.cancel()

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def stop(self) -> None:
        """Ask the running loop to return after the current event.

        Lets a callback (e.g. "last flow finished") end the run at the
        exact event that satisfied the stop condition instead of polling
        in time slices.  A no-op outside :meth:`run`.
        """
        self._stop_requested = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this absolute time.  The
                clock is advanced to ``until`` on exit (unless a callback
                called :meth:`stop` first).
            max_events: stop after this many events have fired.

        Returns:
            The number of events fired during this call.

        Raises:
            RuntimeError: if called from inside an event callback — the
                loop is not re-entrant.
        """
        if self._running:
            raise RuntimeError(
                "Simulator.run() is not re-entrant; "
                "use schedule()/stop() from within callbacks"
            )
        queue = self._queue
        pop = heappop
        horizon = _NEVER if until is None else until
        limit = _NEVER if max_events is None else max_events
        checker = self.checker
        profiler = self.profiler
        fired = 0
        self._stop_requested = False
        self._running = True
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    continue
                if event.time > horizon or fired >= limit:
                    break
                pop(queue)
                if checker is not None:
                    checker.on_advance(event.time, self.now)
                self.now = event.time
                fired += 1
                if profiler is not None:
                    profiler.on_event(event)
                event.fn(*event.args)
                if self._stop_requested:
                    break
        finally:
            self._events_fired += fired
            self._running = False
        if until is not None and not self._stop_requested and self.now < until:
            self.now = until
        return fired

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self.now = 0
        self._seq = 0
        self._events_fired = 0
        self._stop_requested = False
