"""Wheel-geometry autotuning (``scheduler="wheel:auto"``).

The calendar wheel has two knobs: slot width (``slot_ns_bits``) and slot
count (``num_slot_bits``).  The fixed defaults (4096 ns x 2048 slots)
were hand-picked for a 10 Gbps fabric at full time scale; scaled-down
grids (the golden/bench configs run at ``time_scale=0.05``) and faster
links shift the event-spacing distribution enough that the defaults
leave performance on the table — slots too wide batch unrelated events
into large sort buckets, slots too narrow make the cursor walk empty
space.

This module derives the geometry from first principles, deterministically
(pure functions of the config — recorded in results so a run is
reproducible from its summary alone):

* **slot width** — a few MTU serialization times on the *fastest* link in
  the topology, so one slot spans a port's back-to-back tx completions
  and the drain chain stays slot-local;
* **window** (slot width x slot count) — at least two RTO floors, so
  retransmission timers land in slots instead of the overflow heap, and
  at least one scaled millisecond for the periodic samplers.

:func:`refine_wheel_geometry` closes the loop with the profiler's
``wheel_stats()`` counters (``max_bucket``, ``cursor_jumps``) for offline
re-tuning; it is advisory and never consulted implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import TopologyConfig

MTU_BITS = 1500 * 8

#: Slot-width clamp: 64 ns (finer is pointless at integer-ns precision
#: with >= 1 ns propagation) .. 65536 ns (coarser batches whole RTTs).
MIN_SLOT_NS_BITS = 6
MAX_SLOT_NS_BITS = 16

#: Slot-count clamp: 256 slots (window too small below this for any RTO)
#: .. 16384 slots (1 MB of empty lists beyond this).
MIN_NUM_SLOT_BITS = 8
MAX_NUM_SLOT_BITS = 14

#: The TCP RTO floor the window must cover (see ``TcpFlow``'s
#: ``min_rto_ns``); scaled by the run's ``time_scale``.
RTO_FLOOR_NS = 10_000_000


@dataclass(frozen=True)
class WheelGeometry:
    """A concrete wheel shape plus the inputs that produced it."""

    slot_ns_bits: int
    num_slot_bits: int
    #: Fastest link rate the slot width was derived from (Gbps).
    fastest_link_gbps: float
    #: Time scale the window was derived from.
    time_scale: float

    @property
    def slot_ns(self) -> int:
        return 1 << self.slot_ns_bits

    @property
    def num_slots(self) -> int:
        return 1 << self.num_slot_bits

    @property
    def window_ns(self) -> int:
        return 1 << (self.slot_ns_bits + self.num_slot_bits)

    def to_dict(self) -> Dict:
        """JSON-friendly form, recorded in experiment results."""
        return {
            "slot_ns_bits": self.slot_ns_bits,
            "num_slot_bits": self.num_slot_bits,
            "slot_ns": self.slot_ns,
            "num_slots": self.num_slots,
            "window_ns": self.window_ns,
            "fastest_link_gbps": self.fastest_link_gbps,
            "time_scale": self.time_scale,
        }


def _clamp(value: int, lo: int, hi: int) -> int:
    return lo if value < lo else hi if value > hi else value


def fastest_link_gbps(config: "TopologyConfig") -> float:
    """The highest live link rate anywhere in the fabric (overrides can
    only lower spine links, but guard against raised ones anyway)."""
    fastest = max(config.host_link_gbps, config.spine_link_gbps)
    for rate in config.link_overrides.values():
        if rate > fastest:
            fastest = rate
    return fastest


def wheel_geometry_for(
    config: "TopologyConfig", time_scale: float = 1.0
) -> WheelGeometry:
    """Derive the wheel geometry for a topology + time scale.

    Deterministic: same inputs, same geometry, bit-identical runs.
    """
    rate_gbps = fastest_link_gbps(config)
    if rate_gbps <= 0:
        raise ValueError("topology has no positive link rate")
    # MTU serialization time on the fastest link, in ns.
    mtu_tx_ns = MTU_BITS / rate_gbps  # bits / (Gbps) == ns
    # Target: ~4 back-to-back MTUs per slot, rounded to the nearest
    # power of two (bit_length of the integer target is ceil(log2)+1 for
    # non-powers; subtracting 1 gives floor(log2), then round up when the
    # target sits in the upper half of the octave).
    target = max(1, int(4 * mtu_tx_ns))
    bits = target.bit_length() - 1
    if target - (1 << bits) > (1 << bits) // 2:
        bits += 1
    slot_ns_bits = _clamp(bits, MIN_SLOT_NS_BITS, MAX_SLOT_NS_BITS)
    # Window: cover two RTO floors (timers stay in slots) and never less
    # than one scaled millisecond (periodic samplers).
    window_target = max(int(2 * RTO_FLOOR_NS * time_scale), 1_000_000)
    span_bits = 0
    while (1 << (slot_ns_bits + span_bits)) < window_target:
        span_bits += 1
    num_slot_bits = _clamp(span_bits, MIN_NUM_SLOT_BITS, MAX_NUM_SLOT_BITS)
    return WheelGeometry(
        slot_ns_bits=slot_ns_bits,
        num_slot_bits=num_slot_bits,
        fastest_link_gbps=rate_gbps,
        time_scale=time_scale,
    )


def refine_wheel_geometry(
    geometry: WheelGeometry, wheel_stats: Dict, max_bucket_target: int = 512
) -> Optional[WheelGeometry]:
    """One offline refinement step from a finished run's counters.

    Returns an adjusted geometry, or ``None`` when the counters do not
    argue for a change:

    * ``max_bucket`` far above target → slots batch too many events;
      halve the slot width (same window: one more slot bit).
    * ``cursor_jumps``/``slots_opened`` dominated by empty advancement
      (more slots opened than events dispatched would justify) → slots
      too fine; double the width.

    Advisory only — ``wheel:auto`` derives its geometry statically so
    results never depend on a previous run.
    """
    max_bucket = wheel_stats.get("max_bucket", 0)
    slots_opened = max(1, wheel_stats.get("slots_opened", 0))
    jumps = wheel_stats.get("cursor_jumps", 0)
    if max_bucket > 2 * max_bucket_target:
        if geometry.slot_ns_bits > MIN_SLOT_NS_BITS:
            return WheelGeometry(
                slot_ns_bits=geometry.slot_ns_bits - 1,
                num_slot_bits=_clamp(
                    geometry.num_slot_bits + 1,
                    MIN_NUM_SLOT_BITS,
                    MAX_NUM_SLOT_BITS,
                ),
                fastest_link_gbps=geometry.fastest_link_gbps,
                time_scale=geometry.time_scale,
            )
        return None
    if jumps > slots_opened // 2 and max_bucket < max_bucket_target // 4:
        if geometry.slot_ns_bits < MAX_SLOT_NS_BITS:
            return WheelGeometry(
                slot_ns_bits=geometry.slot_ns_bits + 1,
                num_slot_bits=_clamp(
                    geometry.num_slot_bits - 1,
                    MIN_NUM_SLOT_BITS,
                    MAX_NUM_SLOT_BITS,
                ),
                fastest_link_gbps=geometry.fastest_link_gbps,
                time_scale=geometry.time_scale,
            )
    return None
