"""Discrete-event simulation engine.

The engine is deliberately tiny: an integer-nanosecond clock, a cancellable
event queue (binary heap or slotted timer wheel — see
:data:`repro.sim.SCHEDULERS`), and seeded random-number streams.  All
higher layers (network, transport, load balancers) are built on top of it.
"""

from repro.sim.engine import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    Event,
    Simulator,
    WheelSimulator,
    make_simulator,
    resolve_scheduler,
    scheduler_forced,
)
from repro.sim.rng import RngStreams
from repro.sim.tuning import (
    WheelGeometry,
    refine_wheel_geometry,
    wheel_geometry_for,
)

__all__ = [
    "Event",
    "Simulator",
    "WheelSimulator",
    "RngStreams",
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "WheelGeometry",
    "make_simulator",
    "refine_wheel_geometry",
    "resolve_scheduler",
    "scheduler_forced",
    "wheel_geometry_for",
]
