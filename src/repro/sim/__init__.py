"""Discrete-event simulation engine.

The engine is deliberately tiny: an integer-nanosecond clock, a cancellable
event queue (binary heap or slotted timer wheel — see
:data:`repro.sim.SCHEDULERS`), and seeded random-number streams.  All
higher layers (network, transport, load balancers) are built on top of it.
"""

from repro.sim.engine import (
    SCHEDULERS,
    Event,
    Simulator,
    WheelSimulator,
    make_simulator,
    resolve_scheduler,
    scheduler_forced,
)
from repro.sim.rng import RngStreams

__all__ = [
    "Event",
    "Simulator",
    "WheelSimulator",
    "RngStreams",
    "SCHEDULERS",
    "make_simulator",
    "resolve_scheduler",
    "scheduler_forced",
]
