"""Discrete-event simulation engine.

The engine is deliberately tiny: an integer-nanosecond clock, a binary-heap
event queue with cancellable events, and seeded random-number streams.  All
higher layers (network, transport, load balancers) are built on top of it.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Event", "Simulator", "RngStreams"]
