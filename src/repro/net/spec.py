"""Declarative topology specifications.

A :class:`TopologySpec` describes a fabric *shape* without building it:
what switches exist, how hosts attach, and — the part the sharded runner
needs — how the fabric partitions into spatial shards whose only
coupling is propagation delay (see :mod:`repro.shard`).  ``build()``
turns the spec into the wired topology object a :class:`Fabric` forwards
through.

Two specs ship today:

* :class:`LeafSpineSpec` — the paper's two-tier fabric, wrapping the
  existing :class:`~repro.net.topology.TopologyConfig` (which stays the
  config-file / cache-key representation);
* :class:`ClosSpec` — a three-tier pod-based Clos (leaf → aggregation →
  core), the CAFT-motivated shape that only becomes tractable with
  shards.

``Fabric`` accepts either a ``TopologyConfig`` (coerced through
:func:`as_topology_spec`, so every existing call site keeps working) or
a spec directly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Tuple, TYPE_CHECKING

from repro.net.topology import LeafSpineTopology, TopologyConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator


def _chunk_leaves(n_leaves: int, n_shards: int) -> Tuple[Tuple[int, ...], ...]:
    """Split ``n_leaves`` leaf indices into ``n_shards`` contiguous,
    near-equal groups (first shards take the remainder)."""
    if not 1 <= n_shards <= n_leaves:
        raise ValueError(
            f"n_shards must be in [1, {n_leaves}], got {n_shards}"
        )
    base, extra = divmod(n_leaves, n_shards)
    groups = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)


class TopologySpec:
    """Base class: a declarative fabric description.

    Subclasses define the shape (``n_hosts``/``n_leaves``/``leaf_of``),
    how to wire it (``build``), and how it cuts into shards
    (``shard_plan``).  The spec itself owns no simulator state — the same
    spec object can build any number of independent fabrics, which is
    exactly what each shard worker does.
    """

    #: Registry key used by :meth:`to_dict` / :func:`spec_from_dict`.
    kind: str = ""

    #: Subclasses provide ``hosts_per_leaf`` and ``prop_delay_ns`` as
    #: attributes or properties (plain class attributes here, so a
    #: frozen-dataclass subclass may define them as fields).
    #: ``prop_delay_ns`` — the delay of every inter-switch link — is the
    #: conservative lookahead window of the sharded runner.
    hosts_per_leaf: int = 0
    prop_delay_ns: int = 0

    @property
    def n_hosts(self) -> int:
        raise NotImplementedError

    @property
    def n_leaves(self) -> int:
        raise NotImplementedError

    def leaf_of(self, host: int) -> int:
        return host // self.hosts_per_leaf

    def hosts_of_leaf(self, leaf: int) -> range:
        k = self.hosts_per_leaf
        return range(leaf * k, (leaf + 1) * k)

    def build(self, sim: "Simulator", forward: Callable[["Packet"], None]):
        """Wire the fabric: returns the topology object (ports + routing)."""
        raise NotImplementedError

    def shard_plan(self, n_shards: int) -> Tuple[Tuple[int, ...], ...]:
        """Partition the leaves into ``n_shards`` groups such that every
        intra-group route stays inside the group and every inter-group
        route crosses exactly one uplink→downlink hop (the boundary the
        sharded runner serializes packets across)."""
        raise NotImplementedError

    def to_dict(self) -> Dict:
        raise NotImplementedError


@dataclass(frozen=True)
class LeafSpineSpec(TopologySpec):
    """The paper's two-tier leaf–spine fabric, as a spec.

    Wraps :class:`~repro.net.topology.TopologyConfig`: the config remains
    the serialized / cache-keyed form, the spec adds the shard-aware
    construction surface.
    """

    config: TopologyConfig = field(default_factory=TopologyConfig)
    kind = "leaf-spine"

    @property
    def n_hosts(self) -> int:
        return self.config.n_hosts

    @property
    def n_leaves(self) -> int:
        return self.config.n_leaves

    @property
    def hosts_per_leaf(self) -> int:
        return self.config.hosts_per_leaf

    @property
    def prop_delay_ns(self) -> int:
        return self.config.prop_delay_ns

    def build(self, sim: "Simulator", forward: Callable[["Packet"], None]):
        return LeafSpineTopology(sim, self.config, forward)

    def shard_plan(self, n_shards: int) -> Tuple[Tuple[int, ...], ...]:
        # Any leaf partition works: every inter-leaf route is
        # host→leaf→spine→leaf→host, and the spine hop is the cut —
        # the leaf_up port is owned by the source shard, the spine's
        # downlink (and everything after it) by the destination shard.
        return _chunk_leaves(self.config.n_leaves, n_shards)

    def to_dict(self) -> Dict:
        d = asdict(self.config)
        d["link_overrides"] = {
            f"{leaf},{spine}": rate
            for (leaf, spine), rate in self.config.link_overrides.items()
        }
        return {"kind": self.kind, "config": d}

    @classmethod
    def from_dict(cls, data: Dict) -> "LeafSpineSpec":
        cfg = dict(data["config"])
        overrides = {
            tuple(int(x) for x in key.split(",")): rate
            for key, rate in cfg.pop("link_overrides", {}).items()
        }
        return cls(TopologyConfig(link_overrides=overrides, **cfg))


@dataclass(frozen=True)
class ClosSpec(TopologySpec):
    """A three-tier pod-based Clos fabric.

    ``pods`` pods, each with ``leaves_per_pod`` leaf switches and
    ``aggs_per_pod`` aggregation switches (full leaf↔agg mesh inside the
    pod); ``n_cores`` core switches, each connected to every aggregation
    switch (flattened agg↔core mesh).  Path identifiers:

    * intra-rack: ``-1`` (host→leaf→host, no fabric hop);
    * intra-pod:  the aggregation index ``a`` in ``[0, aggs_per_pod)``;
    * inter-pod:  ``a * n_cores + c`` — up through agg ``a`` and core
      ``c``, down through the *same* agg index in the destination pod
      (symmetric up/down, so a path id names one deterministic route).
    """

    pods: int = 2
    leaves_per_pod: int = 2
    aggs_per_pod: int = 2
    n_cores: int = 2
    hosts_per_leaf: int = 4
    host_link_gbps: float = 10.0
    fabric_link_gbps: float = 10.0
    prop_delay_ns: int = 1_000
    buffer_bytes: int = 750_000
    ecn_threshold_bytes: int = 97_500
    dre_tau_ns: int = 100_000

    kind = "clos3"

    def __post_init__(self) -> None:
        if min(
            self.pods, self.leaves_per_pod, self.aggs_per_pod,
            self.n_cores, self.hosts_per_leaf,
        ) < 1:
            raise ValueError("clos dimensions must be positive")

    # `hosts_per_leaf` / `prop_delay_ns` are plain dataclass fields here,
    # shadowing the base-class properties by design.

    @property
    def n_leaves(self) -> int:
        return self.pods * self.leaves_per_pod

    @property
    def n_hosts(self) -> int:
        return self.n_leaves * self.hosts_per_leaf

    def pod_of_leaf(self, leaf: int) -> int:
        return leaf // self.leaves_per_pod

    def build(self, sim: "Simulator", forward: Callable[["Packet"], None]):
        from repro.net.clos import ClosTopology

        return ClosTopology(sim, self, forward)

    def shard_plan(self, n_shards: int) -> Tuple[Tuple[int, ...], ...]:
        # Pods are the natural cut: intra-pod routes never leave the pod,
        # so grouping whole pods keeps the boundary at the agg→core hop.
        if not 1 <= n_shards <= self.pods:
            raise ValueError(
                f"n_shards must be in [1, {self.pods}] for a "
                f"{self.pods}-pod clos, got {n_shards}"
            )
        pod_groups = _chunk_leaves(self.pods, n_shards)
        return tuple(
            tuple(
                leaf
                for pod in pods
                for leaf in range(
                    pod * self.leaves_per_pod, (pod + 1) * self.leaves_per_pod
                )
            )
            for pods in pod_groups
        )

    def to_dict(self) -> Dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, data: Dict) -> "ClosSpec":
        data = {k: v for k, v in data.items() if k != "kind"}
        return cls(**data)


_SPEC_KINDS = {
    LeafSpineSpec.kind: LeafSpineSpec,
    ClosSpec.kind: ClosSpec,
}


def spec_from_dict(data: Dict) -> TopologySpec:
    """Rebuild a spec serialized with ``to_dict`` (dispatch on ``kind``)."""
    try:
        kind = data["kind"]
        cls = _SPEC_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_SPEC_KINDS))
        raise ValueError(
            f"unknown topology spec kind {data.get('kind')!r}; known: {known}"
        ) from None
    return cls.from_dict(data)


def as_topology_spec(topology) -> TopologySpec:
    """Coerce what call sites historically pass (a ``TopologyConfig``)
    or a spec into a :class:`TopologySpec`."""
    if isinstance(topology, TopologySpec):
        return topology
    if isinstance(topology, TopologyConfig):
        return LeafSpineSpec(topology)
    raise TypeError(
        f"expected TopologySpec or TopologyConfig, got {type(topology).__name__}"
    )
