"""Switch failure injection.

Reproduces the two Microsoft-reported switch malfunctions the paper
evaluates (§2.1, §5.3.3):

* **silent random packet drops** — the switch drops packets silently at a
  high rate (e.g. 2%), regardless of flow;
* **packet blackholes** — packets matching certain (source, destination)
  patterns are dropped deterministically (100%).

Both attach as drop predicates on the *downlink ports of one spine
switch*: every packet crossing a spine uses exactly one of its downlinks,
so this drops traffic exactly as a malfunctioning spine would — invisibly,
with no link-down signal any routing layer could observe.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Set, Tuple, TYPE_CHECKING

from repro.net.packet import Packet
from repro.net.topology import LeafSpineTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import OutputPort


class _RevocableFailure:
    """Base for drop-predicate failures: installable and *uninstallable*.

    The dynamic fault plane (:mod:`repro.faults`) reverts failures
    mid-run, so every handle remembers which ports it attached to and can
    remove itself again.  Static t=0 installation keeps working unchanged.
    """

    def __init__(self) -> None:
        self.dropped = 0
        self._ports: List["OutputPort"] = []

    def install(self, topology: LeafSpineTopology, spine: int) -> None:
        """Attach to every downlink of ``spine``."""
        for port in topology.spine_ports(spine):
            port.drop_predicates.append(self)
            self._ports.append(port)

    def uninstall(self) -> None:
        """Detach from every port this handle was installed on (idempotent)."""
        for port in self._ports:
            try:
                port.drop_predicates.remove(self)
            except ValueError:
                pass
        self._ports.clear()

    @property
    def installed(self) -> bool:
        return bool(self._ports)


class RandomDropFailure(_RevocableFailure):
    """Silent random packet drops at a switch.

    Args:
        drop_rate: per-packet drop probability (e.g. ``0.02``).
        rng: dedicated random stream (failure draws never perturb other
            stochastic components).
    """

    def __init__(self, drop_rate: float, rng: random.Random) -> None:
        super().__init__()
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {drop_rate}")
        self.drop_rate = drop_rate
        self.rng = rng

    def __call__(self, packet: Packet, now: int) -> bool:
        if self.rng.random() < self.drop_rate:
            self.dropped += 1
            return True
        return False


class BlackholeFailure(_RevocableFailure):
    """Deterministic drops for a set of (src, dst) host pairs.

    Models TCAM-deficit blackholes: packets whose (source, destination)
    matches the pattern are dropped 100% of the time; everything else
    passes untouched.
    """

    def __init__(self, pairs: Iterable[Tuple[int, int]]) -> None:
        super().__init__()
        self.pairs: FrozenSet[Tuple[int, int]] = frozenset(pairs)

    def __call__(self, packet: Packet, now: int) -> bool:
        if (packet.src, packet.dst) in self.pairs:
            self.dropped += 1
            return True
        return False


def blackhole_pairs_between_racks(
    topology: LeafSpineTopology,
    src_leaf: int,
    dst_leaf: int,
    fraction: float,
    rng: random.Random,
) -> Set[Tuple[int, int]]:
    """Pick ``fraction`` of (src, dst) host pairs from one rack to another.

    The paper's Fig. 17 blackholes *half* of the source–destination IP
    pairs from rack 1 to rack 8 on one randomly selected spine.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    pairs = [
        (s, d)
        for s in topology.hosts_of_leaf(src_leaf)
        for d in topology.hosts_of_leaf(dst_leaf)
    ]
    count = int(round(fraction * len(pairs)))
    return set(rng.sample(pairs, count))
