"""Output port: a strict-priority drop-tail queue feeding a serializing link.

Each port models one directed link of the fabric: the switch/host output
queue, the serialization delay (``size * 8 / rate``), and the propagation
delay.  ECN CE marking happens at enqueue when the instantaneous backlog
exceeds the marking threshold, which is how commodity switches implement
DCTCP-style marking.

The port also keeps a DRE (Discounting Rate Estimator) — the exponentially
decayed byte counter CONGA uses to estimate link utilization — implemented
lazily (decay computed on read) so it costs no timer events.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.net.packet import Packet, PacketKind
from repro.sim.engine import _HOOK_DEPRECATION

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Number of strict priority levels (0 = highest).
NUM_PRIORITIES = 2

#: CONGA quantizes DRE utilization to 3 bits.
DRE_QUANTA = 7


class _DropPredicateList(list):
    """A ``list`` that keeps its port's fast-path flag honest.

    Failure injection mutates ``port.drop_predicates`` directly
    (``append``/``remove``); routing every mutation through the port
    would break the public surface, so the list itself notifies the port
    — the enqueue hot path then needs only one precomputed boolean
    (``_guarded``) instead of re-deriving "is anything watching?" per
    packet.
    """

    __slots__ = ("_port",)

    def __init__(self, port: "OutputPort") -> None:
        super().__init__()
        self._port = port

    def append(self, item) -> None:
        super().append(item)
        self._port._refresh_fast_path()

    def extend(self, items) -> None:
        super().extend(items)
        self._port._refresh_fast_path()

    def insert(self, index, item) -> None:
        super().insert(index, item)
        self._port._refresh_fast_path()

    def remove(self, item) -> None:
        super().remove(item)
        self._port._refresh_fast_path()

    def pop(self, index=-1):
        item = super().pop(index)
        self._port._refresh_fast_path()
        return item

    def clear(self) -> None:
        super().clear()
        self._port._refresh_fast_path()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._port._refresh_fast_path()


class OutputPort:
    """A unidirectional link with a strict-priority drop-tail queue.

    Args:
        sim: the event engine.
        name: human-readable name, e.g. ``"leaf0->spine2"``.
        rate_bps: link rate in bits/second.
        prop_delay_ns: propagation delay in nanoseconds.
        buffer_bytes: shared buffer across priorities; excess is dropped.
        ecn_threshold_bytes: CE-mark arriving ECN-capable packets when the
            backlog exceeds this (0 disables marking).
        forward: callback invoked when a packet has fully arrived at the
            other end of the link.
        dre_tau_ns: time constant of the DRE utilization estimator.
    """

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "_rate_num",
        "_rate_den",
        "_tx_cache",
        "_schedule",
        "_schedule_pooled",
        "_reschedule",
        "_guarded",
        "_tx_event",
        "_inflight",
        "prop_delay_ns",
        "buffer_bytes",
        "ecn_threshold_bytes",
        "forward",
        "_queues",
        "backlog_bytes",
        "busy",
        "admin_down",
        "drop_predicates",
        "bytes_sent",
        "pkts_sent",
        "drops_overflow",
        "drops_injected",
        "drops_linkdown",
        "max_backlog",
        "dre_tau_ns",
        "_dre_value",
        "_dre_last",
        "data_bytes_enqueued",
        "ecn_marks",
        "_checker",
        "_tracer",
    )

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        rate_bps: float,
        prop_delay_ns: int,
        buffer_bytes: int,
        ecn_threshold_bytes: int,
        forward: Optional[Callable[[Packet], None]] = None,
        dre_tau_ns: int = 100_000,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        # Exact serialization time: express the (possibly float) rate as
        # an exact integer ratio so tx times are pure integer arithmetic —
        # bit-reproducible across platforms, as the engine promises.  The
        # common case (integral bps) has den == 1.
        self._rate_num, self._rate_den = rate_bps.as_integer_ratio()
        self._tx_cache: dict = {}
        self._schedule = sim.schedule  # bound-method cache for the hot path
        self._schedule_pooled = sim.schedule_pooled
        self._reschedule = sim.reschedule
        # Batched tx chain: one persistent completion event is re-armed
        # for every packet this port serializes (no per-packet Event
        # allocation); the packet on the wire rides in ``_inflight``.
        self._tx_event = None
        self._inflight: Optional[Packet] = None
        self.prop_delay_ns = prop_delay_ns
        self.buffer_bytes = buffer_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.forward = forward
        self._queues: List[deque] = [deque() for _ in range(NUM_PRIORITIES)]
        self.backlog_bytes = 0
        self.busy = False
        #: Admin-down (scheduled ``link_down``): new arrivals are dropped,
        #: queued packets stall, the in-flight packet drains normally.
        self.admin_down = False
        self.drop_predicates: List[Callable[[Packet, int], bool]] = (
            _DropPredicateList(self)
        )
        # Statistics.
        self.bytes_sent = 0
        self.pkts_sent = 0
        self.drops_overflow = 0
        self.drops_injected = 0
        self.drops_linkdown = 0
        self.max_backlog = 0
        self.data_bytes_enqueued = 0
        self.ecn_marks = 0
        # DRE state.
        self.dre_tau_ns = dre_tau_ns
        self._dre_value = 0.0
        self._dre_last = 0
        #: Optional invariant checker (see :mod:`repro.validate`); one
        #: ``is not None`` branch per enqueue/dequeue when disabled.
        #: Attach via :class:`repro.hooks.HookSet`.
        self._checker = None
        #: Optional tracer (see :mod:`repro.telemetry`): receives drop
        #: callbacks; same nullable zero-cost pattern.
        self._tracer = None
        #: Precomputed "anything watching or failing?" flag: True while
        #: admin-down, drop predicates, a checker or a tracer require the
        #: slow enqueue path.  Kept honest by _refresh_fast_path(),
        #: called from every site that flips one of those inputs.
        self._guarded = False

    # ------------------------------------------------------------------ #
    # Legacy hook attributes (read-only; assignment is a hard error)
    # ------------------------------------------------------------------ #

    @property
    def checker(self):
        """The attached invariant checker (read-only view; attach via
        :class:`repro.hooks.HookSet`)."""
        return self._checker

    @checker.setter
    def checker(self, value) -> None:
        raise AttributeError(_HOOK_DEPRECATION)

    @property
    def tracer(self):
        """The attached tracer (read-only view; attach via
        :class:`repro.hooks.HookSet`)."""
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        raise AttributeError(_HOOK_DEPRECATION)

    def _refresh_fast_path(self) -> None:
        """Recompute the enqueue guard flag.  Every input that can force
        the slow path funnels through here: admin state, failure
        predicates, and hook attachment (including the HookSet layer)."""
        self._guarded = (
            self.admin_down
            or bool(self.drop_predicates)
            or self._checker is not None
            or self._tracer is not None
        )

    # ------------------------------------------------------------------ #
    # Enqueue / transmit
    # ------------------------------------------------------------------ #

    def tx_time_ns(self, size_bytes: int) -> int:
        """Serialization delay for ``size_bytes`` on this link.

        Computed as ``size_bytes * 8 * 10**9 // rate`` in exact integer
        arithmetic (the rate's exact num/den ratio), so the result is
        identical on every platform regardless of FPU behaviour.  Packet
        sizes repeat constantly, so results are memoized per port.
        """
        tx = self._tx_cache.get(size_bytes)
        if tx is None:
            tx = size_bytes * 8_000_000_000 * self._rate_den // self._rate_num
            self._tx_cache[size_bytes] = tx
        return tx

    def enqueue(self, packet: Packet) -> bool:
        """Accept a packet into the queue.

        Returns ``False`` if the packet was dropped (buffer overflow or an
        injected failure); the caller never learns which — exactly like a
        real network, losses surface only through transport timeouts.

        The common case — link up, no failure predicates, no hooks — is
        precomputed into ``_guarded`` so the hot path pays one local
        truthiness check instead of four attribute probes per packet.
        Check order (overflow, then ECN) matches the guarded path
        exactly, so results are identical.
        """
        if self._guarded:
            return self._enqueue_guarded(packet)
        size = packet.size
        backlog = self.backlog_bytes + size
        if backlog > self.buffer_bytes:
            self.drops_overflow += 1
            return False
        if (
            self.ecn_threshold_bytes > 0
            and packet.ecn_capable
            and self.backlog_bytes >= self.ecn_threshold_bytes
        ):
            packet.ce = True
            self.ecn_marks += 1
        self.backlog_bytes = backlog
        if backlog > self.max_backlog:
            self.max_backlog = backlog
        kind = packet.kind
        if kind == PacketKind.DATA or kind == PacketKind.UDP:
            self.data_bytes_enqueued += size
        self._queues[packet.priority].append(packet)
        if not self.busy:
            self._start_next()
        return True

    def _enqueue_guarded(self, packet: Packet) -> bool:
        """Full enqueue: admin state, failure predicates, hooks."""
        if self.admin_down:
            self.drops_linkdown += 1
            if self._checker is not None:
                self._checker.on_injected_drop(self, packet)
            if self._tracer is not None:
                self._tracer.on_drop(self, packet, "link-down")
            return False
        if self.drop_predicates:
            now = self.sim.now
            for predicate in self.drop_predicates:
                if predicate(packet, now):
                    self.drops_injected += 1
                    if self._checker is not None:
                        self._checker.on_injected_drop(self, packet)
                    if self._tracer is not None:
                        self._tracer.on_drop(self, packet, "injected")
                    return False
        size = packet.size
        backlog = self.backlog_bytes + size
        if backlog > self.buffer_bytes:
            self.drops_overflow += 1
            if self._checker is not None:
                self._checker.on_overflow_drop(self, packet)
            if self._tracer is not None:
                self._tracer.on_drop(self, packet, "overflow")
            return False
        if (
            self.ecn_threshold_bytes > 0
            and packet.ecn_capable
            and self.backlog_bytes >= self.ecn_threshold_bytes
        ):
            packet.ce = True
            self.ecn_marks += 1
        self.backlog_bytes = backlog
        if backlog > self.max_backlog:
            self.max_backlog = backlog
        kind = packet.kind
        if kind == PacketKind.DATA or kind == PacketKind.UDP:
            self.data_bytes_enqueued += size
        self._queues[packet.priority].append(packet)
        if self._checker is not None:
            self._checker.on_enqueued(self, packet, backlog - size)
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        """Begin serializing the head-of-line packet (strict priority).

        Draining a burst is a *batched* chain: one persistent completion
        event per port, re-armed in place for each successive packet
        (an in-slot append on the wheel engine) instead of a freshly
        allocated event per packet.  Sequence numbers are still drawn
        one per arming, so dispatch order — and results — are identical
        to the unbatched scheme.
        """
        if self.admin_down:
            # Queued packets stall until the link is admin-up again.
            self.busy = False
            return
        for queue in self._queues:
            if queue:
                packet = queue.popleft()
                self.busy = True
                self._inflight = packet
                event = self._tx_event
                if event is None:
                    self._tx_event = self._schedule(
                        self.tx_time_ns(packet.size), self._tx_done
                    )
                else:
                    self._reschedule(event, self.tx_time_ns(packet.size))
                return
        self.busy = False
        self._inflight = None

    def _tx_done(self) -> None:
        """The last bit has left: account, stamp DRE, propagate."""
        packet = self._inflight
        size = packet.size
        self.backlog_bytes -= size
        self.bytes_sent += size
        self.pkts_sent += 1
        self._dre_add(size)
        kind = packet.kind
        if kind == PacketKind.DATA or kind == PacketKind.UDP:
            metric = self.dre_quantized()
            if metric > packet.conga_metric:
                packet.conga_metric = metric
        if self._checker is not None:
            self._checker.on_tx_done(self, packet)
        if self.forward is not None:
            # Fire-and-forget: nobody holds the propagation event handle,
            # so it cycles through the engine's free list.
            self._schedule_pooled(self.prop_delay_ns, self.forward, packet)
        self._start_next()

    # ------------------------------------------------------------------ #
    # Runtime reconfiguration (the dynamic fault plane)
    # ------------------------------------------------------------------ #

    def set_rate(self, rate_bps: float) -> None:
        """Change the link rate at the current instant.

        Takes effect for the *next* packet to start serializing; the
        packet already on the wire finishes at its old rate (its tx-done
        event is committed).  The memoized serialization times are
        recomputed lazily from the new exact integer ratio.
        """
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if rate_bps == self.rate_bps:
            return
        self.rate_bps = rate_bps
        self._rate_num, self._rate_den = rate_bps.as_integer_ratio()
        self._tx_cache.clear()

    def set_admin_down(self, down: bool) -> None:
        """Take the link administratively down (or bring it back up).

        Down: new arrivals are dropped (no carrier), already-queued
        packets stall in place, and the packet currently serializing
        drains normally — deterministic, no event cancellation.  Up:
        transmission of the stalled backlog resumes immediately.
        """
        if down == self.admin_down:
            return
        self.admin_down = down
        self._refresh_fast_path()
        if not down and not self.busy:
            self._start_next()

    def divert_propagation(
        self, sink: Callable[[int, Callable[[Packet], None], Packet], None]
    ) -> None:
        """Intercept this port's post-serialization propagation.

        Normally :meth:`_tx_done` hands the serialized packet to
        ``sim.schedule_pooled(prop_delay_ns, forward, packet)``.  After
        diversion, ``sink(prop_delay_ns, forward, packet)`` is called
        instead, at the same instant, with the same arguments — the sink
        decides whether the packet propagates locally or is serialized
        across a shard boundary (see :class:`repro.shard.BoundaryLink`).
        Pass ``None`` to restore the engine's scheduler.
        """
        self._schedule_pooled = (
            self.sim.schedule_pooled if sink is None else sink
        )

    # ------------------------------------------------------------------ #
    # DRE utilization estimator (CONGA §4; lazy exponential decay)
    # ------------------------------------------------------------------ #

    def _dre_decay(self, now: int) -> None:
        dt = now - self._dre_last
        if dt > 0:
            self._dre_value *= math.exp(-dt / self.dre_tau_ns)
            self._dre_last = now

    def _dre_add(self, size_bytes: int) -> None:
        self._dre_decay(self.sim.now)
        self._dre_value += size_bytes

    def dre_utilization(self) -> float:
        """Estimated utilization in [0, ~1+]: decayed bytes over ``tau * C``."""
        self._dre_decay(self.sim.now)
        capacity_bytes = self.rate_bps / 8.0 * (self.dre_tau_ns / 1e9)
        return self._dre_value / capacity_bytes

    def dre_quantized(self) -> int:
        """3-bit quantized utilization, the metric CONGA carries."""
        util = self.dre_utilization()
        return min(DRE_QUANTA, int(util * DRE_QUANTA + 0.5))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def total_drops(self) -> int:
        """All losses at this port, injected failures included."""
        return self.drops_overflow + self.drops_injected + self.drops_linkdown

    def utilization_since(self, start_ns: int, bytes_at_start: int) -> float:
        """Average utilization between ``start_ns`` and now."""
        elapsed = self.sim.now - start_ns
        if elapsed <= 0:
            return 0.0
        sent = self.bytes_sent - bytes_at_start
        return sent * 8 * 1e9 / (self.rate_bps * elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutputPort({self.name} {self.rate_bps / 1e9:.1f}Gbps "
            f"backlog={self.backlog_bytes}B)"
        )
