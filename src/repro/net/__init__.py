"""Network substrate: packets, queues, links, switches, topology, failures.

The fabric is modelled as a graph of unidirectional *output ports* (a queue
plus a serializing link).  Packets carry an explicit route — the ordered
tuple of ports they will traverse — which reproduces XPath-style explicit
path control: the sender pins the path, switches never re-hash.
"""

from repro.net.packet import Packet, PacketKind
from repro.net.port import OutputPort
from repro.net.topology import LeafSpineTopology, TopologyConfig
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.failures import BlackholeFailure, RandomDropFailure

__all__ = [
    "Packet",
    "PacketKind",
    "OutputPort",
    "LeafSpineTopology",
    "TopologyConfig",
    "Fabric",
    "Host",
    "BlackholeFailure",
    "RandomDropFailure",
]
