"""Three-tier pod-based Clos topology (built from :class:`ClosSpec`).

Wiring (see :class:`repro.net.spec.ClosSpec` for the path-id scheme):

* ``host_up[h]`` / ``leaf_down[h]`` — edge links, exactly as leaf–spine;
* ``leaf_up[g][a]`` — leaf ``g`` (global index) → aggregation ``a`` of
  its pod;
* ``agg_down[p][a][l]`` — aggregation ``a`` of pod ``p`` → leaf ``l``
  (pod-local index);
* ``agg_up[p][a][c]`` — aggregation ``a`` of pod ``p`` → core ``c``;
* ``core_down[c][p][a]`` — core ``c`` → aggregation ``a`` of pod ``p``.

The routing surface matches :class:`~repro.net.topology.LeafSpineTopology`
(``leaf_of`` / ``paths`` / ``route`` / ``uplink_ports`` / ``all_ports``),
so transports — and schemes that only consume that surface — run
unchanged on either fabric.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.port import OutputPort
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.spec import ClosSpec

GBPS = 1e9


class ClosTopology:
    """The wired three-tier fabric: ports, path enumeration, routes."""

    def __init__(
        self,
        sim: Simulator,
        spec: "ClosSpec",
        forward: Callable[["Packet"], None],
    ) -> None:
        self.sim = sim
        self.config = spec
        self.spec = spec

        def port(name: str, rate_gbps: float) -> OutputPort:
            # Same DCTCP guideline as leaf–spine: K ∝ C.
            ecn_k = max(15_000, int(spec.ecn_threshold_bytes * rate_gbps / 10.0))
            return OutputPort(
                sim,
                name,
                rate_gbps * GBPS,
                spec.prop_delay_ns,
                spec.buffer_bytes,
                ecn_k,
                forward=forward,
                dre_tau_ns=spec.dre_tau_ns,
            )

        P, L, A, C = spec.pods, spec.leaves_per_pod, spec.aggs_per_pod, spec.n_cores
        self.host_up: List[OutputPort] = [
            port(f"host{h}->leaf{self.leaf_of(h)}", spec.host_link_gbps)
            for h in range(spec.n_hosts)
        ]
        self.leaf_down: List[OutputPort] = [
            port(f"leaf{self.leaf_of(h)}->host{h}", spec.host_link_gbps)
            for h in range(spec.n_hosts)
        ]
        self.leaf_up: List[List[OutputPort]] = [
            [
                port(f"leaf{g}->agg{g // L}.{a}", spec.fabric_link_gbps)
                for a in range(A)
            ]
            for g in range(spec.n_leaves)
        ]
        self.agg_down: List[List[List[OutputPort]]] = [
            [
                [
                    port(f"agg{p}.{a}->leaf{p * L + l}", spec.fabric_link_gbps)
                    for l in range(L)
                ]
                for a in range(A)
            ]
            for p in range(P)
        ]
        self.agg_up: List[List[List[OutputPort]]] = [
            [
                [
                    port(f"agg{p}.{a}->core{c}", spec.fabric_link_gbps)
                    for c in range(C)
                ]
                for a in range(A)
            ]
            for p in range(P)
        ]
        self.core_down: List[List[List[OutputPort]]] = [
            [
                [
                    port(f"core{c}->agg{p}.{a}", spec.fabric_link_gbps)
                    for a in range(A)
                ]
                for p in range(P)
            ]
            for c in range(C)
        ]

        self._paths_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._route_cache: Dict[Tuple[int, int, int], Tuple[OutputPort, ...]] = {}

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #

    def leaf_of(self, host: int) -> int:
        """Global leaf index (``pod * leaves_per_pod + local_leaf``)."""
        return host // self.config.hosts_per_leaf

    def hosts_of_leaf(self, leaf: int) -> range:
        k = self.config.hosts_per_leaf
        return range(leaf * k, (leaf + 1) * k)

    def pod_of_leaf(self, leaf: int) -> int:
        return leaf // self.config.leaves_per_pod

    # ------------------------------------------------------------------ #
    # Path enumeration and routing
    # ------------------------------------------------------------------ #

    def paths(self, src_leaf: int, dst_leaf: int) -> Tuple[int, ...]:
        """Path ids between two leaves: agg indices inside a pod,
        ``a * n_cores + c`` across pods, ``(-1,)`` same leaf."""
        if src_leaf == dst_leaf:
            return (-1,)
        key = (src_leaf, dst_leaf)
        cached = self._paths_cache.get(key)
        if cached is None:
            spec = self.config
            if self.pod_of_leaf(src_leaf) == self.pod_of_leaf(dst_leaf):
                cached = tuple(range(spec.aggs_per_pod))
            else:
                cached = tuple(
                    a * spec.n_cores + c
                    for a in range(spec.aggs_per_pod)
                    for c in range(spec.n_cores)
                )
            self._paths_cache[key] = cached
        return cached

    def paths_between_hosts(self, src: int, dst: int) -> Tuple[int, ...]:
        return self.paths(self.leaf_of(src), self.leaf_of(dst))

    def route(self, src: int, dst: int, path_id: int) -> Tuple[OutputPort, ...]:
        key = (src, dst, path_id)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            raise ValueError("cannot route a packet to its own host")
        spec = self.config
        L = spec.leaves_per_pod
        src_leaf = self.leaf_of(src)
        dst_leaf = self.leaf_of(dst)
        src_pod, dst_pod = src_leaf // L, dst_leaf // L
        dst_local = dst_leaf % L
        if src_leaf == dst_leaf:
            route: Tuple[OutputPort, ...] = (self.host_up[src], self.leaf_down[dst])
        elif src_pod == dst_pod:
            a = path_id
            if not 0 <= a < spec.aggs_per_pod:
                raise ValueError(
                    f"intra-pod path {path_id} outside [0, {spec.aggs_per_pod})"
                )
            route = (
                self.host_up[src],
                self.leaf_up[src_leaf][a],
                self.agg_down[src_pod][a][dst_local],
                self.leaf_down[dst],
            )
        else:
            a, c = divmod(path_id, spec.n_cores)
            if not 0 <= a < spec.aggs_per_pod:
                raise ValueError(
                    f"inter-pod path {path_id} outside "
                    f"[0, {spec.aggs_per_pod * spec.n_cores})"
                )
            route = (
                self.host_up[src],
                self.leaf_up[src_leaf][a],
                self.agg_up[src_pod][a][c],
                self.core_down[c][dst_pod][a],
                self.agg_down[dst_pod][a][dst_local],
                self.leaf_down[dst],
            )
        self._route_cache[key] = route
        return route

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def uplink_ports(self, leaf: int) -> List[Tuple[int, OutputPort]]:
        """(agg index, port) uplinks of a leaf."""
        return list(enumerate(self.leaf_up[leaf]))

    def all_ports(self) -> List[OutputPort]:
        ports: List[OutputPort] = list(self.host_up) + list(self.leaf_down)
        for row in self.leaf_up:
            ports.extend(row)
        for pod in self.agg_down:
            for agg in pod:
                ports.extend(agg)
        for pod in self.agg_up:
            for agg in pod:
                ports.extend(agg)
        for core in self.core_down:
            for pod in core:
                ports.extend(pod)
        return ports
