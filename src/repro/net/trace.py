"""Packet tracing: a pcap-equivalent for the simulated fabric.

Wraps a fabric's ``send``/``forward``/host-delivery path and records one
event per packet movement, with an optional filter.  Used for debugging
load-balancer decisions ("which spine did flow 17's packet 3 take?") and
in tests that assert on path usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.fabric import Fabric
from repro.net.packet import Packet, PacketKind


@dataclass(frozen=True)
class TraceEvent:
    """One observed packet movement."""

    time_ns: int
    kind: str          # "send" | "hop" | "deliver"
    packet_kind: int   # PacketKind value
    flow_id: int
    src: int
    dst: int
    seq: int
    path_id: int
    port: Optional[str]  # port just about to carry / has carried the packet

    @property
    def packet_kind_name(self) -> str:
        return PacketKind.NAMES.get(self.packet_kind, "?")


class PacketTracer:
    """Attach to a fabric and record packet movements.

    Args:
        fabric: the network to observe.
        predicate: record only packets for which this returns True
            (default: everything — beware, that is a lot of events).
        max_events: stop recording past this many events (the simulation
            keeps running; only the trace is truncated).
    """

    def __init__(
        self,
        fabric: Fabric,
        predicate: Optional[Callable[[Packet], bool]] = None,
        max_events: int = 1_000_000,
    ) -> None:
        self.fabric = fabric
        self.predicate = predicate
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False
        self._orig_send = fabric.send
        self._orig_forward = fabric.forward
        self._patched_ports: List = []
        self._attached = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def attach(self) -> "PacketTracer":
        """Start observing (idempotent).

        Ports capture the fabric's forward callback at construction, so
        both the fabric method *and* every port's ``forward`` attribute
        are patched.
        """
        if not self._attached:
            self._attached = True
            self.fabric.send = self._traced_send  # type: ignore[method-assign]
            self.fabric.forward = self._traced_forward  # type: ignore[method-assign]
            for port in self.fabric.topology.all_ports():
                # Bound methods compare by ==, never by identity.
                if port.forward == self._orig_forward:
                    port.forward = self._traced_forward
                    self._patched_ports.append(port)
        return self

    def detach(self) -> None:
        """Stop observing and restore the fabric's methods."""
        if self._attached:
            self._attached = False
            self.fabric.send = self._orig_send  # type: ignore[method-assign]
            self.fabric.forward = self._orig_forward  # type: ignore[method-assign]
            for port in self._patched_ports:
                port.forward = self._orig_forward
            self._patched_ports.clear()

    def __enter__(self) -> "PacketTracer":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, packet: Packet, port: Optional[str]) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        if self.predicate is not None and not self.predicate(packet):
            return
        self.events.append(
            TraceEvent(
                time_ns=self.fabric.sim.now,
                kind=kind,
                packet_kind=packet.kind,
                flow_id=packet.flow_id,
                src=packet.src,
                dst=packet.dst,
                seq=packet.seq,
                path_id=packet.path_id,
                port=port,
            )
        )

    def _traced_send(self, packet: Packet) -> bool:
        accepted = self._orig_send(packet)
        port = packet.route[0].name if packet.route else None
        self._record("send", packet, port)
        return accepted

    def _traced_forward(self, packet: Packet) -> None:
        if packet.hop + 1 < len(packet.route):
            self._record("hop", packet, packet.route[packet.hop + 1].name)
        else:
            self._record("deliver", packet, None)
        self._orig_forward(packet)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def paths_used(self, flow_id: int) -> List[int]:
        """Distinct path ids a flow's data packets used, in first-use order."""
        seen: List[int] = []
        for event in self.events:
            if (
                event.flow_id == flow_id
                and event.kind == "send"
                and event.packet_kind in (PacketKind.DATA, PacketKind.UDP)
                and event.path_id not in seen
            ):
                seen.append(event.path_id)
        return seen

    def deliveries(self, flow_id: Optional[int] = None) -> int:
        """Count of final-hop deliveries (optionally for one flow)."""
        return sum(
            1
            for event in self.events
            if event.kind == "deliver"
            and (flow_id is None or event.flow_id == flow_id)
        )
