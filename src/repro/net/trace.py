"""Packet tracing: a pcap-equivalent for the simulated fabric.

Compatibility shim over :mod:`repro.telemetry`.  Historically this module
monkey-patched ``Fabric.send`` / ``Fabric.forward`` (and every port's
captured ``forward`` callback) to observe packet movements; the fabric now
exposes a single nullable ``fabric.tracer`` hook — the same one
:class:`repro.telemetry.tracer.EventTracer` uses — and this class is a
thin adapter that installs itself there.  The public API (``TraceEvent``,
``attach``/``detach``/context manager, ``predicate``, ``max_events``,
``paths_used``, ``deliveries``) is unchanged.

For new code prefer :class:`repro.telemetry.tracer.EventTracer`, which
also records drops, flow lifecycle, timeouts and retransmissions, bounds
memory with a ring buffer, and exports to Perfetto/JSONL/CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.fabric import Fabric
from repro.net.packet import Packet, PacketKind
from repro.telemetry.tracer import TracerHooks


@dataclass(frozen=True)
class TraceEvent:
    """One observed packet movement."""

    time_ns: int
    kind: str          # "send" | "hop" | "deliver"
    packet_kind: int   # PacketKind value
    flow_id: int
    src: int
    dst: int
    seq: int
    path_id: int
    port: Optional[str]  # port just about to carry / has carried the packet

    @property
    def packet_kind_name(self) -> str:
        return PacketKind.NAMES.get(self.packet_kind, "?")


class PacketTracer(TracerHooks):
    """Attach to a fabric and record packet movements.

    Args:
        fabric: the network to observe.
        predicate: record only packets for which this returns True
            (default: everything — beware, that is a lot of events).
        max_events: stop recording past this many events (the simulation
            keeps running; only the trace is truncated).
    """

    def __init__(
        self,
        fabric: Fabric,
        predicate: Optional[Callable[[Packet], bool]] = None,
        max_events: int = 1_000_000,
    ) -> None:
        self.fabric = fabric
        self.predicate = predicate
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False
        self._attached = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def attach(self) -> "PacketTracer":
        """Start observing (idempotent).

        Raises:
            RuntimeError: if another tracer already occupies the fabric's
                hook (e.g. telemetry installed by ``--trace``).
        """
        if not self._attached:
            self.fabric.hooks.attach(tracer=self)
            self._attached = True
        return self

    def detach(self) -> None:
        """Stop observing and release the fabric's tracer hook."""
        if self._attached:
            self._attached = False
            if self.fabric.hooks.occupant("tracer") is self:
                self.fabric.hooks.detach(tracer=True)

    def __enter__(self) -> "PacketTracer":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------ #
    # Hook callbacks (invoked by Fabric)
    # ------------------------------------------------------------------ #

    def on_send(self, packet: Packet) -> None:
        port = packet.route[0].name if packet.route else None
        self._record("send", packet, port)

    def on_forward(self, packet: Packet) -> None:
        # Called before the hop increment: hop+1 is the next port index.
        if packet.hop + 1 < len(packet.route):
            self._record("hop", packet, packet.route[packet.hop + 1].name)
        else:
            self._record("deliver", packet, None)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, packet: Packet, port: Optional[str]) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        if self.predicate is not None and not self.predicate(packet):
            return
        self.events.append(
            TraceEvent(
                time_ns=self.fabric.sim.now,
                kind=kind,
                packet_kind=packet.kind,
                flow_id=packet.flow_id,
                src=packet.src,
                dst=packet.dst,
                seq=packet.seq,
                path_id=packet.path_id,
                port=port,
            )
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def paths_used(self, flow_id: int) -> List[int]:
        """Distinct path ids a flow's data packets used, in first-use order."""
        seen: List[int] = []
        for event in self.events:
            if (
                event.flow_id == flow_id
                and event.kind == "send"
                and event.packet_kind in (PacketKind.DATA, PacketKind.UDP)
                and event.path_id not in seen
            ):
                seen.append(event.path_id)
        return seen

    def deliveries(self, flow_id: Optional[int] = None) -> int:
        """Count of final-hop deliveries (optionally for one flow)."""
        return sum(
            1
            for event in self.events
            if event.kind == "deliver"
            and (flow_id is None or event.flow_id == flow_id)
        )
