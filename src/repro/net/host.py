"""End host (hypervisor) model.

A host terminates flows and runs the per-host load-balancing agent — the
simulated equivalent of the paper's kernel module sitting between the
TCP/IP stack and qdisc.  Probe request/reply handling lives here too.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.lb.base import LoadBalancer
    from repro.net.fabric import Fabric


class Host:
    """One end host.

    Attributes:
        host_id: global host index.
        leaf: leaf switch index.
        lb: the load-balancing agent consulted for every outgoing data
            packet (installed by the experiment harness).
        probe_sink: callback receiving probe replies (installed by the
            Hermes prober on agent hosts).
    """

    __slots__ = ("host_id", "leaf", "fabric", "lb", "probe_sink")

    def __init__(self, host_id: int, leaf: int, fabric: "Fabric") -> None:
        self.host_id = host_id
        self.leaf = leaf
        self.fabric = fabric
        self.lb: Optional["LoadBalancer"] = None
        self.probe_sink: Optional[Callable[[Packet], None]] = None

    def receive(self, packet: Packet) -> None:
        """Dispatch an arriving packet to the right consumer."""
        kind = packet.kind
        if kind == PacketKind.DATA or kind == PacketKind.UDP:
            flow = self.fabric.flows.get(packet.flow_id)
            if flow is not None:
                flow.on_data(packet)
        elif kind == PacketKind.ACK:
            flow = self.fabric.flows.get(packet.flow_id)
            if flow is not None:
                flow.on_ack(packet)
        elif kind == PacketKind.PROBE:
            reply = self.fabric.packet_pool.probe_reply(packet)
            self.fabric.send(reply)
        elif kind == PacketKind.PROBE_REPLY:
            if self.probe_sink is not None:
                self.probe_sink(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.host_id} @leaf{self.leaf})"
