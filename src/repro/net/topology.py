"""Leaf–spine topology builder with asymmetry support.

The canonical datacenter fabric of the paper: ``n_leaves`` leaf (ToR)
switches, ``n_spines`` spine switches, ``hosts_per_leaf`` hosts per leaf.
Every leaf connects to every spine, so between two hosts under different
leaves there are exactly ``n_spines`` parallel paths, one per spine —
``path_id`` *is* the spine index.  Hosts under the same leaf have a single
path (``path_id = -1``).

Asymmetry enters two ways, matching the paper's scenarios:

* **link cuts** — remove a (leaf, spine) link entirely (testbed Fig. 8b);
* **capacity reduction** — override a (leaf, spine) link to a lower rate
  (simulation §5.3.2 reduces 20% of links from 10 to 2 Gbps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.port import OutputPort
from repro.sim.engine import Simulator

GBPS = 1e9


@dataclass
class TopologyConfig:
    """Parameters of a leaf–spine fabric.

    ``link_overrides`` maps ``(leaf, spine) -> rate_gbps``; a rate of 0
    cuts the link.  The override applies to both directions (leaf→spine
    and spine→leaf), as a physical link failure would.
    """

    n_leaves: int = 2
    n_spines: int = 2
    hosts_per_leaf: int = 6
    host_link_gbps: float = 10.0
    spine_link_gbps: float = 10.0
    link_overrides: Dict[Tuple[int, int], float] = field(default_factory=dict)
    prop_delay_ns: int = 1_000
    buffer_bytes: int = 750_000
    ecn_threshold_bytes: int = 97_500  # 65 x 1500B packets, DCTCP guideline at 10G
    dre_tau_ns: int = 100_000

    def __post_init__(self) -> None:
        if self.n_leaves < 1 or self.n_spines < 1 or self.hosts_per_leaf < 1:
            raise ValueError("topology dimensions must be positive")
        for (leaf, spine), rate in self.link_overrides.items():
            if not (0 <= leaf < self.n_leaves and 0 <= spine < self.n_spines):
                raise ValueError(f"override ({leaf},{spine}) outside topology")
            if rate < 0:
                raise ValueError("override rate must be >= 0 (0 cuts the link)")

    @property
    def n_hosts(self) -> int:
        return self.n_leaves * self.hosts_per_leaf

    def link_rate_gbps(self, leaf: int, spine: int) -> float:
        """Effective leaf<->spine link rate after overrides (0 = cut)."""
        return self.link_overrides.get((leaf, spine), self.spine_link_gbps)

    def one_hop_delay_ns(self) -> int:
        """Per-hop queueing delay of a fully loaded hop (K / C), the paper's
        guideline for deriving ``T_RTT_high`` and ``∆_RTT``."""
        return int(self.ecn_threshold_bytes * 8 * 1e9 / (self.spine_link_gbps * GBPS))

    def fabric_capacity_bps(self) -> float:
        """Offered-load reference capacity: the edge capacity capped by
        the aggregate leaf-spine uplink capacity.  In an oversubscribed
        fabric the core, not the host NICs, bounds the sustainable
        inter-rack load — the paper's load axis is relative to this."""
        edge = self.n_hosts * self.host_link_gbps * GBPS
        uplinks = sum(
            self.link_rate_gbps(leaf, spine) * GBPS
            for leaf in range(self.n_leaves)
            for spine in range(self.n_spines)
        )
        if self.n_leaves == 1:
            return edge
        return min(edge, uplinks)

    def base_rtt_ns(self, intra_rack: bool = False) -> int:
        """Unloaded round-trip (propagation + serialization of a full-size
        packet on each hop, both directions, no queueing)."""
        mtu_bits = 1500 * 8
        if intra_rack:
            hops = [(self.host_link_gbps, 2)]  # host->leaf, leaf->host
        else:
            hops = [(self.host_link_gbps, 2), (self.spine_link_gbps, 2)]
        one_way = 0.0
        n_links = 0
        for rate_gbps, count in hops:
            one_way += count * mtu_bits / (rate_gbps * GBPS) * 1e9
            n_links += count
        one_way += n_links * self.prop_delay_ns
        return int(2 * one_way)


class LeafSpineTopology:
    """The wired fabric: ports, path enumeration and route lookup.

    Directed ports:

    * ``host_up[h]``    — host h → its leaf switch
    * ``leaf_up[l][s]`` — leaf l → spine s (``None`` if cut)
    * ``spine_down[s][l]`` — spine s → leaf l (``None`` if cut)
    * ``leaf_down[h]``  — leaf of h → host h

    Routes are tuples of ports, cached per (src, dst, path_id).
    """

    def __init__(
        self,
        sim: Simulator,
        config: TopologyConfig,
        forward: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.config = config
        cfg = config

        def port(name: str, rate_gbps: float, ecn_scale_rate: Optional[float] = None) -> OutputPort:
            # ECN threshold tracks the DCTCP guideline K ∝ C so that slower
            # links mark earlier (paper uses 32 KB at 1 Gbps).
            scale = (ecn_scale_rate or rate_gbps) / 10.0
            ecn_k = max(15_000, int(cfg.ecn_threshold_bytes * scale))
            return OutputPort(
                sim,
                name,
                rate_gbps * GBPS,
                cfg.prop_delay_ns,
                cfg.buffer_bytes,
                ecn_k,
                forward=forward,
                dre_tau_ns=cfg.dre_tau_ns,
            )

        self.host_up: List[OutputPort] = [
            port(f"host{h}->leaf{self.leaf_of(h)}", cfg.host_link_gbps)
            for h in range(cfg.n_hosts)
        ]
        self.leaf_down: List[OutputPort] = [
            port(f"leaf{self.leaf_of(h)}->host{h}", cfg.host_link_gbps)
            for h in range(cfg.n_hosts)
        ]
        self.leaf_up: List[List[Optional[OutputPort]]] = []
        self.spine_down: List[List[Optional[OutputPort]]] = [
            [None] * cfg.n_leaves for _ in range(cfg.n_spines)
        ]
        for leaf in range(cfg.n_leaves):
            row: List[Optional[OutputPort]] = []
            for spine in range(cfg.n_spines):
                rate = cfg.link_rate_gbps(leaf, spine)
                if rate <= 0:
                    row.append(None)
                else:
                    row.append(port(f"leaf{leaf}->spine{spine}", rate))
                    self.spine_down[spine][leaf] = port(
                        f"spine{spine}->leaf{leaf}", rate
                    )
            self.leaf_up.append(row)

        self._paths_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._route_cache: Dict[Tuple[int, int, int], Tuple[OutputPort, ...]] = {}

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #

    def leaf_of(self, host: int) -> int:
        """Leaf switch index a host hangs off."""
        return host // self.config.hosts_per_leaf

    def hosts_of_leaf(self, leaf: int) -> range:
        """Host ids under a leaf."""
        k = self.config.hosts_per_leaf
        return range(leaf * k, (leaf + 1) * k)

    # ------------------------------------------------------------------ #
    # Path enumeration and routing
    # ------------------------------------------------------------------ #

    def paths(self, src_leaf: int, dst_leaf: int) -> Tuple[int, ...]:
        """Alive path ids (spine indices) between two distinct leaves."""
        if src_leaf == dst_leaf:
            return (-1,)
        key = (src_leaf, dst_leaf)
        cached = self._paths_cache.get(key)
        if cached is None:
            cached = tuple(
                s
                for s in range(self.config.n_spines)
                if self.leaf_up[src_leaf][s] is not None
                and self.spine_down[s][dst_leaf] is not None
            )
            if not cached:
                raise ValueError(f"no alive path between leaves {src_leaf}->{dst_leaf}")
            self._paths_cache[key] = cached
        return cached

    def paths_between_hosts(self, src: int, dst: int) -> Tuple[int, ...]:
        """Alive path ids between two hosts (``(-1,)`` if same rack)."""
        return self.paths(self.leaf_of(src), self.leaf_of(dst))

    def route(self, src: int, dst: int, path_id: int) -> Tuple[OutputPort, ...]:
        """The ordered ports a packet traverses from ``src`` to ``dst`` over
        ``path_id``.  Raises if the path does not exist (cut link)."""
        key = (src, dst, path_id)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        src_leaf = self.leaf_of(src)
        dst_leaf = self.leaf_of(dst)
        if src == dst:
            raise ValueError("cannot route a packet to its own host")
        if src_leaf == dst_leaf:
            route = (self.host_up[src], self.leaf_down[dst])
        else:
            up = self.leaf_up[src_leaf][path_id]
            down = self.spine_down[path_id][dst_leaf]
            if up is None or down is None:
                raise ValueError(
                    f"path {path_id} between leaves {src_leaf}->{dst_leaf} is cut"
                )
            route = (self.host_up[src], up, down, self.leaf_down[dst])
        self._route_cache[key] = route
        return route

    # ------------------------------------------------------------------ #
    # Introspection for load balancers and metrics
    # ------------------------------------------------------------------ #

    def uplink_ports(self, leaf: int) -> List[Tuple[int, OutputPort]]:
        """Alive (spine, port) uplinks of a leaf — what DRILL inspects."""
        return [
            (s, p) for s, p in enumerate(self.leaf_up[leaf]) if p is not None
        ]

    def all_ports(self) -> List[OutputPort]:
        """Every port in the fabric (for statistics sweeps)."""
        ports: List[OutputPort] = list(self.host_up) + list(self.leaf_down)
        for row in self.leaf_up:
            ports.extend(p for p in row if p is not None)
        for row in self.spine_down:
            ports.extend(p for p in row if p is not None)
        return ports

    def spine_ports(self, spine: int) -> List[OutputPort]:
        """The downlink ports owned by one spine switch (failure injection
        attaches here: every packet crossing the spine uses exactly one)."""
        return [p for p in self.spine_down[spine] if p is not None]
