"""Fabric: glues the topology, hosts and flows into one running network.

The fabric owns the flow registry and the packet forwarding loop.  Hosts
hand packets to :meth:`Fabric.send`; ports call :meth:`Fabric.forward`
after each link traversal; the final hop lands in :meth:`Host.receive`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union, TYPE_CHECKING

from repro.hooks import HookSet
from repro.net.host import Host
from repro.net.packet import Packet, PacketKind, PacketPool
from repro.net.spec import TopologySpec, as_topology_spec
from repro.net.topology import TopologyConfig
from repro.sim.engine import Simulator, _HOOK_DEPRECATION
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import FlowBase

#: Probe-plane packet kinds, as a tuple for the drop-branch membership
#: test (drops are rare; this is off the per-packet hot path).
_PROBE_KINDS = (PacketKind.PROBE, PacketKind.PROBE_REPLY)


class Fabric:
    """A running fabric (leaf–spine by default; any :class:`TopologySpec`).

    Args:
        sim: event engine.
        config: a :class:`TopologyConfig` (leaf–spine, the historical
            form) or any :class:`~repro.net.spec.TopologySpec` — the spec
            wires the topology and the fabric forwards through it.
        rng: seeded random streams shared by all components.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Union[TopologyConfig, TopologySpec],
        rng: Optional[RngStreams] = None,
    ) -> None:
        self.sim = sim
        self.rng = rng if rng is not None else RngStreams(0)
        #: The declarative spec this fabric was built from.
        self.spec: TopologySpec = as_topology_spec(config)
        self.topology = self.spec.build(sim, self.forward)
        self.hosts: List[Host] = [
            Host(h, self.topology.leaf_of(h), self)
            for h in range(self.spec.n_hosts)
        ]
        self.flows: Dict[int, "FlowBase"] = {}
        self._next_flow_id = 0
        self.on_flow_done: Optional[Callable[["FlowBase"], None]] = None
        #: Optional invariant checker (see :mod:`repro.validate`).
        #: Attach via :attr:`hooks`.
        self._checker = None
        #: Optional tracer (see :mod:`repro.telemetry`): receives packet
        #: send/hop/deliver and flow start/finish callbacks.  This is the
        #: single hook site both the structured tracer and the
        #: :class:`~repro.net.trace.PacketTracer` shim attach to.
        self._tracer = None
        #: Free list for DATA/ACK/probe packets.  Transports and probers
        #: *acquire* from here unconditionally; the fabric *releases* a
        #: packet at its end of life (delivered or dropped) — but only on
        #: the unobserved fast path, because the invariant checker tracks
        #: packets by identity and tracers may keep references in flight
        #: records.  With hooks attached the free list simply never
        #: refills, and every acquire falls through to a fresh Packet.
        self.packet_pool = PacketPool()
        #: Precomputed hooks-off flag for the send/forward hot path (and
        #: the packet-release gate).  Kept honest by _refresh_fast_path().
        self._fast = True
        #: In-flight packet counts per flow id, enabled by
        #: :meth:`enable_flow_eviction` (streaming-stats runs).  ``None``
        #: keeps the hot path free of the bookkeeping.
        self._inflight: Optional[Dict[int, int]] = None
        #: Finished flows waiting for their last in-network packet to
        #: drain before they can leave :attr:`flows`.
        self._evict_on_quiesce: set = set()
        #: PROBE/PROBE_REPLY packets that died anywhere in the fabric —
        #: admin-down links, injected drops, full buffers.  A heartbeat
        #: dying on a dead link *is* the detection signal, so these
        #: deaths must be countable rather than vanishing silently.
        self.probe_drops = 0
        #: Optional callback invoked with each dropped probe packet
        #: while it is still live (before pool release) — the Hermes
        #: prober and detector planes attribute losses per consumer.
        self.probe_drop_sink: Optional[Callable[[Packet], None]] = None
        #: The unified attach/detach surface for all observability hooks
        #: (checker / tracer / audit / profiler) — see :mod:`repro.hooks`.
        self.hooks = HookSet(self)

    @property
    def config(self) -> TopologyConfig:
        return self.topology.config

    # ------------------------------------------------------------------ #
    # Legacy hook attributes (read-only; assignment is a hard error)
    # ------------------------------------------------------------------ #

    @property
    def checker(self):
        """The attached invariant checker (read-only view; attach via
        :attr:`hooks`)."""
        return self._checker

    @checker.setter
    def checker(self, value) -> None:
        raise AttributeError(_HOOK_DEPRECATION)

    @property
    def tracer(self):
        """The attached tracer (read-only view; attach via :attr:`hooks`)."""
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        raise AttributeError(_HOOK_DEPRECATION)

    def _refresh_fast_path(self) -> None:
        """Recompute the hooks-off flag (called by the HookSet and the
        deprecated setters whenever a hook is attached or detached)."""
        self._fast = self._checker is None and self._tracer is None

    # ------------------------------------------------------------------ #
    # Flow registry
    # ------------------------------------------------------------------ #

    def allocate_flow_id(self) -> int:
        """Hand out a unique flow id."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def register_flow(self, flow: "FlowBase") -> None:
        """Make a flow reachable from both endpoints."""
        self.flows[flow.flow_id] = flow
        if self._tracer is not None:
            self._tracer.on_flow_start(flow)

    def flow_finished(self, flow: "FlowBase") -> None:
        """Called by a flow when it completes; fans out to the harness."""
        if self._tracer is not None:
            self._tracer.on_flow_finish(flow)
        if self.on_flow_done is not None:
            self.on_flow_done(flow)

    def enable_flow_eviction(self) -> None:
        """Turn on per-flow in-flight accounting so finished flows can be
        evicted from :attr:`flows` the moment nothing of theirs remains in
        the network.  Used by streaming-stats runs; costs one dict update
        per packet birth/death, which is why it is opt-in."""
        if self._inflight is None:
            self._inflight = {}

    def retire_flow(self, flow_id: int) -> None:
        """Evict a finished flow from the registry — now if the network is
        already quiet for it, otherwise as soon as its last in-flight
        packet dies.  Deferral is what keeps streaming runs bit-identical
        to exact runs: a straggler (a retransmitted segment, the ACK it
        provokes) must still find the flow object and elicit exactly the
        response it would have in a run that never evicts."""
        if self._inflight is None or self._inflight.get(flow_id, 0) == 0:
            self.flows.pop(flow_id, None)
        else:
            self._evict_on_quiesce.add(flow_id)

    def _packet_born(self, flow_id: int) -> None:
        inflight = self._inflight
        if inflight is not None:
            inflight[flow_id] = inflight.get(flow_id, 0) + 1

    def _packet_died(self, flow_id: int) -> None:
        inflight = self._inflight
        if inflight is None:
            return
        n = inflight.get(flow_id, 0)
        if n > 1:
            inflight[flow_id] = n - 1
            return
        inflight.pop(flow_id, None)
        if flow_id in self._evict_on_quiesce:
            self._evict_on_quiesce.discard(flow_id)
            self.flows.pop(flow_id, None)

    # ------------------------------------------------------------------ #
    # Packet plumbing
    # ------------------------------------------------------------------ #

    def _probe_dropped(self, packet: Packet) -> None:
        """A PROBE/PROBE_REPLY died in-fabric: count it and let whoever
        owns the probe attribute the loss (the packet is still live —
        callers release it to the pool only afterwards)."""
        self.probe_drops += 1
        sink = self.probe_drop_sink
        if sink is not None:
            sink(packet)

    def send(self, packet: Packet) -> bool:
        """Inject a packet at its source host over ``packet.path_id``.

        On the unobserved fast path a dropped packet is released to the
        pool immediately — the sender forfeits the reference either way
        (exactly like a real NIC: losses surface only through timeouts).
        """
        packet.route = self.topology.route(packet.src, packet.dst, packet.path_id)
        packet.hop = 0
        if self._fast:
            accepted = packet.route[0].enqueue(packet)
            if not accepted:
                if packet.kind in _PROBE_KINDS:
                    self._probe_dropped(packet)
                self.packet_pool.release(packet)
            elif self._inflight is not None:
                self._packet_born(packet.flow_id)
            return accepted
        if self._checker is not None:
            self._checker.on_send(packet)
        accepted = packet.route[0].enqueue(packet)
        if not accepted and packet.kind in _PROBE_KINDS:
            self._probe_dropped(packet)
        if accepted and self._inflight is not None:
            self._packet_born(packet.flow_id)
        if self._tracer is not None:
            self._tracer.on_send(packet)
        return accepted

    def forward(self, packet: Packet) -> None:
        """Advance a packet one hop (port callback after propagation).

        End of life happens here: a packet dropped mid-route or handed to
        its destination host goes back to the pool (fast path only — see
        :attr:`packet_pool` for why hooks suspend recycling).
        """
        if self._fast:
            hop = packet.hop + 1
            packet.hop = hop
            if hop < len(packet.route):
                if not packet.route[hop].enqueue(packet):
                    flow_id = packet.flow_id
                    if packet.kind in _PROBE_KINDS:
                        self._probe_dropped(packet)
                    self.packet_pool.release(packet)
                    if self._inflight is not None:
                        self._packet_died(flow_id)
            else:
                flow_id = packet.flow_id
                self.hosts[packet.dst].receive(packet)
                self.packet_pool.release(packet)
                # After receive(): anything the delivery provoked (a dup
                # ACK, say) is already counted, so the flow's in-flight
                # count never dips to zero while a response is pending.
                if self._inflight is not None:
                    self._packet_died(flow_id)
            return
        if self._tracer is not None:
            self._tracer.on_forward(packet)
        packet.hop += 1
        if packet.hop < len(packet.route):
            if not packet.route[packet.hop].enqueue(packet):
                if packet.kind in _PROBE_KINDS:
                    self._probe_dropped(packet)
                if self._inflight is not None:
                    self._packet_died(packet.flow_id)
        else:
            if self._checker is not None:
                self._checker.on_deliver(packet)
            self.hosts[packet.dst].receive(packet)
            if self._inflight is not None:
                self._packet_died(packet.flow_id)
