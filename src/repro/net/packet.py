"""Packet model.

A single mutable packet object travels the whole route (no copying): the
fabric is single-threaded, and ownership passes hop by hop.  ACKs, probes
and probe replies are separate packet instances.
"""

from __future__ import annotations

from typing import Optional, Tuple


class PacketKind:
    """Integer packet-kind tags (cheaper than an Enum in the hot path)."""

    DATA = 0
    ACK = 1
    PROBE = 2
    PROBE_REPLY = 3
    UDP = 4

    NAMES = {0: "DATA", 1: "ACK", 2: "PROBE", 3: "PROBE_REPLY", 4: "UDP"}


HEADER_BYTES = 40
ACK_BYTES = 64
PROBE_BYTES = 64

#: Priority levels for the strict-priority queues.  The paper's testbed
#: classifies pure ACKs into the high-priority queue for accurate RTT
#: measurement; we do the same for ACKs and probe replies.
PRIO_HIGH = 0
PRIO_LOW = 1


class Packet:
    """A packet in flight.

    Attributes:
        flow_id: owning flow (or probe id for probe packets).
        src / dst: host ids.
        seq: data packet index within the flow (-1 for control packets).
        size: wire size in bytes (headers included).
        kind: one of :class:`PacketKind`.
        ack_seq: cumulative ACK (first not-yet-received seq), ACKs only.
        path_id: spine index chosen by the sender (-1 = intra-rack).
        ce: congestion-experienced mark set by queues (ECN CE codepoint).
        ece: ECN echo carried by ACKs / probe replies.
        ts_echo: sender timestamp, echoed back for RTT measurement.
        is_retx: True if this transmission is a retransmission.
        conga_metric: max quantized DRE utilization along the forward path
            (stamped by ports; used by CONGA feedback).
        route: tuple of :class:`OutputPort` the packet still traverses.
        hop: index of the *current* port in ``route``.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "kind",
        "ack_seq",
        "path_id",
        "ecn_capable",
        "ce",
        "ece",
        "ts_echo",
        "is_retx",
        "priority",
        "conga_metric",
        "route",
        "hop",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        kind: int,
        path_id: int = -1,
        ecn_capable: bool = True,
        priority: int = PRIO_LOW,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.kind = kind
        self.ack_seq = -1
        self.path_id = path_id
        self.ecn_capable = ecn_capable
        self.ce = False
        self.ece = False
        self.ts_echo = 0
        self.is_retx = False
        self.priority = priority
        self.conga_metric = 0
        self.route: Tuple = ()
        self.hop = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = PacketKind.NAMES.get(self.kind, "?")
        return (
            f"Packet({kind} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} path={self.path_id} size={self.size})"
        )


def clone_packet(packet: Packet) -> Packet:
    """A plain (never pooled) field-for-field copy.

    Used where a component must *retain* packet state past the deliver/
    drop point — e.g. the reorder-masking receiver's gap timer — without
    holding the live object that the fabric's pool may recycle.
    """
    copy = Packet(
        flow_id=packet.flow_id,
        src=packet.src,
        dst=packet.dst,
        seq=packet.seq,
        size=packet.size,
        kind=packet.kind,
        path_id=packet.path_id,
        ecn_capable=packet.ecn_capable,
        priority=packet.priority,
    )
    copy.ack_seq = packet.ack_seq
    copy.ce = packet.ce
    copy.ece = packet.ece
    copy.ts_echo = packet.ts_echo
    copy.is_retx = packet.is_retx
    copy.conga_metric = packet.conga_metric
    return copy


class PacketPool:
    """Free list of :class:`Packet` objects.

    Ownership contract (see DESIGN.md "Pooling lifecycle"): a packet
    belongs to the fabric from ``send()`` until it is delivered or
    dropped.  At that point the fabric releases it back here, and **no
    component may retain the reference** — copy the scalars you need (as
    every load balancer and transport already does) or
    :func:`clone_packet` it.  Pooling is bypassed entirely while
    observation hooks (checker/tracer) are attached, because the
    invariant checker tracks packets by identity.
    """

    __slots__ = ("_free", "allocated", "reused", "released")

    def __init__(self) -> None:
        self._free: list = []
        #: Fresh constructions (pool was empty).
        self.allocated = 0
        #: Acquisitions served from the free list.
        self.reused = 0
        #: Packets returned via :meth:`release`.
        self.released = 0

    def acquire(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        kind: int,
        path_id: int = -1,
        ecn_capable: bool = True,
        priority: int = PRIO_LOW,
    ) -> Packet:
        """A packet with *every* field reset — bit-for-bit what the
        ``Packet`` constructor would produce."""
        free = self._free
        if free:
            self.reused += 1
            packet = free.pop()
            packet.flow_id = flow_id
            packet.src = src
            packet.dst = dst
            packet.seq = seq
            packet.size = size
            packet.kind = kind
            packet.ack_seq = -1
            packet.path_id = path_id
            packet.ecn_capable = ecn_capable
            packet.ce = False
            packet.ece = False
            packet.ts_echo = 0
            packet.is_retx = False
            packet.priority = priority
            packet.conga_metric = 0
            packet.route = ()
            packet.hop = 0
            return packet
        self.allocated += 1
        return Packet(
            flow_id, src, dst, seq, size, kind,
            path_id=path_id, ecn_capable=ecn_capable, priority=priority,
        )

    def release(self, packet: Packet) -> None:
        """Return a packet to the free list.  The caller forfeits the
        reference; the route tuple is dropped so ports are not pinned."""
        packet.route = ()
        self.released += 1
        self._free.append(packet)

    # ------------------------------------------------------------------ #
    # Control-packet construction (pooled mirrors of the make_* builders)
    # ------------------------------------------------------------------ #

    def ack(self, data: Packet, ack_seq: int, now: int) -> Packet:
        """Pooled :func:`make_ack`."""
        ack = self.acquire(
            data.flow_id, data.dst, data.src, data.seq, ACK_BYTES,
            PacketKind.ACK, path_id=data.path_id, ecn_capable=False,
            priority=PRIO_HIGH,
        )
        ack.ack_seq = ack_seq
        ack.ece = data.ce
        ack.ts_echo = data.ts_echo
        ack.is_retx = data.is_retx
        ack.conga_metric = data.conga_metric
        return ack

    def probe(
        self, probe_id: int, src: int, dst: int, path_id: int, now: int
    ) -> Packet:
        """Pooled :func:`make_probe`."""
        probe = self.acquire(
            probe_id, src, dst, -1, PROBE_BYTES, PacketKind.PROBE,
            path_id=path_id, ecn_capable=True, priority=PRIO_LOW,
        )
        probe.ts_echo = now
        return probe

    def probe_reply(self, probe: Packet) -> Packet:
        """Pooled :func:`make_probe_reply`."""
        reply = self.acquire(
            probe.flow_id, probe.dst, probe.src, -1, PROBE_BYTES,
            PacketKind.PROBE_REPLY, path_id=probe.path_id,
            ecn_capable=False, priority=PRIO_HIGH,
        )
        reply.ece = probe.ce
        reply.ts_echo = probe.ts_echo
        return reply

    def stats(self) -> dict:
        return {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": len(self._free),
        }


def make_ack(data: Packet, ack_seq: int, now: int) -> Packet:
    """Build the ACK for a received data packet.

    The ACK echoes the data packet's CE mark (``ece``), path id, and the
    sender timestamp, and travels the *same* spine in the reverse direction
    so RTT measurements reflect the probed path.
    """
    ack = Packet(
        flow_id=data.flow_id,
        src=data.dst,
        dst=data.src,
        seq=data.seq,
        size=ACK_BYTES,
        kind=PacketKind.ACK,
        path_id=data.path_id,
        ecn_capable=False,
        priority=PRIO_HIGH,
    )
    ack.ack_seq = ack_seq
    ack.ece = data.ce
    ack.ts_echo = data.ts_echo
    ack.is_retx = data.is_retx  # Karn's rule: RTO ignores retransmit samples
    ack.conga_metric = data.conga_metric
    return ack


def make_probe(probe_id: int, src: int, dst: int, path_id: int, now: int) -> Packet:
    """Build a probe packet (64 B, travels the normal-priority queue so it
    experiences real queueing delay and ECN marking)."""
    probe = Packet(
        flow_id=probe_id,
        src=src,
        dst=dst,
        seq=-1,
        size=PROBE_BYTES,
        kind=PacketKind.PROBE,
        path_id=path_id,
        ecn_capable=True,
        priority=PRIO_LOW,
    )
    probe.ts_echo = now
    return probe


def make_probe_reply(probe: Packet) -> Packet:
    """Build the reply for a probe: high priority, echoes CE and timestamp."""
    reply = Packet(
        flow_id=probe.flow_id,
        src=probe.dst,
        dst=probe.src,
        seq=-1,
        size=PROBE_BYTES,
        kind=PacketKind.PROBE_REPLY,
        path_id=probe.path_id,
        ecn_capable=False,
        priority=PRIO_HIGH,
    )
    reply.ece = probe.ce
    reply.ts_echo = probe.ts_echo
    return reply
