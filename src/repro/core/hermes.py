"""The Hermes per-host agent: sensing feeds + Algorithm 2 triggering.

Hermes is invoked for **every outgoing packet** (timeliness) but reroutes
only deliberately (caution):

* a packet of a *new* flow, a flow that suffered an RTO, or a flow whose
  path is failed/blackholed → initial-placement branch;
* a packet of a flow whose current path is sensed *congested* → cautious
  rerouting, gated on the flow having sent more than ``S`` bytes and
  sending below rate ``R`` (rerouting small or fast flows does not pay);
* otherwise the flow stays put.

Blackhole detection is per (destination host, path): after 3 timeouts
with zero packets ACKed on the path, the pair is written into the agent's
failed-pair set and avoided from then on (paper §3.1.2).
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple, TYPE_CHECKING

from repro.core.parameters import HermesParams
from repro.core.rerouting import ReroutingPolicy
from repro.core.sensing import PATH_CONGESTED, PATH_FAILED, HermesLeafState
from repro.lb.base import LoadBalancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric
    from repro.net.host import Host
    from repro.transport.base import FlowBase


class HermesLB(LoadBalancer):
    """Hermes agent for one host (the paper's hypervisor kernel module)."""

    name = "hermes"
    granularity = "packet"

    def __init__(
        self,
        host: "Host",
        fabric: "Fabric",
        rng: random.Random,
        leaf_state: HermesLeafState,
        params: HermesParams,
    ) -> None:
        super().__init__(host, fabric, rng)
        self.leaf_state = leaf_state
        self.params = params
        self.policy = ReroutingPolicy(leaf_state, params, rng)
        self._host_link_bps = fabric.config.host_link_gbps * 1e9
        # flow_id -> [timeouts_on_current_path, acked_on_current_path]
        self._flow_record: Dict[int, List[int]] = {}
        # flow_id -> time of the agent's last reroute of that flow.  A
        # mid-stream reroute makes New Reno misread the reordering as
        # loss and retransmit spuriously; those retransmissions are the
        # agent's own doing and must not count as path-failure evidence.
        self._last_reroute: Dict[int, int] = {}
        self.reroute_retx_grace_ns = 1_000_000
        # Decision accounting, mirroring the branches of Algorithm 2 —
        # what the Fig. 18 deep dive inspects.
        self.decisions = {
            "new_placements": 0,        # first packet of a flow
            "timeout_reroutes": 0,      # if_timeout-triggered placements
            "failure_evacuations": 0,   # current path failed/blackholed
            "congestion_reroutes": 0,   # congested path, moved
            "congestion_stays": 0,      # congested, no notably-better path
            "gated_stays": 0,           # congested, S/R gates said no
        }
        self.failed_pairs: Set[Tuple[int, int]] = set()
        self.blackhole_detections = 0
        #: Optional decision audit (see :mod:`repro.telemetry.audit`):
        #: records every branch of Algorithm 2 with its reason code and
        #: the gate/threshold values that fired.  ``None`` (default)
        #: costs one branch per select_path.
        self.audit = None
        leaf_state.start_sweep()

    # ------------------------------------------------------------------ #
    # Algorithm 2 trigger logic
    # ------------------------------------------------------------------ #

    def select_path(self, flow: "FlowBase", wire_bytes: int) -> int:
        dst_leaf = self.topology.leaf_of(flow.dst)
        paths = self.topology.paths(self.host.leaf, dst_leaf)
        state = self.leaf_state
        current = flow.current_path if flow.current_path >= 0 else None
        excluded = {p for p in paths if (flow.dst, p) in self.failed_pairs}
        detector = self.detector
        if detector is not None:
            # A configured detector's DOWN verdicts overlay Algorithm 2's
            # own blackhole set — but never to the point of excluding
            # every path (the never-strand rule).
            down = {
                p
                for p in paths
                if p not in excluded and detector.is_failed(dst_leaf, p)
            }
            if len(excluded) + len(down) < len(paths):
                excluded |= down

        audit = self.audit
        needs_placement = (
            current is None
            or flow.if_timeout
            or current in excluded
            or state.classify(dst_leaf, current) == PATH_FAILED
        )
        if needs_placement:
            if current is None:
                self.decisions["new_placements"] += 1
                reason = "new-flow"
            elif flow.if_timeout:
                self.decisions["timeout_reroutes"] += 1
                reason = "timeout"
            else:
                self.decisions["failure_evacuations"] += 1
                reason = "failed-path"
            path = self.policy.initial_path(dst_leaf, paths, excluded)
            flow.if_timeout = False
            if current is not None and path != current:
                self.reroutes += 1
                self._reset_record(flow)
            if audit is not None:
                detail = {}
                if reason == "failed-path":
                    detail["blackholed_pair"] = current in excluded
                audit.on_decision(
                    flow.flow_id, self.host.leaf, dst_leaf, reason,
                    -1 if current is None else current, path, detail,
                )
        elif (
            self.params.timely_rerouting
            and state.classify(dst_leaf, current) == PATH_CONGESTED
        ):
            if not self._gates_allow(flow):
                self.decisions["gated_stays"] += 1
                path = current
                if audit is not None:
                    audit.on_decision(
                        flow.flow_id, self.host.leaf, dst_leaf, "gated-stay",
                        current, current, self._gate_detail(flow),
                    )
            else:
                candidate = self.policy.reroute_from_congested(
                    dst_leaf,
                    paths,
                    current,
                    excluded,
                    require_notably=self.params.cautious_rerouting,
                )
                if candidate is not None and candidate != current:
                    self.decisions["congestion_reroutes"] += 1
                    path = candidate
                    self.reroutes += 1
                    self._reset_record(flow)
                    if audit is not None:
                        audit.on_decision(
                            flow.flow_id, self.host.leaf, dst_leaf,
                            "congested-moved", current, path,
                            self._margin_detail(dst_leaf, current, path, flow),
                        )
                else:
                    self.decisions["congestion_stays"] += 1
                    path = current
                    if audit is not None:
                        audit.on_decision(
                            flow.flow_id, self.host.leaf, dst_leaf,
                            "congested-stay", current, current,
                            {
                                "delta_rtt_ns": self.params.delta_rtt_ns,
                                "delta_ecn": self.params.delta_ecn,
                                "require_notably":
                                    self.params.cautious_rerouting,
                            },
                        )
        else:
            path = current

        state.record_sent(dst_leaf, path, wire_bytes)
        return path

    def _gate_detail(self, flow: "FlowBase") -> dict:
        """Audit detail: which of the S/R caution gates blocked a reroute."""
        size_threshold = self.params.size_threshold_bytes
        rate_threshold = (
            self.params.rate_threshold_fraction * self._host_link_bps
        )
        rate = flow.rate_bps()
        return {
            "bytes_sent": flow.bytes_sent,
            "size_threshold_bytes": size_threshold,
            "size_gate_ok": flow.bytes_sent > size_threshold,
            "rate_bps": round(rate, 1),
            "rate_threshold_bps": round(rate_threshold, 1),
            "rate_gate_ok": rate < rate_threshold,
        }

    def _margin_detail(
        self, dst_leaf: int, current: int, candidate: int, flow: "FlowBase"
    ) -> dict:
        """Audit detail for a congestion reroute: the sensed values and
        the ∆_RTT/∆_ECN margins the candidate cleared."""
        cur = self.leaf_state.state(dst_leaf, current)
        cand = self.leaf_state.state(dst_leaf, candidate)
        return {
            "cur_rtt_ns": round(cur.rtt_ns, 1),
            "cand_rtt_ns": round(cand.rtt_ns, 1),
            "cur_f_ecn": round(cur.f_ecn, 4),
            "cand_f_ecn": round(cand.f_ecn, 4),
            "delta_rtt_ns": self.params.delta_rtt_ns,
            "delta_ecn": self.params.delta_ecn,
            "require_notably": self.params.cautious_rerouting,
            "bytes_sent": flow.bytes_sent,
        }

    def _gates_allow(self, flow: "FlowBase") -> bool:
        """The cautious-rerouting gates: size sent > S and rate < R."""
        if not self.params.cautious_rerouting:
            return True
        return (
            flow.bytes_sent > self.params.size_threshold_bytes
            and flow.rate_bps()
            < self.params.rate_threshold_fraction * self._host_link_bps
        )

    # ------------------------------------------------------------------ #
    # Sensing feeds
    # ------------------------------------------------------------------ #

    def on_ack(self, flow: "FlowBase", path_id: int, ece: bool, rtt_ns: int,
               is_retx: bool) -> None:
        if path_id < 0:
            return
        self.leaf_state.record_ack(
            self.topology.leaf_of(flow.dst), path_id, ece, rtt_ns
        )
        if self.detector is not None:
            self.detector.note_ok(self.topology.leaf_of(flow.dst), path_id)
        if path_id == flow.current_path:
            record = self._record(flow)
            record[1] += 1  # a packet on this path was ACKed

    def on_timeout(self, flow: "FlowBase", path_id: int) -> None:
        if path_id < 0:
            return
        dst_leaf = self.topology.leaf_of(flow.dst)
        self.leaf_state.record_timeout(dst_leaf, path_id)
        if self.detector is not None:
            self.detector.note_timeout(dst_leaf, path_id)
        record = self._record(flow)
        record[0] += 1
        if (
            record[0] >= self.params.timeout_failure_count
            and record[1] == 0
            and (flow.dst, path_id) not in self.failed_pairs
        ):
            # Blackhole: repeated timeouts and not a single ACK on the path.
            self.failed_pairs.add((flow.dst, path_id))
            self.blackhole_detections += 1
            self.leaf_state.detection_times.append(self.fabric.sim.now)

    def on_retransmit(self, flow: "FlowBase", path_id: int) -> None:
        if path_id < 0:
            return
        last = self._last_reroute.get(flow.flow_id)
        if (
            last is not None
            and self.fabric.sim.now - last < self.reroute_retx_grace_ns
        ):
            return  # self-inflicted reordering, not path evidence
        self.leaf_state.record_retransmit(
            self.topology.leaf_of(flow.dst), path_id, flow.flow_id
        )
        if self.detector is not None:
            self.detector.note_retransmit(
                self.topology.leaf_of(flow.dst), path_id
            )

    def on_flow_done(self, flow: "FlowBase") -> None:
        self._flow_record.pop(flow.flow_id, None)
        self._last_reroute.pop(flow.flow_id, None)

    # ------------------------------------------------------------------ #
    # Per-flow blackhole bookkeeping
    # ------------------------------------------------------------------ #

    def _record(self, flow: "FlowBase") -> List[int]:
        record = self._flow_record.get(flow.flow_id)
        if record is None:
            record = [0, 0]
            self._flow_record[flow.flow_id] = record
        return record

    def _reset_record(self, flow: "FlowBase") -> None:
        """Path changed: timeout/ACK evidence belongs to the old path."""
        self._flow_record[flow.flow_id] = [0, 0]
        self._last_reroute[flow.flow_id] = self.fabric.sim.now
