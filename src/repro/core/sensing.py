"""Comprehensive sensing (paper §3.1, Algorithm 1, Table 5).

Each source rack keeps one :class:`PathState` per (destination leaf,
path).  The state is fed by

* **piggybacked transport signals**: every ACK contributes an ECN-echo
  sample and an RTT sample for the path the data packet travelled;
* **active probes** (see :mod:`repro.core.probing`): same two signals,
  refreshed even on paths carrying no data;
* **loss events**: per-path packet/retransmission counters swept every
  ``τ`` (10 ms) to detect silent random drops, following the paper's
  rule — a path with >1% retransmissions that is *not* congested is
  failed (congestion also causes retransmissions, so congested paths are
  exempt).

Path characterization (Algorithm 1):

====  ========  ===========================
ECN   RTT       Characterization
====  ========  ===========================
low   low       **good**
high  high      **congested**
else  else      **gray**
====  ========  ===========================

with a ``failed`` overlay from the failure detectors.

The table is shared by all hypervisors under the same rack — the paper's
probe agents "share the probed information among all hypervisors under
the same rack"; we extend the sharing to piggybacked signals as a
rack-level aggregation (documented in DESIGN.md §4).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.parameters import HermesParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

PATH_GOOD = 0
PATH_GRAY = 1
PATH_CONGESTED = 2
PATH_FAILED = 3

TYPE_NAMES = {0: "good", 1: "gray", 2: "congested", 3: "failed"}


class PathState:
    """Sensed condition of one (destination leaf, path).

    ``f_ecn`` and ``rtt_ns`` are EWMA estimates; ``r_p`` is the DRE of the
    rack's aggregate sending rate onto the path (used by Algorithm 2 to
    spread new flows); the sent/retransmit counters feed the τ-sweep.
    """

    __slots__ = (
        "f_ecn",
        "rtt_ns",
        "last_update",
        "sent_pkts",
        "retx_pkts",
        "retx_by_flow",
        "timeouts",
        "failed_until",
        "_rp_value",
        "_rp_last",
        "_rp_tau_ns",
    )

    def __init__(self, initial_rtt_ns: int) -> None:
        self.f_ecn = 0.0
        self.rtt_ns = float(initial_rtt_ns)
        self.last_update = 0
        self.sent_pkts = 0
        self.retx_pkts = 0
        self.retx_by_flow: Dict[int, int] = {}
        self.timeouts = 0
        self.failed_until = -1
        self._rp_value = 0.0
        self._rp_last = 0
        self._rp_tau_ns = 200_000

    def record_signal(self, ece: bool, rtt_ns: int, now: int,
                      ecn_gain: float, rtt_gain: float) -> None:
        """Fold in one (ECN echo, RTT) sample."""
        self.f_ecn += ecn_gain * ((1.0 if ece else 0.0) - self.f_ecn)
        self.rtt_ns += rtt_gain * (rtt_ns - self.rtt_ns)
        self.last_update = now

    def rp_add(self, size_bytes: int, now: int) -> None:
        dt = now - self._rp_last
        if dt > 0:
            self._rp_value *= math.exp(-dt / self._rp_tau_ns)
            self._rp_last = now
        self._rp_value += size_bytes

    def rp_bps(self, now: int) -> float:
        """Aggregate local sending rate on this path, in bits/second."""
        dt = now - self._rp_last
        value = self._rp_value
        if dt > 0:
            value *= math.exp(-dt / self._rp_tau_ns)
        return value * 8.0 / (self._rp_tau_ns / 1e9)

    def is_failed(self, now: int) -> bool:
        return now < self.failed_until


class HermesLeafState:
    """Shared per-rack path table + failure sweep.

    Args:
        fabric: the network (for the clock and topology).
        leaf: which rack this table belongs to.
        params: resolved Hermes parameters.
    """

    def __init__(self, fabric: "Fabric", leaf: int, params: HermesParams) -> None:
        if params.t_rtt_low_ns is None or params.t_rtt_high_ns is None:
            raise ValueError("params must be resolved against the topology first")
        self.fabric = fabric
        self.sim = fabric.sim
        self.leaf = leaf
        self.params = params
        self._initial_rtt = fabric.config.base_rtt_ns()
        self._table: Dict[Tuple[int, int], PathState] = {}
        self.failed_detections = 0
        #: Simulation times (ns) at which a path was marked failed —
        #: either explicitly or by the τ-sweep.  Feeds the
        #: detection-latency metric of the recovery-timeline experiment.
        self.detection_times: List[int] = []
        self._sweep_started = False
        self._sweep_event = None
        #: Optional invariant checker (see :mod:`repro.validate`):
        #: validates every classify() against Algorithm 1's machine.
        self.checker = None
        #: Optional decision audit (see :mod:`repro.telemetry.audit`):
        #: records every path-state transition and failure overlay.
        self.audit = None

    def start_sweep(self) -> None:
        """Begin the periodic τ failure sweep (idempotent)."""
        if not self._sweep_started:
            self._sweep_started = True
            self._sweep_event = self.sim.schedule(
                self.params.retx_sweep_interval_ns, self._sweep
            )

    def stop_sweep(self) -> None:
        """Cancel the sweep and keep it stopped (``start_sweep`` becomes a
        no-op).  The sharded runner calls this on leaf states whose rack
        lives in another shard: their sweeps would fire timer events —
        and count them — for a rack this process does not simulate."""
        self._sweep_started = True
        if self._sweep_event is not None:
            self._sweep_event.cancel()
            self._sweep_event = None

    def state(self, dst_leaf: int, path: int) -> PathState:
        """The (created-on-demand) state for one path."""
        key = (dst_leaf, path)
        state = self._table.get(key)
        if state is None:
            state = PathState(self._initial_rtt)
            self._table[key] = state
        return state

    # ------------------------------------------------------------------ #
    # Signal ingestion
    # ------------------------------------------------------------------ #

    def record_ack(self, dst_leaf: int, path: int, ece: bool, rtt_ns: int) -> None:
        self.state(dst_leaf, path).record_signal(
            ece, rtt_ns, self.sim.now, self.params.ecn_gain, self.params.rtt_gain
        )

    def record_probe(self, dst_leaf: int, path: int, ece: bool, rtt_ns: int) -> None:
        self.state(dst_leaf, path).record_signal(
            ece, rtt_ns, self.sim.now, self.params.ecn_gain, self.params.rtt_gain
        )

    def record_sent(self, dst_leaf: int, path: int, wire_bytes: int) -> None:
        state = self.state(dst_leaf, path)
        state.sent_pkts += 1
        state.rp_add(wire_bytes, self.sim.now)

    #: Retransmissions counted per flow per sweep window.  A rerouted flow
    #: can spuriously "retransmit" a whole window of in-flight packets
    #: (New Reno misreads reordering as loss); capping per-flow
    #: attribution keeps one such burst from failing a healthy path while
    #: a genuinely lossy switch — which hits *many* flows a little each —
    #: still accumulates signal.
    RETX_PER_FLOW_CAP = 3

    def record_retransmit(self, dst_leaf: int, path: int, flow_id: int = -1) -> None:
        state = self.state(dst_leaf, path)
        seen = state.retx_by_flow.get(flow_id, 0)
        if seen < self.RETX_PER_FLOW_CAP:
            state.retx_by_flow[flow_id] = seen + 1
            state.retx_pkts += 1

    def record_timeout(self, dst_leaf: int, path: int) -> None:
        self.state(dst_leaf, path).timeouts += 1

    def mark_failed(self, dst_leaf: int, path: int, hold_ns: Optional[int] = None) -> None:
        """Overlay a failure on a path for ``hold_ns`` (default from params)."""
        hold = hold_ns if hold_ns is not None else self.params.failure_hold_ns
        state = self.state(dst_leaf, path)
        if self.checker is not None:
            self.checker.on_mark_failed(state, hold)
        if self.audit is not None:
            self.audit.on_mark_failed(
                self, dst_leaf, path, "explicit", {"hold_ns": hold}
            )
        state.failed_until = self.sim.now + hold
        self.failed_detections += 1
        self.detection_times.append(self.sim.now)

    # ------------------------------------------------------------------ #
    # Classification (Algorithm 1)
    # ------------------------------------------------------------------ #

    def classify(self, dst_leaf: int, path: int) -> int:
        """Characterize a path as good / gray / congested / failed."""
        now = self.sim.now
        state = self.state(dst_leaf, path)
        if state.is_failed(now):
            result = PATH_FAILED
        else:
            result = self._congestion_class(state)
        if self.checker is not None:
            self.checker.on_path_class(self, dst_leaf, path, result, state)
        if self.audit is not None:
            self.audit.on_path_class(self, dst_leaf, path, result, state)
        return result

    def _congestion_class(self, state: PathState) -> int:
        params = self.params
        if not params.use_ecn:
            # RTT-only mode (plain TCP carries no ECN marks).
            if state.rtt_ns < params.t_rtt_low_ns:
                return PATH_GOOD
            if state.rtt_ns > params.t_rtt_high_ns:
                return PATH_CONGESTED
            return PATH_GRAY
        if state.f_ecn < params.t_ecn and state.rtt_ns < params.t_rtt_low_ns:
            return PATH_GOOD
        if state.f_ecn > params.t_ecn and state.rtt_ns > params.t_rtt_high_ns:
            return PATH_CONGESTED
        return PATH_GRAY

    def notably_better(self, dst_leaf: int, candidate: int, current: int) -> bool:
        """Paper §3.2: candidate beats current by both ∆_RTT *and* ∆_ECN."""
        cand = self.state(dst_leaf, candidate)
        cur = self.state(dst_leaf, current)
        rtt_better = cur.rtt_ns - cand.rtt_ns > self.params.delta_rtt_ns
        if not self.params.use_ecn:
            return rtt_better
        return rtt_better and cur.f_ecn - cand.f_ecn > self.params.delta_ecn

    # ------------------------------------------------------------------ #
    # τ-sweep: silent-random-drop detection
    # ------------------------------------------------------------------ #

    def _sweep(self) -> None:
        params = self.params
        for (dst_leaf, path), state in self._table.items():
            if state.sent_pkts >= 10:  # need samples for a stable fraction
                fraction = state.retx_pkts / state.sent_pkts
                if (
                    fraction > params.retx_fraction_threshold
                    and self._congestion_class(state) != PATH_CONGESTED
                ):
                    if self.checker is not None:
                        self.checker.on_mark_failed(state, params.failure_hold_ns)
                    if self.audit is not None:
                        self.audit.on_mark_failed(
                            self, dst_leaf, path, "retx-sweep",
                            {
                                "retx_fraction": round(fraction, 4),
                                "threshold": params.retx_fraction_threshold,
                                "sent_pkts": state.sent_pkts,
                                "retx_pkts": state.retx_pkts,
                            },
                        )
                    state.failed_until = self.sim.now + params.failure_hold_ns
                    self.failed_detections += 1
                    self.detection_times.append(self.sim.now)
            state.sent_pkts = 0
            state.retx_pkts = 0
            state.retx_by_flow.clear()
            state.timeouts = 0
        self._sweep_event = self.sim.schedule(
            params.retx_sweep_interval_ns, self._sweep
        )
