"""Hermes parameters (paper Table 4) and their derivation rules (§3.3).

The paper derives several thresholds from the fabric itself:

* ``T_RTT_low``  = base RTT + 20–40 µs (default +30 µs here);
* ``T_RTT_high`` = base RTT + 1.5 × one-hop delay, where the one-hop
  delay of a fully loaded hop is ``ECN marking threshold / link capacity``;
* ``∆_RTT``      = one one-hop delay;

so :meth:`HermesParams.resolve` computes any threshold left as ``None``
from the topology configuration, exactly following those rules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.net.topology import TopologyConfig
from repro.sim.engine import microseconds, milliseconds


@dataclass
class HermesParams:
    """Tunable parameters of Hermes with the paper's recommended defaults.

    Attributes:
        t_ecn: ECN-fraction threshold for a congested path (40%).
        t_rtt_low_ns: RTT below which a path can be *good* (derived).
        t_rtt_high_ns: RTT above which a path can be *congested* (derived).
        t_rtt_high_hops: hop-delay multiplier used to derive
            ``T_RTT_high``.  The paper uses 1.5; our default is 1.2
            because this simulator's instantaneous-queue ECN marking
            keeps DCTCP standing queues closer to the threshold than the
            paper's ns-3 stack, so 1.2 hops marks the same "more than
            one loaded hop" discrimination point (see DESIGN.md §4).
        delta_rtt_ns: RTT margin for "notably better" (derived: 1 hop delay).
        delta_ecn: ECN-fraction margin for "notably better" (3–10%).
        rate_threshold_fraction: ``R`` — do not reroute flows sending above
            this fraction of the edge link capacity (20–40%).
        size_threshold_bytes: ``S`` — do not reroute flows that have sent
            less than this (100–800 KB).
        probe_interval_ns: probe period (100–500 µs).
        probing_enabled: ablation switch for Fig. 18.
        timely_rerouting: ablation switch — when off, flows never leave a
            congested path (only failures/timeouts trigger movement).
        cautious_rerouting: ablation switch — when off, the ``S``/``R``
            gates and the notably-better margins are skipped (vigorous
            rerouting, §2.2.2).
        use_ecn: when False Hermes senses with RTT only — the paper's
            configuration for plain TCP (§5.4 "Different transport
            protocols"), whose packets carry no ECN.
        ecn_gain / rtt_gain: EWMA gains for the per-path signal estimates.
        retx_fraction_threshold: retransmission fraction marking a
            non-congested path as failed (1%).
        retx_sweep_interval_ns: ``τ`` — failure-sweep period (10 ms).
        timeout_failure_count: timeouts with zero ACKs that flag a
            blackholed (src, dst, path) (3).
        failure_hold_ns: how long a retransmission-flagged path stays
            failed before being reconsidered.
        t_rtt_low_extra_ns: the "+20–40 µs" term of ``T_RTT_low``.
    """

    t_ecn: float = 0.40
    t_rtt_low_ns: Optional[int] = None
    t_rtt_high_ns: Optional[int] = None
    t_rtt_high_hops: float = 1.2
    delta_rtt_ns: Optional[int] = None
    delta_ecn: float = 0.05
    rate_threshold_fraction: float = 0.30
    size_threshold_bytes: int = 600_000
    probe_interval_ns: int = microseconds(500)
    probing_enabled: bool = True
    timely_rerouting: bool = True
    cautious_rerouting: bool = True
    use_ecn: bool = True
    ecn_gain: float = 1.0 / 16.0
    rtt_gain: float = 1.0 / 8.0
    retx_fraction_threshold: float = 0.01
    retx_sweep_interval_ns: int = milliseconds(10)
    timeout_failure_count: int = 3
    failure_hold_ns: int = milliseconds(50)
    t_rtt_low_extra_ns: int = microseconds(30)

    def __post_init__(self) -> None:
        if not 0.0 < self.t_ecn <= 1.0:
            raise ValueError(f"T_ECN must be in (0, 1], got {self.t_ecn}")
        if not 0.0 <= self.delta_ecn < 1.0:
            raise ValueError(f"∆_ECN must be in [0, 1), got {self.delta_ecn}")
        if not 0.0 < self.rate_threshold_fraction <= 1.0:
            raise ValueError("R must be a fraction of link capacity in (0, 1]")
        if self.size_threshold_bytes < 0:
            raise ValueError("S must be non-negative")
        if self.probe_interval_ns <= 0:
            raise ValueError("probe interval must be positive")

    def time_scaled(self, factor: float) -> "HermesParams":
        """Scale the workload-timescale timers by ``factor``.

        Benches that shrink flow sizes shrink simulated run spans with
        them; scaling the detection windows identically preserves the
        paper's timescale *ratios* (e.g. detection delay vs run span).
        Network-timescale parameters are untouched: the RTT thresholds
        (link speeds do not change) and the probe interval (information
        freshness is measured in RTTs, not in flow lifetimes).
        """
        if factor <= 0:
            raise ValueError("time scale factor must be positive")
        return replace(
            self,
            retx_sweep_interval_ns=max(
                1, int(self.retx_sweep_interval_ns * factor)
            ),
            failure_hold_ns=max(1, int(self.failure_hold_ns * factor)),
        )

    def resolve(self, config: TopologyConfig) -> "HermesParams":
        """Fill derived thresholds from the fabric (paper §3.3 rules)."""
        base_rtt = config.base_rtt_ns()
        hop = config.one_hop_delay_ns()
        return replace(
            self,
            t_rtt_low_ns=(
                self.t_rtt_low_ns
                if self.t_rtt_low_ns is not None
                else base_rtt + self.t_rtt_low_extra_ns
            ),
            t_rtt_high_ns=(
                self.t_rtt_high_ns
                if self.t_rtt_high_ns is not None
                else base_rtt + int(self.t_rtt_high_hops * hop)
            ),
            delta_rtt_ns=(
                self.delta_rtt_ns if self.delta_rtt_ns is not None else hop
            ),
        )
