"""Automatic Hermes parameter tuning (the paper's stated future work).

§3.3 and §6 of the paper leave "(automatic) optimal parameter
configuration" as future work and supply only rules of thumb.  This
module implements the straightforward version: a seeded grid search over
``HermesParams`` overrides, scoring each candidate by mean FCT on a
user-supplied scenario.

The search is deliberately simple — the scenario runs are the expensive
part, and the paper's own sensitivity analysis (Fig. 19) shows the FCT
surface is flat near the recommended settings, so a coarse grid finds
the plateau reliably.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclass
class TuningCandidate:
    """One evaluated grid point."""

    overrides: Dict[str, Any]
    score: float
    results: List[ExperimentResult] = field(default_factory=list)


@dataclass
class TuningOutcome:
    """Grid-search outcome, best first."""

    candidates: List[TuningCandidate]

    @property
    def best(self) -> TuningCandidate:
        return self.candidates[0]

    def table_rows(self) -> List[List[Any]]:
        """Rows of (override-summary, score) for reporting."""
        rows = []
        for candidate in self.candidates:
            summary = ", ".join(
                f"{key}={value}" for key, value in candidate.overrides.items()
            )
            rows.append([summary or "(defaults)", candidate.score])
        return rows


def mean_fct_score(results: Sequence[ExperimentResult]) -> float:
    """Default objective: average FCT across seeds, charging unfinished
    flows the full run length (a tuner must never learn to strand flows)."""
    return sum(r.mean_fct_ms_with_penalty() for r in results) / len(results)


def tune_hermes(
    base_config: ExperimentConfig,
    grid: Dict[str, Sequence[Any]],
    seeds: Sequence[int] = (1,),
    score: Callable[[Sequence[ExperimentResult]], float] = mean_fct_score,
    keep_results: bool = False,
) -> TuningOutcome:
    """Grid-search Hermes overrides on a scenario.

    Args:
        base_config: the scenario; its ``lb`` must be ``"hermes"`` and
            its ``hermes_overrides`` form the baseline each grid point
            extends.
        grid: mapping of ``HermesParams`` field name to candidate values.
        seeds: evaluated per candidate; the score averages over them.
        score: objective over the per-seed results (lower is better).
        keep_results: retain the raw results on each candidate.

    Returns:
        Candidates sorted best-first.
    """
    if base_config.lb != "hermes":
        raise ValueError("tuning targets Hermes; config.lb must be 'hermes'")
    if not grid:
        raise ValueError("empty tuning grid")
    keys = sorted(grid)
    candidates: List[TuningCandidate] = []
    for values in itertools.product(*(grid[key] for key in keys)):
        overrides = dict(base_config.hermes_overrides)
        overrides.update(dict(zip(keys, values)))
        results = [
            run_experiment(
                replace(base_config, seed=seed, hermes_overrides=overrides)
            )
            for seed in seeds
        ]
        candidates.append(
            TuningCandidate(
                overrides=dict(zip(keys, values)),
                score=score(results),
                results=list(results) if keep_results else [],
            )
        )
    candidates.sort(key=lambda c: c.score)
    return TuningOutcome(candidates)
