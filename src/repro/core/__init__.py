"""Hermes: the paper's primary contribution.

Three modules mirror the paper's design (Fig. 5):

* :mod:`repro.core.sensing` — comprehensive sensing (§3.1): path
  characterization from ECN fraction + RTT (Algorithm 1) and failure
  detection from timeout / retransmission signals;
* :mod:`repro.core.probing` — active probing guided by
  power-of-two-choices plus the previous best path, with one probe agent
  per rack (§3.1.3, Table 6);
* :mod:`repro.core.hermes` — the per-host agent implementing timely yet
  cautious rerouting (§3.2, Algorithm 2).
"""

from repro.core.parameters import HermesParams
from repro.core.sensing import (
    PATH_GOOD,
    PATH_GRAY,
    PATH_CONGESTED,
    PATH_FAILED,
    PathState,
    HermesLeafState,
)
from repro.core.probing import HermesProber, probe_overhead_model
from repro.core.hermes import HermesLB

__all__ = [
    "HermesParams",
    "PATH_GOOD",
    "PATH_GRAY",
    "PATH_CONGESTED",
    "PATH_FAILED",
    "PathState",
    "HermesLeafState",
    "HermesProber",
    "probe_overhead_model",
    "HermesLB",
]
