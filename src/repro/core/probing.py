"""Active probing (paper §3.1.3, Table 6).

Visibility costs probe bandwidth.  Hermes' design point:

* **power of two choices**: each probing round samples two random paths,
  *plus* the previously observed best path (better stability and a higher
  chance of hitting an underutilized path);
* **rack-level delegation**: one hypervisor per rack acts as the probe
  agent; agents probe each other and share the results with every
  hypervisor under the rack, amortizing the probe cost across hosts.

Probes are 64-byte packets that travel the *normal-priority* queue of the
probed path (so they experience real queueing delay and ECN marking);
replies return at high priority so the measured RTT reflects the forward
path.

:func:`probe_overhead_model` is the analytical model behind Table 6.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, TYPE_CHECKING

from repro.core.parameters import HermesParams
from repro.core.sensing import HermesLeafState
from repro.net.packet import PROBE_BYTES, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric


class HermesProber:
    """Per-rack probe agent.

    Every ``probe_interval`` the agent probes, for each remote leaf, two
    random paths plus the previously best one, and feeds the replies into
    the rack's shared :class:`~repro.core.sensing.HermesLeafState`.
    """

    def __init__(
        self,
        fabric: "Fabric",
        leaf: int,
        leaf_state: HermesLeafState,
        params: HermesParams,
        rng: random.Random,
    ) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.topology = fabric.topology
        self.leaf = leaf
        self.leaf_state = leaf_state
        self.params = params
        self.rng = rng
        self.agent_host = next(iter(self.topology.hosts_of_leaf(leaf)))
        self._prev_best: Dict[int, int] = {}
        self.probes_sent = 0
        self.replies_received = 0
        #: Probes (or their replies) that died in-fabric — admin-down
        #: links eat probes exactly like data packets, and for a long
        #: time those deaths were invisible: ``probes_sent`` minus
        #: ``replies_received`` conflated losses with replies merely
        #: still in flight.  Wired by install_probe_loss_accounting.
        self.probes_lost = 0
        self._started = False
        self._round_event = None
        fabric.hosts[self.agent_host].probe_sink = self.on_reply

    def start(self) -> None:
        """Kick off the periodic probing loop (idempotent).  Rounds are
        jittered by the rack index so agents do not synchronize."""
        if self._started or not self.params.probing_enabled:
            return
        self._started = True
        jitter = (self.leaf * 7919) % max(1, self.params.probe_interval_ns)
        self._round_event = self.sim.schedule(jitter, self._round)

    def stop(self) -> None:
        """Cancel the probing loop and keep it stopped (``start`` becomes
        a no-op).  The sharded runner stops probers whose rack lives in
        another shard — the owning shard runs the rounds."""
        self._started = True
        if self._round_event is not None:
            self._round_event.cancel()
            self._round_event = None

    def _round(self) -> None:
        for dst_leaf in range(self.topology.config.n_leaves):
            if dst_leaf == self.leaf:
                continue
            paths = self.topology.paths(self.leaf, dst_leaf)
            if not paths or paths == (-1,):
                continue
            for path in self._candidates(dst_leaf, paths):
                self._send_probe(dst_leaf, path)
        self._round_event = self.sim.schedule(
            self.params.probe_interval_ns, self._round
        )

    def _candidates(self, dst_leaf: int, paths) -> set:
        """Two random choices plus the previous best (deduplicated)."""
        k = min(2, len(paths))
        chosen = set(self.rng.sample(list(paths), k))
        best = self._prev_best.get(dst_leaf)
        if best is not None and best in paths:
            chosen.add(best)
        return chosen

    def _send_probe(self, dst_leaf: int, path: int) -> None:
        dst_agent = next(iter(self.topology.hosts_of_leaf(dst_leaf)))
        probe = self.fabric.packet_pool.probe(
            0, self.agent_host, dst_agent, path, self.sim.now
        )
        self.probes_sent += 1
        self.fabric.send(probe)

    def on_reply(self, reply: Packet) -> None:
        """Fold a probe reply into the shared table and track the best path."""
        self.replies_received += 1
        dst_leaf = self.topology.leaf_of(reply.src)
        rtt = self.sim.now - reply.ts_echo
        self.leaf_state.record_probe(dst_leaf, reply.path_id, reply.ece, rtt)
        best = self._prev_best.get(dst_leaf)
        if best is None or best == reply.path_id:
            self._prev_best[dst_leaf] = reply.path_id
        else:
            best_rtt = self.leaf_state.state(dst_leaf, best).rtt_ns
            if rtt < best_rtt:
                self._prev_best[dst_leaf] = reply.path_id


def install_probe_loss_accounting(fabric: "Fabric", probers: Dict[int, HermesProber]) -> None:
    """Attribute dropped Hermes probes back to the prober that sent them.

    The fabric calls :attr:`Fabric.probe_drop_sink` with every dying
    PROBE/PROBE_REPLY; Hermes probes are the ones stamped flow_id 0.  An
    outbound probe is charged to the *source* agent's prober, a dying
    reply to the *destination* (the original prober, who will now wait
    forever).  Non-Hermes probe drops (detector heartbeats, breaker
    trials) fall through to whatever sink was installed before."""
    from repro.net.packet import PacketKind

    agents = {prober.agent_host: prober for prober in probers.values()}
    prev = fabric.probe_drop_sink

    def sink(packet, _agents=agents, _prev=prev) -> None:
        if packet.flow_id == 0:
            owner = _agents.get(
                packet.src
                if packet.kind == PacketKind.PROBE
                else packet.dst
            )
            if owner is not None:
                owner.probes_lost += 1
                return
        if _prev is not None:
            _prev(packet)

    fabric.probe_drop_sink = sink


def probe_overhead_model(
    n_leaves: int = 100,
    n_spines: int = 100,
    hosts_per_leaf: int = 100,
    link_gbps: float = 10.0,
    probe_bytes: int = PROBE_BYTES,
    probe_interval_us: float = 500.0,
    piggyback_visibility: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """The analytical visibility/overhead comparison of Table 6.

    Conventions (chosen to reproduce the paper's numbers; see
    EXPERIMENTS.md for the derivation):

    * *brute force* and *power of two choices* probe per destination
      **host** (each host independently probes every other host under a
      different rack over ``n_spines`` resp. 3 paths);
    * *Hermes* delegates to one probe agent per rack, which probes 3
      paths per destination **rack** and shares the results.

    Visibility is the number of parallel paths with fresh state per
    destination; overhead is probe send rate over the edge link capacity.

    Returns a mapping ``scheme -> {"visibility": ..., "overhead": ...}``
    (overhead as a fraction of link capacity, e.g. 100.0 = 100x).
    """
    if min(n_leaves, n_spines, hosts_per_leaf) < 1:
        raise ValueError("topology dimensions must be positive")
    interval_s = probe_interval_us * 1e-6
    link_bps = link_gbps * 1e9
    probe_bits = probe_bytes * 8
    remote_hosts = (n_leaves - 1) * hosts_per_leaf

    def per_host_overhead(paths_probed: int, destinations: int) -> float:
        return paths_probed * destinations * probe_bits / interval_s / link_bps

    po2c_paths = 3  # two random choices + previous best
    schemes = {
        "piggyback": {
            "visibility": (
                piggyback_visibility if piggyback_visibility is not None else 0.01
            ),
            "overhead": 0.0,
        },
        "brute-force": {
            "visibility": float(n_spines),
            "overhead": per_host_overhead(n_spines, remote_hosts),
        },
        "power-of-two-choices": {
            "visibility": float(po2c_paths),
            "overhead": per_host_overhead(po2c_paths, remote_hosts),
        },
        "hermes": {
            "visibility": float(po2c_paths),
            # One agent per rack probes per destination *rack* and shares.
            "overhead": per_host_overhead(po2c_paths, n_leaves - 1),
        },
    }
    return schemes
