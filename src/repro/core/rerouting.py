"""Path selection logic of Algorithm 2 (where to (re)route).

Two entry points mirror the algorithm's two branches:

* :meth:`ReroutingPolicy.initial_path` — lines 3–12: place a new flow, a
  timed-out flow, or a flow whose path failed, preferring *good* paths
  with the least local sending rate ``r_p`` (to prevent local hotspots),
  then *gray* paths, then a random non-failed path;
* :meth:`ReroutingPolicy.reroute_from_congested` — lines 13–23: move a
  flow off a congested path only to a *notably better* good (or gray)
  path; return ``None`` to stay put.

The vigorous variant (``require_notably=False``) drops the
notably-better margins — used by the Fig. 18 ablation to demonstrate why
caution matters.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set

from repro.core.parameters import HermesParams
from repro.core.sensing import (
    PATH_CONGESTED,
    PATH_FAILED,
    PATH_GOOD,
    PATH_GRAY,
    HermesLeafState,
)


class ReroutingPolicy:
    """Stateless path chooser over a rack's sensed path table."""

    def __init__(
        self,
        leaf_state: HermesLeafState,
        params: HermesParams,
        rng: random.Random,
    ) -> None:
        self.leaf_state = leaf_state
        self.params = params
        self.rng = rng

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    #: r_p values within this of the minimum count as tied (bits/s).
    RP_TIE_BPS = 1e6

    def _argmin_rp(self, dst_leaf: int, candidates: Sequence[int]) -> int:
        """The candidate with the least aggregate local sending rate.

        Near-ties are broken randomly — a deterministic tie-break would
        herd every idle-fabric placement onto the lowest path id.
        """
        now = self.leaf_state.sim.now
        rates = [
            (self.leaf_state.state(dst_leaf, path).rp_bps(now), path)
            for path in candidates
        ]
        best_rp = min(rate for rate, _ in rates)
        tied = [path for rate, path in rates if rate - best_rp <= self.RP_TIE_BPS]
        return tied[0] if len(tied) == 1 else self.rng.choice(tied)

    def _by_class(
        self, dst_leaf: int, paths: Iterable[int], excluded: Set[int]
    ) -> tuple:
        """Split paths into (good, gray, usable-non-failed)."""
        good: List[int] = []
        gray: List[int] = []
        usable: List[int] = []
        for path in paths:
            if path in excluded:
                continue
            kind = self.leaf_state.classify(dst_leaf, path)
            if kind == PATH_FAILED:
                continue
            usable.append(path)
            if kind == PATH_GOOD:
                good.append(path)
            elif kind == PATH_GRAY:
                gray.append(path)
        return good, gray, usable

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #

    def initial_path(
        self, dst_leaf: int, paths: Sequence[int], excluded: Set[int]
    ) -> int:
        """Place a new / timed-out / failed-path flow (lines 3–12)."""
        good, gray, usable = self._by_class(dst_leaf, paths, excluded)
        if good:
            return self._argmin_rp(dst_leaf, good)
        if gray:
            return self._argmin_rp(dst_leaf, gray)
        if usable:
            return self.rng.choice(usable)
        # Everything is failed or excluded: last resort, any alive path —
        # a wrong path beats dropping the flow on the floor.
        remaining = [p for p in paths if p not in excluded] or list(paths)
        return self.rng.choice(remaining)

    def reroute_from_congested(
        self,
        dst_leaf: int,
        paths: Sequence[int],
        current: int,
        excluded: Set[int],
        require_notably: bool = True,
    ) -> Optional[int]:
        """Pick a better path for a flow on a congested path (lines 13–23).

        Returns ``None`` when no acceptable alternative exists (the flow
        stays on its path — line 23).
        """
        good, gray, _usable = self._by_class(dst_leaf, paths, excluded)
        for bucket in (good, gray):
            candidates = [
                p
                for p in bucket
                if p != current
                and (
                    not require_notably
                    or self.leaf_state.notably_better(dst_leaf, p, current)
                )
            ]
            if candidates:
                return self._argmin_rp(dst_leaf, candidates)
        return None
