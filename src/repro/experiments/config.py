"""Experiment configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional

from repro.faults.spec import FaultEventSpec, FaultScheduleSpec
from repro.net.topology import TopologyConfig
from repro.sim.engine import DEFAULT_SCHEDULER, SCHEDULERS, seconds

TRANSPORTS = ("dctcp", "tcp")
FAILURE_KINDS = ("random_drop", "blackhole")


@dataclass
class FailureSpec:
    """A switch malfunction to inject (paper §5.3.3).

    Attributes:
        kind: ``"random_drop"`` or ``"blackhole"``.
        spine: index of the malfunctioning spine switch.
        drop_rate: per-packet drop probability (random_drop).
        src_leaf / dst_leaf / pair_fraction: which (src, dst) host pairs
            the blackhole matches (blackhole).
    """

    kind: str
    spine: int = 0
    drop_rate: float = 0.02
    src_leaf: int = 0
    dst_leaf: int = 1
    pair_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; known: {FAILURE_KINDS}"
            )
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if not 0.0 <= self.pair_fraction <= 1.0:
            raise ValueError("pair_fraction must be in [0, 1]")


@dataclass
class ExperimentConfig:
    """One simulation run.

    Attributes:
        topology: the fabric.
        lb: load-balancer name (see ``repro.lb.LB_REGISTRY``).
        lb_params: extra keyword arguments for the scheme installer.
        transport: ``"dctcp"`` (default, as in the paper) or ``"tcp"``.
        workload: ``"web-search"`` or ``"data-mining"``.
        load: offered load as a fraction of edge capacity.
        n_flows: how many flows to generate.
        seed: master random seed.
        size_scale: flow sizes are multiplied by this (<1 speeds up
            CPython runs; reported with every bench).
        time_scale: every protocol wall-clock timer (RTO floor, probe
            interval, failure sweep/hold, CONGA table aging) is
            multiplied by this.  Shrinking it together with
            ``size_scale`` keeps the paper's timescale ratios (RTO vs
            FCT, detection delay vs run span) intact on scaled runs.
        reorder_mask_us: receiver-side reordering mask for Presto*/DRB.
        dupthresh: sender duplicate-ACK threshold.
        hermes_overrides: field overrides applied on top of the
            automatically scaled Hermes parameters (e.g. a failure bench
            that scales the injected drop rate by ``1/size_scale`` must
            scale ``retx_fraction_threshold`` identically to keep the
            detector between congestion noise and failure signal).
        max_cwnd: congestion-window cap in packets.
        failure: optional switch malfunction, installed statically at t=0.
        faults: optional time-scheduled fault plane (see
            :mod:`repro.faults`) — link down/up, degrade/restore, random
            drops, blackholes and flapping, each applied/reverted at its
            scheduled nanosecond mid-run.  Fault RNG draws come from a
            dedicated stream, so runs are bit-identical outside the
            fault window.  Part of the result-cache key.
        extra_drain_ns: how long past the last arrival the run may last
            before unfinished flows are declared (blackholed ECMP flows
            never finish — the paper's Fig. 17b).
        visibility_sampling: enable the Table 2 sampler.
        validate: run under the full :mod:`repro.validate` invariant
            layer (byte conservation, FIFO/capacity legality, monotone
            clock, ECN-mark legality, Algorithm 1 path states).  Off by
            default — an unvalidated run pays nothing.  The
            ``REPRO_VALIDATE=1`` environment switch forces it on (and
            bypasses the result cache) without touching configs.
        trace: attach the :mod:`repro.telemetry` layer (structured event
            tracer, decision audit, engine profiler) to the run; the
            result's ``telemetry`` field then carries it.  Off by
            default — an untraced run pays one ``is not None`` branch
            per hook site.  ``REPRO_TRACE=1`` forces it on for every
            run; traced runs always bypass the result cache (a cached
            summary carries no telemetry).
        streaming_stats: FCT statistics collection mode.  ``False``:
            the exact :class:`~repro.metrics.fct.FctStats` collector —
            every flow record retained, exact percentiles.  ``True``:
            the bounded-memory
            :class:`~repro.metrics.streaming.StreamingFctStats`
            collector — O(centroids) state (t-digest + seeded
            reservoir cross-check), exact means/counts, estimated
            percentiles, no per-flow records; finished flows are also
            evicted from the fabric registry as they complete, so a
            million-flow cell no longer holds a million flow objects.
            ``None`` (default): auto — streaming kicks in at
            ``STREAMING_AUTO_FLOWS`` (200k) flows, below that exact.
            Part of the result-cache key like every other field.
        scheduler: event-queue engine: ``"wheel"`` (slotted timer wheel,
            the default — fastest), ``"wheel:auto"`` (wheel with slot
            geometry derived from the topology's link rates and the run's
            time scale, recorded in the result), or ``"heap"`` (binary
            heap, the original engine).  All three produce bit-identical
            results (enforced by the golden grid and the scheduler-
            differential suite).  ``REPRO_SCHEDULER`` overrides every
            config (and bypasses the result cache).  Not part of the
            result, only of how fast it is computed — but kept in the
            cache key so A/B benches never share entries.
        detector: optional failure-detector spec (see
            :mod:`repro.detect`): ``"transport"``,
            ``"bfd:tx=100us,mult=3"``, ``"breaker:threshold=0.5"``,
            ``"quorum:transport+bfd"`` or ``"fastest:transport+bfd"``.
            ``None`` (default) keeps each scheme's built-in sensing
            (Hermes' Algorithm 1, the zoo's ``LeafPathHealth``) and adds
            zero cost.  When set, every scheme consults the configured
            detector for path verdicts; time-valued *defaults* in the
            spec scale with ``time_scale``.  A plain string, so it is
            part of the result-cache key automatically.
        shards: spatial partitions to simulate the run across (see
            :mod:`repro.shard`).  ``1`` (default): the classic
            single-process run.  ``> 1``: the fabric is cut into that
            many leaf groups, one worker each, synchronized by
            conservative lookahead — bit-identical to ``shards=1`` by
            contract (records, event count, final clock).  Part of the
            result-cache key like every other field; some observability
            features (validate/trace/streaming/faults/detectors) are
            single-process only and raise at run time.
    """

    topology: TopologyConfig
    lb: str = "ecmp"
    lb_params: Dict[str, Any] = field(default_factory=dict)
    transport: str = "dctcp"
    workload: str = "web-search"
    load: float = 0.5
    n_flows: int = 200
    seed: int = 1
    size_scale: float = 1.0
    time_scale: float = 1.0
    reorder_mask_us: Optional[float] = None
    dupthresh: int = 3
    max_cwnd: float = 800.0
    hermes_overrides: Dict[str, Any] = field(default_factory=dict)
    failure: Optional[FailureSpec] = None
    faults: Optional[FaultScheduleSpec] = None
    extra_drain_ns: int = seconds(2.0)
    visibility_sampling: bool = False
    validate: bool = False
    trace: bool = False
    streaming_stats: Optional[bool] = None
    scheduler: str = DEFAULT_SCHEDULER
    detector: Optional[str] = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; known: {TRANSPORTS}"
            )
        if not 0.0 < self.load:
            raise ValueError("load must be positive")
        if self.n_flows < 1:
            raise ValueError("need at least one flow")
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; known: {SCHEDULERS}"
            )
        if self.streaming_stats not in (None, True, False):
            raise ValueError(
                "streaming_stats must be True, False or None (auto), "
                f"got {self.streaming_stats!r}"
            )
        if self.detector is not None:
            # Validate eagerly so a typo fails at config time, not three
            # layers deep in an installer.  Imported here: repro.detect
            # pulls in lb/net modules this module must not depend on.
            from repro.detect.spec import parse_detector

            parse_detector(self.detector)

    def streaming_enabled(self) -> bool:
        """Whether this run collects FCT statistics via the streaming
        collector: explicit ``streaming_stats`` wins; ``None`` auto-
        enables it at :data:`~repro.metrics.streaming.STREAMING_AUTO_FLOWS`
        flows, where exact collection's O(flows) memory stops being a
        reasonable default."""
        if self.streaming_stats is not None:
            return self.streaming_stats
        from repro.metrics.streaming import STREAMING_AUTO_FLOWS

        return self.n_flows >= STREAMING_AUTO_FLOWS

    # ------------------------------------------------------------------ #
    # Plain-dict round trip (JSON-safe)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dict that :meth:`from_dict` restores
        exactly.

        Nested specs become plain dicts; ``topology.link_overrides``
        (tuple keys — not JSON-representable as a mapping) becomes a list
        of ``[leaf, spine, rate_gbps]`` triples.
        """
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "topology":
                topo = asdict(value)
                topo["link_overrides"] = [
                    [leaf, spine, rate]
                    for (leaf, spine), rate in sorted(
                        value.link_overrides.items()
                    )
                ]
                out["topology"] = topo
            elif spec.name == "failure":
                out["failure"] = None if value is None else asdict(value)
            elif spec.name == "faults":
                out["faults"] = (
                    None
                    if value is None
                    else {"events": [asdict(e) for e in value.events]}
                )
            else:
                out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (or any dict in
        that shape — unknown keys are rejected, missing keys take their
        defaults; ``topology`` is required)."""
        data = dict(data)
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown config keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        if "topology" not in data:
            raise ValueError("config dict must carry a 'topology' section")
        topo = data["topology"]
        if isinstance(topo, dict):
            topo = dict(topo)
            overrides = topo.get("link_overrides", [])
            if isinstance(overrides, list):
                topo["link_overrides"] = {
                    (int(leaf), int(spine)): rate
                    for leaf, spine, rate in overrides
                }
            data["topology"] = TopologyConfig(**topo)
        failure = data.get("failure")
        if isinstance(failure, dict):
            data["failure"] = FailureSpec(**failure)
        faults = data.get("faults")
        if isinstance(faults, dict):
            data["faults"] = FaultScheduleSpec(
                events=tuple(
                    FaultEventSpec(**event) for event in faults.get("events", ())
                )
            )
        if "lb_params" in data and data["lb_params"] is None:
            data["lb_params"] = {}
        if "hermes_overrides" in data and data["hermes_overrides"] is None:
            data["hermes_overrides"] = {}
        return cls(**data)
