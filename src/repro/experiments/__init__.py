"""Experiment harness: configs, the runner, scenario presets, reporting.

Every table and figure of the paper maps to a scenario preset here and a
bench under ``benchmarks/`` (see DESIGN.md §3 for the full index).
"""

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.parallel import (
    ResultCache,
    ResultSummary,
    resolve_jobs,
    run_cell,
    run_cells,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.report import format_table, gbps
from repro.experiments.scenarios import (
    testbed_topology,
    simulation_topology,
    asymmetric_overrides,
    bench_topology,
)

__all__ = [
    "ExperimentConfig",
    "FailureSpec",
    "ExperimentResult",
    "ResultCache",
    "ResultSummary",
    "resolve_jobs",
    "run_cell",
    "run_cells",
    "run_experiment",
    "format_table",
    "gbps",
    "testbed_topology",
    "simulation_topology",
    "asymmetric_overrides",
    "bench_topology",
]
