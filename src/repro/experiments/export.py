"""Result export: per-flow CSV traces and JSON summaries.

Downstream analysis (pandas, gnuplot, spreadsheets) wants flat files;
these helpers serialize an :class:`ExperimentResult` without pulling any
dependency into the library.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Any, Dict

from repro.experiments.runner import ExperimentResult

FLOW_FIELDS = [
    "flow_id",
    "src",
    "dst",
    "size_bytes",
    "start_ns",
    "fct_ns",
    "retransmissions",
    "timeouts",
    "finished",
]


def write_flow_csv(result: ExperimentResult, stream: IO[str]) -> int:
    """Write one row per flow; returns the number of rows written."""
    writer = csv.writer(stream)
    writer.writerow(FLOW_FIELDS)
    count = 0
    for record in result.stats.records:
        writer.writerow(
            [
                record.flow_id,
                record.src,
                record.dst,
                record.size_bytes,
                record.start_ns,
                record.fct_ns if record.fct_ns is not None else "",
                record.retransmissions,
                record.timeouts,
                int(record.finished),
            ]
        )
        count += 1
    return count


def summary_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-serializable summary of one experiment."""
    config = result.config
    stats = result.stats

    def safe(value: float) -> Any:
        return None if value != value else value  # NaN -> null

    return {
        "config": {
            "lb": config.lb,
            "transport": config.transport,
            "workload": config.workload,
            "load": config.load,
            "n_flows": config.n_flows,
            "seed": config.seed,
            "size_scale": config.size_scale,
            "time_scale": config.time_scale,
            "topology": {
                "n_leaves": config.topology.n_leaves,
                "n_spines": config.topology.n_spines,
                "hosts_per_leaf": config.topology.hosts_per_leaf,
                "host_link_gbps": config.topology.host_link_gbps,
                "spine_link_gbps": config.topology.spine_link_gbps,
                "degraded_links": len(config.topology.link_overrides),
            },
            "failure": (
                {
                    "kind": config.failure.kind,
                    "spine": config.failure.spine,
                    "drop_rate": config.failure.drop_rate,
                }
                if config.failure
                else None
            ),
        },
        "fct_ms": {
            "mean": safe(stats.mean_ms()),
            "median": safe(stats.median_ms()),
            "p99": safe(stats.p99_ms()),
            "mean_with_penalty": safe(result.mean_fct_ms_with_penalty()),
            "small_mean": safe(stats.small.mean_ms()),
            "small_p99": safe(stats.small.p99_ms()),
            "large_mean": safe(stats.large.mean_ms()),
        },
        "percentile_estimators": (
            stats.estimators()
            if getattr(stats, "is_streaming", False)
            else {"p50": "exact", "p99": "exact"}
        ),
        "flows": {
            "total": stats.count,
            "finished": stats.finished_count,
            "unfinished": stats.unfinished_count,
            "retransmissions": stats.total_retransmissions(),
        },
        "run": {
            "sim_time_ns": result.sim_time_ns,
            "events": result.events,
            "reroutes": result.total_reroutes,
        },
    }


def write_summary_json(result: ExperimentResult, stream: IO[str]) -> None:
    """Serialize :func:`summary_dict` as indented JSON."""
    json.dump(summary_dict(result), stream, indent=2, sort_keys=True)
    stream.write("\n")
