"""Build a fabric from a config, run the flows, collect the results."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.faults.plane import FaultSchedule
from repro.lb.factory import install_lb
from repro.metrics.fct import (
    LARGE_FLOW_BYTES,
    SMALL_FLOW_BYTES,
    FctStats,
    FlowRecord,
)
from repro.metrics.visibility import VisibilitySampler
from repro.net.fabric import Fabric
from repro.net.failures import (
    BlackholeFailure,
    RandomDropFailure,
    blackhole_pairs_between_racks,
)
from repro.sim.engine import (
    Simulator,
    make_simulator,
    microseconds,
    resolve_scheduler,
    scheduler_forced,
)
from repro.sim.tuning import wheel_geometry_for
from repro.sim.rng import RngStreams
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import TcpFlow
from repro.workload.distributions import distribution_by_name
from repro.workload.generator import FlowGenerator


@dataclass
class ExperimentResult:
    """Everything a bench needs to print a paper row.

    ``stats`` is a :class:`~repro.metrics.fct.FctStats` (exact, holds
    per-flow records) or a
    :class:`~repro.metrics.streaming.StreamingFctStats` (bounded
    memory, no records) depending on ``config.streaming_enabled()``;
    both expose the same aggregate read surface and an
    ``is_streaming`` discriminator.
    """

    config: ExperimentConfig
    stats: Any
    sim_time_ns: int
    events: int
    total_reroutes: int
    fabric: Optional[Fabric] = None
    shared: Dict[str, Any] = field(default_factory=dict)
    visibility_switch_pair: Optional[float] = None
    visibility_host_pair: Optional[float] = None
    #: The run's :class:`repro.telemetry.Telemetry` when tracing was on.
    telemetry: Optional[Any] = None
    #: Applied/reverted fault transitions (dicts, oldest first) when the
    #: run carried a fault schedule; empty otherwise.
    fault_timeline: Tuple[dict, ...] = ()
    #: Time from the first applied fault to the scheme's first failure
    #: detection at/after it (``None``: no faults, or never detected —
    #: schemes without a failure detector, e.g. ECMP, never detect).
    detection_ns: Optional[int] = None
    #: Time from the last reverted fault until the last timeout-afflicted
    #: flow finished — how long the scheme needed to drain the damage
    #: after the network healed.  ``0`` if no flow suffered a timeout;
    #: ``None`` if any timeout-afflicted flow never finished (see
    #: ``unrecovered_timeouts``) or the schedule never reverted.
    recovery_ns: Optional[int] = None
    #: Flows that suffered timeouts and were still unfinished at the end
    #: of the run — the signature of a scheme that never recovered.
    unrecovered_timeouts: int = 0
    #: Which engine actually ran the cell (after env resolution) and, for
    #: ``wheel:auto``, the derived slot geometry — everything needed to
    #: reproduce the run's scheduling exactly from the summary alone.
    scheduler_info: Dict[str, Any] = field(default_factory=dict)
    #: Aggregated counters of the configured :mod:`repro.detect` plane
    #: (folded over all leaves; combiners nest a ``members`` list):
    #: detections, false positives, flap suppressions and — when the run
    #: carried a fault schedule — ``detection_ns`` measured from the
    #: first applied fault.  Empty when ``config.detector`` is unset.
    detector_metrics: Dict[str, Any] = field(default_factory=dict)
    #: Probe packets (Hermes probes, BFD heartbeats, breaker trials and
    #: their replies) dropped in-fabric during the run — previously these
    #: deaths were invisible.
    probe_losses: int = 0

    @property
    def mean_fct_ms(self) -> float:
        return self.stats.mean_ms()

    def mean_fct_ms_with_penalty(self) -> float:
        """Average FCT counting unfinished flows at the full run length —
        how the paper's blackhole figures account for them."""
        return self.stats.mean_ms(penalize_unfinished_ns=self.sim_time_ns)


def validate_forced() -> bool:
    """True when ``REPRO_VALIDATE`` forces the invariant layer on for
    every run, regardless of each config's ``validate`` flag."""
    return os.environ.get("REPRO_VALIDATE", "").lower() in ("1", "on", "true", "yes")


def trace_forced() -> bool:
    """True when ``REPRO_TRACE`` forces the telemetry layer on for every
    run, regardless of each config's ``trace`` flag."""
    return os.environ.get("REPRO_TRACE", "").lower() in ("1", "on", "true", "yes")


def _install_failure(fabric: Fabric, spec: FailureSpec, rng: RngStreams) -> None:
    if spec.kind == "random_drop":
        failure = RandomDropFailure(spec.drop_rate, rng.get("failure"))
        failure.install(fabric.topology, spec.spine)
    else:
        pairs = blackhole_pairs_between_racks(
            fabric.topology, spec.src_leaf, spec.dst_leaf, spec.pair_fraction,
            rng.get("failure"),
        )
        failure = BlackholeFailure(pairs)
        failure.install(fabric.topology, spec.spine)


def _flow_record(f) -> FlowRecord:
    """Snapshot one flow object into an immutable record."""
    return FlowRecord(
        flow_id=f.flow_id,
        src=f.src,
        dst=f.dst,
        size_bytes=f.size_bytes,
        start_ns=f.start_time if f.start_time is not None else 0,
        fct_ns=f.fct_ns,
        retransmissions=f.retx_count,
        timeouts=f.timeout_count,
    )


def _resolved_lb_params(config: ExperimentConfig) -> Dict[str, Any]:
    """The scheme parameters ``install_lb`` receives for this config —
    ``config.lb_params`` plus the scale-derived defaults.

    Shared by the in-process runner and every shard worker: both must
    install byte-for-byte identical scheme state, so the scaling policy
    lives in exactly one place.
    """
    lb_params = dict(config.lb_params)
    if config.lb == "hermes" and "params" not in lb_params:
        # Flow sizes are scaled down for CPython speed, so the S gate
        # (minimum size sent before rerouting) must scale with them —
        # otherwise caution would freeze into never-reroute.  Timers
        # scale with time_scale to preserve timescale ratios.
        from repro.core.parameters import HermesParams

        params = HermesParams(
            size_threshold_bytes=int(600_000 * config.size_scale)
        )
        if config.time_scale != 1.0:
            params = params.time_scaled(config.time_scale)
        if config.hermes_overrides:
            from dataclasses import replace

            params = replace(params, **config.hermes_overrides)
        lb_params["params"] = params
    if config.lb == "conga" and config.time_scale != 1.0 and "aging_ns" not in lb_params:
        lb_params["aging_ns"] = max(1, int(10_000_000 * config.time_scale))
    if config.lb in ("reps", "diffflow", "rdna"):
        # The failure-aware zoo shares LeafPathHealth; its timers track
        # time_scale like Hermes' failure_hold_ns and τ-sweep so scaled
        # runs keep the same detection-vs-RTO ordering.
        if config.time_scale != 1.0:
            lb_params.setdefault(
                "hold_ns", max(1, int(50_000_000 * config.time_scale))
            )
            lb_params.setdefault(
                "retx_window_ns", max(1, int(10_000_000 * config.time_scale))
            )
        # Byte thresholds track size_scale like Hermes' S gate.
        if config.lb == "diffflow":
            lb_params.setdefault(
                "threshold_bytes", max(1, int(100_000 * config.size_scale))
            )
        elif config.lb == "rdna":
            lb_params.setdefault(
                "elephant_threshold_bytes",
                max(1, int(1_000_000 * config.size_scale)),
            )
    if config.detector is not None:
        # The detection plane rides lb_params so the factory can wire it
        # for any scheme; spec-DSL *default* timers scale with time_scale
        # (explicit values are taken literally) so heartbeat and breaker
        # windows keep their ratio to the scaled RTO floor.
        lb_params.setdefault("detector", config.detector)
        lb_params.setdefault("detector_time_scale", config.time_scale)
    return lb_params


def _flow_kwargs(config: ExperimentConfig) -> Dict[str, Any]:
    """Constructor kwargs for every flow of this config (shared with the
    shard workers, same single-source-of-truth policy as
    :func:`_resolved_lb_params`)."""
    kwargs: Dict[str, Any] = {
        "dupthresh": config.dupthresh,
        "max_cwnd": config.max_cwnd,
        "min_rto_ns": max(1, int(10_000_000 * config.time_scale)),
    }
    if config.reorder_mask_us is not None:
        kwargs["reorder_mask_ns"] = microseconds(config.reorder_mask_us)
    return kwargs


def _arrival_list(config: ExperimentConfig, rng: RngStreams):
    """The config's deterministic flow-arrival schedule.

    Every shard worker replays this identically (the "workload" stream is
    derived from the seed alone), as does the coordinator when it needs
    the drain deadline without building a fabric.
    """
    distribution = distribution_by_name(config.workload)
    if config.size_scale != 1.0:
        distribution = distribution.scaled(config.size_scale)
    generator = FlowGenerator(
        config.topology,
        distribution,
        config.load,
        rng.get("workload"),
        # A single-leaf fabric has no inter-rack pairs at all; fall back
        # to intra-rack traffic instead of refusing to generate.
        inter_rack_only=config.topology.n_leaves > 1,
    )
    return generator.arrival_list(config.n_flows)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one configured experiment to completion.

    The run ends when every flow finished or ``extra_drain_ns`` elapsed
    past the last arrival, whichever comes first; flows still active then
    are reported as unfinished.

    ``config.shards > 1`` dispatches to the spatially partitioned runner
    (:func:`repro.shard.run_sharded`), which produces bit-identical
    records, event counts and clocks via conservative lookahead.
    """
    if config.shards > 1:
        from repro.shard.runner import run_sharded

        return run_sharded(config)
    # REPRO_SCHEDULER overrides the config, the same way REPRO_VALIDATE/
    # REPRO_TRACE override their flags.  ``wheel:auto`` derives its slot
    # geometry from the topology + time scale (pure function — the same
    # config always builds the same wheel).
    scheduler_name = resolve_scheduler(config.scheduler)
    scheduler_info: Dict[str, Any] = {"name": scheduler_name}
    if scheduler_name == "wheel:auto":
        geometry = wheel_geometry_for(config.topology, config.time_scale)
        scheduler_info["geometry"] = geometry.to_dict()
        sim = make_simulator(
            scheduler_name,
            slot_ns_bits=geometry.slot_ns_bits,
            num_slot_bits=geometry.num_slot_bits,
        )
    else:
        sim = make_simulator(scheduler_name)
    rng = RngStreams(config.seed)
    fabric = Fabric(sim, config.topology, rng)
    checker = None
    if config.validate or validate_forced():
        # Imported lazily: the validate package is pure overhead for the
        # (default) unvalidated path and must never burden it.
        from repro.validate import install_checker

        checker = install_checker(fabric, config=config)
    telemetry = None
    if config.trace or trace_forced():
        # Lazy import for the same reason as the validate layer.
        from repro.telemetry import install_telemetry

        telemetry = install_telemetry(fabric, config=config)
    shared = install_lb(fabric, config.lb, **_resolved_lb_params(config))
    if checker is not None:
        from repro.validate import watch_leaf_states

        watch_leaf_states(checker, shared)
    if telemetry is not None:
        from repro.telemetry import watch_lb

        watch_lb(telemetry, fabric, shared)
    if config.failure is not None:
        _install_failure(fabric, config.failure, rng)
    fault_plane: Optional[FaultSchedule] = None
    if config.faults is not None and config.faults:
        fault_plane = FaultSchedule(
            fabric,
            config.faults,
            rng.get("faults"),
            audit=telemetry.audit if telemetry is not None else None,
        ).install()

    arrivals = _arrival_list(config, rng)

    sampler: Optional[VisibilitySampler] = None
    if config.visibility_sampling:
        sampler = VisibilitySampler(fabric)
        sampler.start()

    flow_kwargs = _flow_kwargs(config)
    flow_cls = DctcpFlow if config.transport == "dctcp" else TcpFlow

    small_b = int(SMALL_FLOW_BYTES * config.size_scale)
    large_b = int(LARGE_FLOW_BYTES * config.size_scale)
    stats_stream = None
    if config.streaming_enabled():
        # Lazy import, same policy as validate/telemetry: the exact path
        # must not pay for the streaming machinery.
        from repro.metrics.streaming import StreamingFctStats

        stats_stream = StreamingFctStats(
            small_bytes=small_b, large_bytes=large_b, seed=config.seed
        )
        fabric.enable_flow_eviction()
    # Exact mode keeps every flow object for end-of-run record building.
    # Streaming mode keeps none: outcomes fold into the collector as
    # flows finish and finished flows are evicted from the fabric
    # registry, so peak memory is O(in-flight + centroids) rather than
    # O(n_flows).  Only timeout-afflicted flows (the recovery metric's
    # input — a small set by construction) are snapshotted as records.
    flows: List[TcpFlow] = []
    afflicted_records: List[FlowRecord] = []
    remaining = len(arrivals)
    # The run may not stop while fault events are still scheduled: a
    # revert that never fires would leave the timeline (and the recovery
    # metric) incomplete.  Capped at the drain deadline below.
    fault_end_ns = 0
    if fault_plane is not None:
        fault_end_ns = max(e.time_ns for e in fault_plane.expanded_events())

    def on_done(flow) -> None:
        nonlocal remaining
        remaining -= 1
        if sampler is not None:
            sampler.flow_finished(flow)
        if stats_stream is not None:
            stats_stream.add(
                flow.size_bytes, flow.fct_ns, flow.retx_count,
                flow.timeout_count,
            )
            if flow.timeout_count > 0:
                afflicted_records.append(_flow_record(flow))
            # Evict once the network is quiet for this flow.  Immediate
            # removal would silently swallow stragglers (a retransmitted
            # segment still elicits an ACK from a finished flow), so the
            # fabric defers until the last in-flight packet dies —
            # keeping streaming runs bit-identical to exact runs.
            fabric.retire_flow(flow.flow_id)
        if remaining == 0:
            if sim.now >= fault_end_ns:
                sim.stop()
            else:
                sim.schedule_at(fault_end_ns, sim.stop)

    fabric.on_flow_done = on_done

    def start_flow(arrival) -> None:
        flow = flow_cls(
            fabric, arrival.src, arrival.dst, arrival.size_bytes, **flow_kwargs
        )
        fabric.register_flow(flow)
        if stats_stream is None:
            flows.append(flow)
        if sampler is not None:
            sampler.flow_started(flow)
        flow.start()

    for arrival in arrivals:
        sim.schedule_at(arrival.time_ns, start_flow, arrival)

    deadline = arrivals[-1].time_ns + config.extra_drain_ns
    # One uninterrupted run: the last flow's completion callback calls
    # sim.stop(), ending the loop at exactly that event — no slice polling.
    sim.run(until=deadline)
    if sampler is not None:
        sampler.stop()
    if checker is not None:
        shared["invariants"] = checker.finalize()
    if telemetry is not None:
        telemetry.stop_series()
        shared["telemetry"] = telemetry.summary()

    if stats_stream is not None:
        # Whatever is still registered and unfinished: fold it in (the
        # collector counts it as unfinished) and snapshot it if the
        # recovery metric will need it.  Finished flows may linger here
        # too — retired while packets of theirs were still in flight at
        # stop time — but those were already folded in on_done.
        for f in fabric.flows.values():
            if f.finished:
                continue
            stats_stream.add(
                f.size_bytes, f.fct_ns, f.retx_count, f.timeout_count
            )
            if f.timeout_count > 0:
                afflicted_records.append(_flow_record(f))
        fabric.flows.clear()
        # The recovery metric only looks at timeout-afflicted flows, so
        # the afflicted subset is a faithful substitute for the full
        # record list.
        records = afflicted_records
    else:
        records = [_flow_record(f) for f in flows]
    total_reroutes = sum(
        host.lb.reroutes for host in fabric.hosts if host.lb is not None
    )
    fault_timeline: Tuple[dict, ...] = ()
    detection_ns: Optional[int] = None
    recovery_ns: Optional[int] = None
    unrecovered = 0
    if fault_plane is not None:
        fault_timeline = fault_plane.timeline()
        detection_ns = _detection_latency_ns(fault_plane, shared)
        recovery_ns, unrecovered = _recovery_latency_ns(fault_plane, records)
    detector_metrics: Dict[str, Any] = {}
    if shared.get("detectors"):
        detector_metrics = _fold_detector_metrics(
            list(shared["detectors"].values()),
            fault_plane.first_applied_ns() if fault_plane is not None else None,
        )

    return ExperimentResult(
        config=config,
        stats=(
            stats_stream
            if stats_stream is not None
            else FctStats(records, small_bytes=small_b, large_bytes=large_b)
        ),
        sim_time_ns=sim.now,
        events=sim.events_fired,
        total_reroutes=total_reroutes,
        fabric=fabric,
        shared=shared,
        visibility_switch_pair=(
            sampler.switch_pair_visibility() if sampler is not None else None
        ),
        visibility_host_pair=(
            sampler.host_pair_visibility() if sampler is not None else None
        ),
        telemetry=telemetry,
        fault_timeline=fault_timeline,
        detection_ns=detection_ns,
        recovery_ns=recovery_ns,
        unrecovered_timeouts=unrecovered,
        scheduler_info=scheduler_info,
        detector_metrics=detector_metrics,
        probe_losses=fabric.probe_drops,
    )


def _detection_latency_ns(
    plane: FaultSchedule, shared: Dict[str, Any]
) -> Optional[int]:
    """Nanoseconds from the first applied fault to the scheme's first
    failure detection at/after it (``None`` when the scheme has no
    failure detector, or never fired one — e.g. ECMP)."""
    first_apply = plane.first_applied_ns()
    if first_apply is None:
        return None
    detections: List[int] = []
    # For zoo schemes the leaf_states ARE the configured detectors (the
    # factory substituted them), so scanning both maps double-counts a
    # few times — harmless under min().  For schemes without health
    # tables (ECMP + a BFD detector, say) only the second map has them.
    for state in shared.get("leaf_states", {}).values():
        times = getattr(state, "detection_times", None)
        if times:
            detections.extend(t for t in times if t >= first_apply)
    for det in shared.get("detectors", {}).values():
        detections.extend(t for t in det.detection_times if t >= first_apply)
    return min(detections) - first_apply if detections else None


def _fold_detector_metrics(
    detectors: List[Any], first_apply: Optional[int]
) -> Dict[str, Any]:
    """Fold per-leaf detector counters into one run-level block.

    Combiners recurse member-wise (member ``i`` of every leaf folds into
    one nested block), so a quorum's frontier point and each layer's
    contribution are both readable from the summary."""
    out: Dict[str, Any] = {
        "detector": detectors[0].name,
        "detections": 0,
        "false_positive_count": 0,
        "flap_suppressions": 0,
        "detection_ns": None,
    }
    times: List[int] = []
    for det in detectors:
        out["detections"] += len(det.detection_times)
        out["false_positive_count"] += int(det.false_positive_count)
        out["flap_suppressions"] += int(det.flap_suppressions)
        times.extend(det.detection_times)
    if first_apply is not None:
        hits = [t for t in times if t >= first_apply]
        if hits:
            out["detection_ns"] = min(hits) - first_apply
    members = getattr(detectors[0], "members", None)
    if members:
        out["members"] = [
            _fold_detector_metrics(
                [det.members[i] for det in detectors], first_apply
            )
            for i in range(len(members))
        ]
    return out


def _recovery_latency_ns(
    plane: FaultSchedule, records: List[FlowRecord]
) -> tuple:
    """(recovery_ns, unrecovered_timeouts) — see ExperimentResult docs.

    Scheme-agnostic: measured purely from per-flow records.  A flow is
    *afflicted* if it suffered a timeout while alive during the fault
    window [first apply, last revert] — timeouts of flows that ran
    entirely outside the window are congestion noise, not fault damage.
    Recovery is over when the last afflicted flow finished; the latency
    is measured from the last reverted fault (the instant the network
    was healthy again)."""
    first_apply = plane.first_applied_ns()
    last_revert = plane.last_reverted_ns()
    if first_apply is None:
        return None, 0
    window_end = last_revert if last_revert is not None else None
    afflicted = [
        r
        for r in records
        if r.timeouts > 0
        and (window_end is None or r.start_ns <= window_end)
        and (r.fct_ns is None or r.start_ns + r.fct_ns >= first_apply)
    ]
    unrecovered = sum(1 for r in afflicted if r.fct_ns is None)
    if last_revert is None or unrecovered:
        return None, unrecovered
    if not afflicted:
        return 0, 0
    last_done = max(r.start_ns + r.fct_ns for r in afflicted)
    return max(0, last_done - last_revert), 0
