"""Build a fabric from a config, run the flows, collect the results."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.lb.factory import install_lb
from repro.metrics.fct import FctStats, FlowRecord
from repro.metrics.visibility import VisibilitySampler
from repro.net.fabric import Fabric
from repro.net.failures import (
    BlackholeFailure,
    RandomDropFailure,
    blackhole_pairs_between_racks,
)
from repro.sim.engine import Simulator, microseconds
from repro.sim.rng import RngStreams
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import TcpFlow
from repro.workload.distributions import distribution_by_name
from repro.workload.generator import FlowGenerator


@dataclass
class ExperimentResult:
    """Everything a bench needs to print a paper row."""

    config: ExperimentConfig
    stats: FctStats
    sim_time_ns: int
    events: int
    total_reroutes: int
    fabric: Optional[Fabric] = None
    shared: Dict[str, Any] = field(default_factory=dict)
    visibility_switch_pair: Optional[float] = None
    visibility_host_pair: Optional[float] = None
    #: The run's :class:`repro.telemetry.Telemetry` when tracing was on.
    telemetry: Optional[Any] = None

    @property
    def mean_fct_ms(self) -> float:
        return self.stats.mean_ms()

    def mean_fct_ms_with_penalty(self) -> float:
        """Average FCT counting unfinished flows at the full run length —
        how the paper's blackhole figures account for them."""
        return self.stats.mean_ms(penalize_unfinished_ns=self.sim_time_ns)


def validate_forced() -> bool:
    """True when ``REPRO_VALIDATE`` forces the invariant layer on for
    every run, regardless of each config's ``validate`` flag."""
    return os.environ.get("REPRO_VALIDATE", "").lower() in ("1", "on", "true", "yes")


def trace_forced() -> bool:
    """True when ``REPRO_TRACE`` forces the telemetry layer on for every
    run, regardless of each config's ``trace`` flag."""
    return os.environ.get("REPRO_TRACE", "").lower() in ("1", "on", "true", "yes")


def _install_failure(fabric: Fabric, spec: FailureSpec, rng: RngStreams) -> None:
    if spec.kind == "random_drop":
        failure = RandomDropFailure(spec.drop_rate, rng.get("failure"))
        failure.install(fabric.topology, spec.spine)
    else:
        pairs = blackhole_pairs_between_racks(
            fabric.topology, spec.src_leaf, spec.dst_leaf, spec.pair_fraction,
            rng.get("failure"),
        )
        failure = BlackholeFailure(pairs)
        failure.install(fabric.topology, spec.spine)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one configured experiment to completion.

    The run ends when every flow finished or ``extra_drain_ns`` elapsed
    past the last arrival, whichever comes first; flows still active then
    are reported as unfinished.
    """
    sim = Simulator()
    rng = RngStreams(config.seed)
    fabric = Fabric(sim, config.topology, rng)
    checker = None
    if config.validate or validate_forced():
        # Imported lazily: the validate package is pure overhead for the
        # (default) unvalidated path and must never burden it.
        from repro.validate import install_checker

        checker = install_checker(fabric, config=config)
    telemetry = None
    if config.trace or trace_forced():
        # Lazy import for the same reason as the validate layer.
        from repro.telemetry import install_telemetry

        telemetry = install_telemetry(fabric, config=config)
    lb_params = dict(config.lb_params)
    if config.lb == "hermes" and "params" not in lb_params:
        # Flow sizes are scaled down for CPython speed, so the S gate
        # (minimum size sent before rerouting) must scale with them —
        # otherwise caution would freeze into never-reroute.  Timers
        # scale with time_scale to preserve timescale ratios.
        from repro.core.parameters import HermesParams

        params = HermesParams(
            size_threshold_bytes=int(600_000 * config.size_scale)
        )
        if config.time_scale != 1.0:
            params = params.time_scaled(config.time_scale)
        if config.hermes_overrides:
            from dataclasses import replace

            params = replace(params, **config.hermes_overrides)
        lb_params["params"] = params
    if config.lb == "conga" and config.time_scale != 1.0 and "aging_ns" not in lb_params:
        lb_params["aging_ns"] = max(1, int(10_000_000 * config.time_scale))
    shared = install_lb(fabric, config.lb, **lb_params)
    if checker is not None:
        from repro.validate import watch_leaf_states

        watch_leaf_states(checker, shared)
    if telemetry is not None:
        from repro.telemetry import watch_lb

        watch_lb(telemetry, fabric, shared)
    if config.failure is not None:
        _install_failure(fabric, config.failure, rng)

    distribution = distribution_by_name(config.workload)
    if config.size_scale != 1.0:
        distribution = distribution.scaled(config.size_scale)
    generator = FlowGenerator(
        config.topology, distribution, config.load, rng.get("workload")
    )
    arrivals = generator.arrival_list(config.n_flows)

    sampler: Optional[VisibilitySampler] = None
    if config.visibility_sampling:
        sampler = VisibilitySampler(fabric)
        sampler.start()

    flow_kwargs: Dict[str, Any] = {
        "dupthresh": config.dupthresh,
        "max_cwnd": config.max_cwnd,
        "min_rto_ns": max(1, int(10_000_000 * config.time_scale)),
    }
    if config.reorder_mask_us is not None:
        flow_kwargs["reorder_mask_ns"] = microseconds(config.reorder_mask_us)
    flow_cls = DctcpFlow if config.transport == "dctcp" else TcpFlow

    flows: List[TcpFlow] = []
    remaining = len(arrivals)

    def on_done(flow) -> None:
        nonlocal remaining
        remaining -= 1
        if sampler is not None:
            sampler.flow_finished(flow)
        if remaining == 0:
            sim.stop()

    fabric.on_flow_done = on_done

    def start_flow(arrival) -> None:
        flow = flow_cls(
            fabric, arrival.src, arrival.dst, arrival.size_bytes, **flow_kwargs
        )
        fabric.register_flow(flow)
        flows.append(flow)
        if sampler is not None:
            sampler.flow_started(flow)
        flow.start()

    for arrival in arrivals:
        sim.schedule_at(arrival.time_ns, start_flow, arrival)

    deadline = arrivals[-1].time_ns + config.extra_drain_ns
    # One uninterrupted run: the last flow's completion callback calls
    # sim.stop(), ending the loop at exactly that event — no slice polling.
    sim.run(until=deadline)
    if sampler is not None:
        sampler.stop()
    if checker is not None:
        shared["invariants"] = checker.finalize()
    if telemetry is not None:
        telemetry.stop_series()
        shared["telemetry"] = telemetry.summary()

    records = [
        FlowRecord(
            flow_id=f.flow_id,
            src=f.src,
            dst=f.dst,
            size_bytes=f.size_bytes,
            start_ns=f.start_time if f.start_time is not None else 0,
            fct_ns=f.fct_ns,
            retransmissions=f.retx_count,
            timeouts=f.timeout_count,
        )
        for f in flows
    ]
    total_reroutes = sum(
        host.lb.reroutes for host in fabric.hosts if host.lb is not None
    )
    from repro.metrics.fct import LARGE_FLOW_BYTES, SMALL_FLOW_BYTES

    return ExperimentResult(
        config=config,
        stats=FctStats(
            records,
            small_bytes=int(SMALL_FLOW_BYTES * config.size_scale),
            large_bytes=int(LARGE_FLOW_BYTES * config.size_scale),
        ),
        sim_time_ns=sim.now,
        events=sim.events_fired,
        total_reroutes=total_reroutes,
        fabric=fabric,
        shared=shared,
        visibility_switch_pair=(
            sampler.switch_pair_visibility() if sampler is not None else None
        ),
        visibility_host_pair=(
            sampler.host_pair_visibility() if sampler is not None else None
        ),
        telemetry=telemetry,
    )
