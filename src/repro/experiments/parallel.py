"""Parallel experiment execution with a content-addressed result cache.

Every paper figure is a (scheme x load x seed) grid of independent,
seeded, deterministic simulations.  This module fans those cells out over
a :class:`~concurrent.futures.ProcessPoolExecutor` and memoizes finished
cells on disk, keyed by a stable hash of the full configuration plus a
hash of the ``repro`` source tree — re-running a bench only simulates
cells whose config or code actually changed.

Three invariants the rest of the repo relies on:

* **Determinism** — a parallel run produces bit-identical per-flow
  records to a serial run of the same grid (each cell's randomness comes
  exclusively from ``RngStreams(config.seed)``, so process boundaries
  cannot perturb it).  Enforced by ``tests/test_parallel.py``.
* **Order** — :func:`run_cells` returns results in input order, whatever
  order the pool finishes them in.
* **Picklability** — workers return a slim :class:`ResultSummary` (the
  :class:`~repro.experiments.runner.ExperimentResult` minus the live
  ``fabric``/``shared`` objects, which hold the simulator and cannot
  cross a process boundary).

Knobs (CLI flags override the environment):

* ``REPRO_JOBS`` — worker count; ``1`` forces the in-process serial path
  (handy under a debugger).  Default: ``os.cpu_count()``.
* ``REPRO_CACHE`` — set to ``0``/``off`` to disable the cache.
* ``REPRO_CACHE_DIR`` — cache location.  Default: ``~/.cache/repro-grid``.
* ``REPRO_CELL_TIMEOUT`` — per-cell wall-clock budget in seconds; a cell
  exceeding it is marked failed-with-reason (``ResultSummary.error``)
  and its worker is killed instead of hanging the whole grid.

Crash tolerance: a worker killed mid-cell (OOM kill, segfault, machine
going away) used to surface as ``BrokenProcessPool`` and abort the grid.
``run_cells`` now collects the cells that *did* finish, restarts the
pool for the rest, and — after bounded pool retries — falls back to
running the survivors serially in-process, so one poisoned cell can no
longer take the other N-1 down with it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.sim.engine import scheduler_forced
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    trace_forced,
    validate_forced,
)
from repro.metrics.fct import FctStats

#: Bump when the cache entry layout changes (not when simulation code
#: does — code changes are caught by :func:`code_version`).
CACHE_FORMAT = 1


# --------------------------------------------------------------------- #
# Result summaries
# --------------------------------------------------------------------- #


@dataclass
class ResultSummary:
    """Everything a bench prints, in picklable form.

    The same read surface as :class:`ExperimentResult` (``stats``,
    ``mean_fct_ms``, visibility, reroute counts) without the live
    ``fabric``/``shared`` objects.  Benches that need the fabric itself
    must run in-process via :func:`run_experiment`.
    """

    config: ExperimentConfig
    #: Exact :class:`FctStats` or bounded-memory
    #: :class:`~repro.metrics.streaming.StreamingFctStats`, matching the
    #: cell's ``streaming_enabled()``.  Both pickle cleanly.
    stats: Any
    sim_time_ns: int
    events: int
    total_reroutes: int
    #: Which estimator produced each reported percentile: ``"exact"``
    #: (sorted records), ``"reservoir"`` (streaming run small enough
    #: that the sample held every FCT — still exact), ``"tdigest"``
    #: (estimated, <1% relative error at p50/p99), or ``"none"`` (no
    #: finished flows).  A summary is thereby explicit about which
    #: numbers are measurements and which are estimates.
    percentile_estimators: Dict[str, str] = dataclasses.field(
        default_factory=dict
    )
    visibility_switch_pair: Optional[float] = None
    visibility_host_pair: Optional[float] = None
    #: Fault-plane outputs (see :class:`ExperimentResult` for semantics).
    fault_timeline: Tuple[dict, ...] = ()
    detection_ns: Optional[int] = None
    recovery_ns: Optional[int] = None
    unrecovered_timeouts: int = 0
    #: Engine that ran the cell (+ derived wheel geometry for
    #: ``wheel:auto``) — see :attr:`ExperimentResult.scheduler_info`.
    scheduler_info: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Folded counters of the configured detection plane (see
    #: :attr:`ExperimentResult.detector_metrics`); empty when the cell
    #: ran without a ``detector``.
    detector_metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: In-fabric probe/heartbeat deaths (see
    #: :attr:`ExperimentResult.probe_losses`).
    probe_losses: int = 0
    #: Why the cell produced no result (``None`` for a successful run).
    #: Set for cells that exceeded ``REPRO_CELL_TIMEOUT``; failed cells
    #: are never written to the cache.
    error: Optional[str] = None

    @property
    def mean_fct_ms(self) -> float:
        return self.stats.mean_ms()

    def mean_fct_ms_with_penalty(self) -> float:
        """Average FCT counting unfinished flows at the full run length —
        how the paper's blackhole figures account for them."""
        return self.stats.mean_ms(penalize_unfinished_ns=self.sim_time_ns)

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "ResultSummary":
        stats = result.stats
        if getattr(stats, "is_streaming", False):
            estimators = stats.estimators()
        else:
            estimators = {"p50": "exact", "p99": "exact"}
        return cls(
            config=result.config,
            stats=stats,
            percentile_estimators=estimators,
            sim_time_ns=result.sim_time_ns,
            events=result.events,
            total_reroutes=result.total_reroutes,
            visibility_switch_pair=result.visibility_switch_pair,
            visibility_host_pair=result.visibility_host_pair,
            fault_timeline=result.fault_timeline,
            detection_ns=result.detection_ns,
            recovery_ns=result.recovery_ns,
            unrecovered_timeouts=result.unrecovered_timeouts,
            scheduler_info=result.scheduler_info,
            detector_metrics=result.detector_metrics,
            probe_losses=result.probe_losses,
        )


def _failed_summary(config: ExperimentConfig, reason: str) -> ResultSummary:
    """Placeholder for a cell that produced no result (timed out)."""
    return ResultSummary(
        config=config,
        stats=FctStats([]),
        sim_time_ns=0,
        events=0,
        total_reroutes=0,
        error=reason,
    )


def _test_fault_hooks(config: ExperimentConfig) -> None:
    """Deterministic worker-fault injection for the crash-tolerance
    tests: inert unless a ``REPRO_TEST_*`` variable names this cell's
    seed, and never fires in the parent process — a serial in-process
    re-run of a cell that killed its worker must survive."""
    if multiprocessing.parent_process() is None:
        return
    crash = os.environ.get("REPRO_TEST_CRASH_SEED")
    if crash and config.seed == int(crash):
        os._exit(1)  # simulates an OOM kill / segfault mid-cell
    sleep = os.environ.get("REPRO_TEST_SLEEP")
    if sleep:
        seed_s, _, secs = sleep.partition(":")
        if config.seed == int(seed_s):
            time.sleep(float(secs))  # simulates a hung cell


def _run_cell(config: ExperimentConfig) -> ResultSummary:
    """Worker entry point: one cell, summarized.  Must stay module-level
    so the pool can import it by reference."""
    _test_fault_hooks(config)
    return ResultSummary.from_result(run_experiment(config))


# --------------------------------------------------------------------- #
# Stable config hashing
# --------------------------------------------------------------------- #


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, order-independent structure.

    Dataclasses become (classname, sorted field items); dict iteration
    order is erased by sorting on the repr of the canonical key.  Floats
    go through ``repr`` (shortest round-trip form, platform-stable).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in obj.items()]
        return ("dict", tuple(sorted(items, key=repr)))
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(v) for v in obj), key=repr)))
    if isinstance(obj, float):
        return ("float", repr(obj))
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    # Last resort: objects with a stable repr (enums, params objects).
    return ("repr", repr(obj))


_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file — any code change invalidates
    the whole cache, which is the only safe default for a simulator whose
    output *is* its code's behaviour."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def config_key(config: ExperimentConfig) -> str:
    """Content address of one cell: config hash + code version."""
    payload = repr((_canonical(config), CACHE_FORMAT)).encode()
    return f"{hashlib.sha256(payload).hexdigest()[:32]}-{code_version()}"


# --------------------------------------------------------------------- #
# On-disk cache
# --------------------------------------------------------------------- #


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(
        os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache")),
        "repro-grid",
    )


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "off", "no")


class ResultCache:
    """Pickled :class:`ResultSummary` objects under content addresses."""

    #: Ledger of entries deleted because they failed to decode; one
    #: filename per line, surfaced by ``repro cache``.
    CORRUPT_LOG = "corrupt.log"

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, config: ExperimentConfig) -> Optional[ResultSummary]:
        path = self._path(config_key(config))
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except OSError:
            return None  # plain miss
        except Exception:
            # Unpickling corrupt bytes can raise nearly anything
            # (UnpicklingError, ValueError, EOFError, ImportError, ...);
            # a stale or damaged entry is never fatal — just re-simulate.
            # Self-heal: a truncated/corrupt entry would otherwise sit on
            # disk producing a decode failure on every future lookup.
            self._evict_corrupt(path)
            return None

    def _evict_corrupt(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            return  # a concurrent reader already healed it
        try:
            with open(os.path.join(self.directory, self.CORRUPT_LOG), "a") as fh:
                fh.write(os.path.basename(path) + "\n")
        except OSError:
            pass  # the ledger is best-effort; the heal itself succeeded

    def corruption_count(self) -> int:
        """How many corrupt entries this cache directory has ever healed."""
        try:
            with open(os.path.join(self.directory, self.CORRUPT_LOG)) as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    def put(self, config: ExperimentConfig, summary: ResultSummary) -> None:
        os.makedirs(self.directory, exist_ok=True)
        # Atomic publish so a concurrent reader never sees a half-written
        # pickle (two benches may share the cache).
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(summary, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(config_key(config)))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith((".pkl", ".tmp")) or name == self.CORRUPT_LOG:
                try:
                    os.unlink(os.path.join(self.directory, name))
                    if name != self.CORRUPT_LOG:
                        removed += 1
                except OSError:
                    pass
        return removed

    def size(self) -> int:
        try:
            return sum(
                1 for n in os.listdir(self.directory) if n.endswith(".pkl")
            )
        except OSError:
            return 0

    def _entries(self) -> List[Tuple[str, int, float]]:
        """(path, bytes, mtime) for every entry, oldest first."""
        entries: List[Tuple[str, int, float]] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                meta = os.stat(path)
            except OSError:
                continue  # a concurrent prune/clear got there first
            entries.append((path, meta.st_size, meta.st_mtime))
        entries.sort(key=lambda e: e[2])
        return entries

    def total_bytes(self) -> int:
        """Disk footprint of all entries."""
        return sum(size for _, size, _ in self._entries())

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Garbage-collect the cache; returns ``(removed, reclaimed_bytes)``.

        Two independent policies, either or both:

        * ``max_age_s`` — entries older than this (by mtime) go first,
          regardless of size.  A content-addressed entry can never be
          *wrong* (code changes re-key it), only *abandoned* — age is
          how abandonment looks.
        * ``max_bytes`` — then oldest-first eviction until the remaining
          footprint fits.  LRU-flavoured: benches re-``put`` on miss, so
          recently useful entries have fresh mtimes.

        With neither given, nothing is removed (use :meth:`clear` for
        that).  Deletion races with concurrent readers are benign — a
        reader that loses an entry just re-simulates.
        """
        entries = self._entries()
        removed = 0
        reclaimed = 0
        if max_age_s is not None:
            cutoff = (time.time() if now is None else now) - max_age_s
            keep: List[Tuple[str, int, float]] = []
            for path, size, mtime in entries:
                if mtime < cutoff:
                    try:
                        os.unlink(path)
                        removed += 1
                        reclaimed += size
                    except OSError:
                        pass
                else:
                    keep.append((path, size, mtime))
            entries = keep
        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            for path, size, _ in entries:  # oldest first
                if total <= max_bytes:
                    break
                try:
                    os.unlink(path)
                    removed += 1
                    reclaimed += size
                    total -= size
                except OSError:
                    pass
        return removed, reclaimed


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


def cell_timeout(explicit: Optional[float] = None) -> Optional[float]:
    """Per-cell wall-clock budget in seconds: the explicit argument wins
    over ``REPRO_CELL_TIMEOUT``; ``None`` when neither is set.  Applies
    only to pool execution — a serial in-process cell cannot be
    interrupted from within.  The experiment service passes per-job
    budgets explicitly (mutating the env from service threads would
    race)."""
    if explicit is not None:
        if explicit <= 0:
            raise ValueError(
                f"cell timeout must be positive, got {explicit}"
            )
        return explicit
    env = os.environ.get("REPRO_CELL_TIMEOUT")
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_CELL_TIMEOUT must be a number of seconds, got {env!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"REPRO_CELL_TIMEOUT must be positive, got {value}")
    return value


def _kill_pool(pool) -> None:
    """Terminate a pool's workers without waiting: a hung cell holds its
    worker forever, so a graceful shutdown would hang too."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


#: Pool restarts before falling back to serial in-process execution.
MAX_POOL_ROUNDS = 2


def _pool_round(
    configs: Sequence[ExperimentConfig],
    pending: List[int],
    results: List[Optional["ResultSummary"]],
    jobs: int,
    timeout: Optional[float],
) -> List[int]:
    """One ProcessPoolExecutor attempt over ``pending``.

    Fills ``results`` for every cell that completed (or exceeded the
    per-cell timeout, which yields a failed-with-reason summary) and
    returns the indices that still need a run — non-empty exactly when a
    worker died (``BrokenProcessPool``) or was killed after a timeout,
    taking queued cells down with it.
    """
    from concurrent.futures import CancelledError, ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    futures = {i: pool.submit(_run_cell, configs[i]) for i in pending}
    leftover: List[int] = []
    try:
        for i in pending:
            future = futures[i]
            try:
                # Each wait gets a fresh budget: cells run concurrently
                # and queued cells accrue waiting time, so a shared
                # deadline would kill innocent cells on large grids.
                # This errs toward leniency — a hung cell still cannot
                # stall the grid longer than ~timeout past the previous
                # cell's completion.
                results[i] = future.result(timeout=timeout)
            except FutureTimeout:
                results[i] = _failed_summary(
                    configs[i],
                    f"cell exceeded REPRO_CELL_TIMEOUT={timeout:g}s",
                )
                # The worker is wedged inside the cell; the only way out
                # is to kill it, which breaks the pool for queued cells —
                # they surface below as BrokenProcessPool and get retried.
                _kill_pool(pool)
            except (BrokenProcessPool, CancelledError):
                leftover.append(i)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return leftover


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_JOBS`` env > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_cells(
    configs: Sequence[ExperimentConfig],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    cell_timeout_s: Optional[float] = None,
) -> List[ResultSummary]:
    """Run every cell, in parallel, through the cache; results in input
    order.

    Args:
        configs: the grid cells.
        jobs: worker processes (see :func:`resolve_jobs`); ``1`` keeps
            everything in-process — identical results, easier debugging.
        use_cache: override the ``REPRO_CACHE`` env switch.
        cache_dir: override the cache location.
        cell_timeout_s: per-cell wall-clock budget; overrides
            ``REPRO_CELL_TIMEOUT`` (see :func:`cell_timeout`).
    """
    jobs = resolve_jobs(jobs)
    if use_cache is None:
        use_cache = cache_enabled()
    if validate_forced() or trace_forced() or scheduler_forced():
        # A cached summary was produced without the invariant/telemetry
        # layer (or under a different engine than the one REPRO_SCHEDULER
        # asks to exercise); serving it would silently skip what the user
        # forced on.
        use_cache = False
    cache = ResultCache(cache_dir) if use_cache else None

    results: List[Optional[ResultSummary]] = [None] * len(configs)
    misses: List[int] = []
    for i, config in enumerate(configs):
        # Traced cells never touch the cache: ``config.trace`` is part of
        # the content address, but a stored ResultSummary carries no
        # telemetry, so a hit would return stats without the trace the
        # caller asked for.
        cacheable = cache is not None and not config.trace
        hit = cache.get(config) if cacheable else None
        if hit is not None:
            results[i] = hit
        else:
            misses.append(i)

    if misses:
        timeout = cell_timeout(cell_timeout_s)
        pending = list(misses)
        if jobs > 1 and len(pending) > 1:
            for _ in range(MAX_POOL_ROUNDS):
                if not pending:
                    break
                pending = _pool_round(configs, pending, results, jobs, timeout)
        # Serial path — and the crash-tolerance fallback: cells that
        # survived MAX_POOL_ROUNDS broken pools re-run in-process, where
        # a worker crash cannot eat them (a cell that kills *this*
        # process was never going to produce a result anywhere).
        for i in pending:
            results[i] = _run_cell(configs[i])
        if cache is not None:
            for i in misses:
                summary = results[i]
                if not configs[i].trace and summary.error is None:
                    cache.put(configs[i], summary)

    return results  # type: ignore[return-value]


def run_cell(
    config: ExperimentConfig,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ResultSummary:
    """Single-cell convenience wrapper (cache-aware, always in-process)."""
    return run_cells(
        [config], jobs=1, use_cache=use_cache, cache_dir=cache_dir
    )[0]


def grid_configs(
    schemes: Sequence[str],
    loads: Sequence[float],
    seeds: Sequence[int],
    make_config,
) -> List[ExperimentConfig]:
    """Flatten a (scheme x load x seed) grid into a config list.

    ``make_config(scheme, load, seed)`` builds one cell; cells are ordered
    scheme-major, then load, then seed — the traversal order every bench
    table assumes.
    """
    return [
        make_config(lb, load, seed)
        for lb in schemes
        for load in loads
        for seed in seeds
    ]


def grid_results(
    schemes: Sequence[str],
    loads: Sequence[float],
    seeds: Sequence[int],
    summaries: Sequence[ResultSummary],
) -> Dict[str, Dict[float, List[ResultSummary]]]:
    """Reassemble :func:`grid_configs`-ordered summaries into the nested
    ``{scheme: {load: [per-seed results]}}`` shape benches consume."""
    out: Dict[str, Dict[float, List[ResultSummary]]] = {}
    it = iter(summaries)
    for lb in schemes:
        out[lb] = {}
        for load in loads:
            out[lb][load] = [next(it) for _ in seeds]
    return out
