"""Canonical topologies of the paper's evaluation.

* :func:`testbed_topology` — the 12-server / 4-switch / 1 Gbps testbed
  (Fig. 8), with the asymmetric variant cutting half of one leaf–spine
  trunk (bisection drops to 75%, as in the paper);
* :func:`simulation_topology` — the 8×8 leaf–spine, 128-host, 10 Gbps
  ns-3 setup (§5.3), with 20% of leaf–spine links reduced to 2 Gbps in
  the asymmetric variant (§5.3.2);
* :func:`bench_topology` — a shape-preserving scaled-down fabric the
  benches default to so CPython runs finish in seconds.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.net.topology import TopologyConfig


def testbed_topology(asymmetric: bool = False) -> TopologyConfig:
    """The paper's hardware testbed (Fig. 8).

    Two leaves, six 1 Gbps hosts per leaf, four 1 Gbps uplinks per leaf
    (3:2 leaf oversubscription).  The four uplinks are modelled as four
    logical spines so ECMP hashes over four distinct 1 Gbps paths, as the
    real switches do.  The asymmetric variant cuts one uplink entirely:
    the bisection drops to 75% of the symmetric case, exactly as in the
    paper.
    """
    overrides: Dict[Tuple[int, int], float] = {}
    if asymmetric:
        overrides[(0, 3)] = 0.0
    return TopologyConfig(
        n_leaves=2,
        n_spines=4,
        hosts_per_leaf=6,
        host_link_gbps=1.0,
        spine_link_gbps=1.0,
        link_overrides=overrides,
        prop_delay_ns=1_000,  # base RTT ≈ 100 µs, as measured on the testbed
        buffer_bytes=400_000,
        ecn_threshold_bytes=300_000,  # scales to 30 KB at 1 Gbps (paper)
    )


def asymmetric_overrides(
    n_leaves: int,
    n_spines: int,
    fraction: float,
    reduced_gbps: float,
    seed: int,
) -> Dict[Tuple[int, int], float]:
    """Randomly pick ``fraction`` of leaf–spine links and reduce them.

    Mirrors §5.3.2: "reduce the capacity from 10 Gbps to 2 Gbps for 20%
    of randomly selected leaf-to-spine links".
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = random.Random(seed)
    links = [(l, s) for l in range(n_leaves) for s in range(n_spines)]
    count = int(round(fraction * len(links)))
    return {link: reduced_gbps for link in rng.sample(links, count)}


def simulation_topology(asymmetric: bool = False, seed: int = 7) -> TopologyConfig:
    """The paper's large-scale ns-3 setup: 8×8 leaf–spine, 128 hosts,
    10 Gbps links, 2:1 leaf oversubscription."""
    overrides: Dict[Tuple[int, int], float] = {}
    if asymmetric:
        overrides = asymmetric_overrides(8, 8, 0.20, 2.0, seed)
    return TopologyConfig(
        n_leaves=8,
        n_spines=8,
        hosts_per_leaf=16,
        host_link_gbps=10.0,
        spine_link_gbps=10.0,
        link_overrides=overrides,
        prop_delay_ns=1_000,
        buffer_bytes=750_000,
        ecn_threshold_bytes=97_500,
    )


def bench_topology(
    asymmetric: bool = False,
    seed: int = 7,
    n_leaves: int = 4,
    n_spines: int = 4,
    hosts_per_leaf: int = 8,
) -> TopologyConfig:
    """Shape-preserving scale-down of :func:`simulation_topology` used by
    the benches: same 2:1 oversubscription, same link speeds, fewer
    switches and hosts so a CPython run finishes in seconds."""
    overrides: Dict[Tuple[int, int], float] = {}
    if asymmetric:
        overrides = asymmetric_overrides(n_leaves, n_spines, 0.20, 2.0, seed)
    return TopologyConfig(
        n_leaves=n_leaves,
        n_spines=n_spines,
        hosts_per_leaf=hosts_per_leaf,
        host_link_gbps=10.0,
        spine_link_gbps=10.0,
        link_overrides=overrides,
        prop_delay_ns=1_000,
        buffer_bytes=750_000,
        ecn_threshold_bytes=97_500,
    )


def failure_bench_topology(
    n_leaves: int = 4,
    n_spines: int = 4,
    hosts_per_leaf: int = 6,
) -> TopologyConfig:
    """Scaled fabric for the failure benches (Figs. 16–17), at 1 Gbps.

    Failure detection runs on wall-clock timers (10 ms RTO, 10 ms τ
    sweep), so the run must span enough *simulated time* for detection to
    matter.  Slower links stretch simulated time at the same event cost
    and restore the paper's RTO-to-FCT ratio.
    """
    return TopologyConfig(
        n_leaves=n_leaves,
        n_spines=n_spines,
        hosts_per_leaf=hosts_per_leaf,
        host_link_gbps=1.0,
        spine_link_gbps=1.0,
        link_overrides={},
        prop_delay_ns=2_000,
        buffer_bytes=400_000,
        ecn_threshold_bytes=300_000,  # 30 KB at 1 Gbps
    )
