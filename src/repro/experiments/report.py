"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table (the benches' output format)."""
    text_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def gbps(bps: float) -> float:
    """bits/second -> Gbps."""
    return bps / 1e9
