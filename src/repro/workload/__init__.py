"""Workloads: empirical flow-size distributions and Poisson flow arrival.

The paper evaluates two production traces: *web-search* (the DCTCP paper)
and *data-mining* (VL2).  Both are heavy-tailed; data-mining is the more
skewed one (95% of bytes in the 3.6% of flows above 35 MB), which makes
it the harder load-balancing case.
"""

from repro.workload.distributions import (
    FlowSizeDistribution,
    WEB_SEARCH,
    DATA_MINING,
    distribution_by_name,
)
from repro.workload.generator import FlowGenerator, FlowArrival

__all__ = [
    "FlowSizeDistribution",
    "WEB_SEARCH",
    "DATA_MINING",
    "distribution_by_name",
    "FlowGenerator",
    "FlowArrival",
]
