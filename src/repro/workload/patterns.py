"""Synthetic traffic patterns beyond Poisson pair traffic.

The paper's discussion touches scenarios the Poisson generator cannot
express: incast (many-to-one, where MPTCP famously suffers and where a
load balancer must not spray the synchronized burst into one queue) and
permutation traffic (each host talks to exactly one other host — the
classic bisection stress test).  Both are provided here for examples,
tests and extension studies.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.topology import TopologyConfig
from repro.workload.generator import FlowArrival


def incast(
    config: TopologyConfig,
    target: int,
    n_senders: int,
    flow_bytes: int,
    rng: random.Random,
    start_ns: int = 0,
    jitter_ns: int = 10_000,
    inter_rack_only: bool = True,
) -> List[FlowArrival]:
    """A synchronized many-to-one burst into ``target``.

    Senders are drawn without replacement from the other hosts (other
    racks only, by default) and start within ``jitter_ns`` of each other.
    """
    if not 0 <= target < config.n_hosts:
        raise ValueError(f"target {target} outside the fabric")
    k = config.hosts_per_leaf
    candidates = [
        h
        for h in range(config.n_hosts)
        if h != target and (not inter_rack_only or h // k != target // k)
    ]
    if n_senders > len(candidates):
        raise ValueError(
            f"asked for {n_senders} senders, only {len(candidates)} available"
        )
    senders = rng.sample(candidates, n_senders)
    return [
        FlowArrival(
            start_ns + (rng.randrange(jitter_ns) if jitter_ns else 0),
            src,
            target,
            flow_bytes,
        )
        for src in senders
    ]


def permutation(
    config: TopologyConfig,
    flow_bytes: int,
    rng: random.Random,
    start_ns: int = 0,
    inter_rack_only: bool = True,
    max_attempts: int = 1000,
) -> List[FlowArrival]:
    """A random permutation: every host sends one flow, every host
    receives one flow (the classic full-bisection stress test)."""
    hosts = list(range(config.n_hosts))
    k = config.hosts_per_leaf
    for _ in range(max_attempts):
        receivers = hosts[:]
        rng.shuffle(receivers)
        ok = all(
            src != dst and (not inter_rack_only or src // k != dst // k)
            for src, dst in zip(hosts, receivers)
        )
        if ok:
            return [
                FlowArrival(start_ns, src, dst, flow_bytes)
                for src, dst in zip(hosts, receivers)
            ]
    raise RuntimeError("could not find a valid permutation (fabric too small?)")


def staggered_elephants(
    config: TopologyConfig,
    n_flows: int,
    flow_bytes: int,
    gap_ns: int,
    rng: random.Random,
    inter_rack_only: bool = True,
) -> List[FlowArrival]:
    """Long-lived flows starting ``gap_ns`` apart between random pairs —
    the steady traffic that starves flowlet-based schemes (paper §2.2.2)."""
    arrivals = []
    k = config.hosts_per_leaf
    for i in range(n_flows):
        while True:
            src = rng.randrange(config.n_hosts)
            dst = rng.randrange(config.n_hosts)
            if src == dst:
                continue
            if inter_rack_only and src // k == dst // k:
                continue
            break
        arrivals.append(FlowArrival(i * gap_ns, src, dst, flow_bytes))
    return arrivals
