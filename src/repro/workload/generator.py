"""Poisson flow generation targeting a fractional fabric load.

Following the paper's methodology (the flow generator of Bai et al.):
flows arrive as a Poisson process between random sender/receiver pairs
under different leaf switches.  The aggregate arrival rate is chosen so
that the offered load equals ``load`` × the fabric capacity (edge
capacity capped by the aggregate leaf-spine uplink capacity — in an
oversubscribed fabric the core, not the NICs, bounds sustainable load):

    λ = load × C_fabric / mean_flow_size
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.net.topology import TopologyConfig
from repro.workload.distributions import FlowSizeDistribution


@dataclass(frozen=True)
class FlowArrival:
    """One generated flow: when it starts, between whom, how big."""

    time_ns: int
    src: int
    dst: int
    size_bytes: int


class FlowGenerator:
    """Generate Poisson flow arrivals for a leaf–spine fabric.

    Args:
        config: the topology (for host count and capacities).
        distribution: flow-size distribution (already scaled if desired).
        load: offered load as a fraction of the total edge capacity.
        rng: dedicated random stream.
        inter_rack_only: restrict pairs to different leaves (the paper's
            generator does; intra-rack flows bypass the fabric entirely).
    """

    def __init__(
        self,
        config: TopologyConfig,
        distribution: FlowSizeDistribution,
        load: float,
        rng: random.Random,
        inter_rack_only: bool = True,
    ) -> None:
        if not 0.0 < load:
            raise ValueError(f"load must be positive, got {load}")
        if config.n_leaves < 2 and inter_rack_only:
            raise ValueError("inter-rack generation needs at least two leaves")
        self.config = config
        self.distribution = distribution
        self.load = load
        self.rng = rng
        self.inter_rack_only = inter_rack_only
        capacity_bps = config.fabric_capacity_bps()
        self.lambda_per_ns = (
            load * capacity_bps / 8.0 / distribution.mean() / 1e9
        )

    def mean_interarrival_ns(self) -> float:
        """Expected gap between consecutive flow arrivals."""
        return 1.0 / self.lambda_per_ns

    def _pick_pair(self) -> tuple:
        n = self.config.n_hosts
        k = self.config.hosts_per_leaf
        src = self.rng.randrange(n)
        while True:
            dst = self.rng.randrange(n)
            if dst == src:
                continue
            if self.inter_rack_only and dst // k == src // k:
                continue
            return src, dst

    def arrivals(
        self, n_flows: int, start_ns: int = 0
    ) -> Iterator[FlowArrival]:
        """Yield ``n_flows`` arrivals in time order."""
        if n_flows < 0:
            raise ValueError("n_flows must be non-negative")
        t = float(start_ns)
        for _ in range(n_flows):
            t += self.rng.expovariate(self.lambda_per_ns)
            src, dst = self._pick_pair()
            size = self.distribution.sample(self.rng)
            yield FlowArrival(int(t), src, dst, size)

    def arrival_list(self, n_flows: int, start_ns: int = 0) -> List[FlowArrival]:
        """Materialized :meth:`arrivals`."""
        return list(self.arrivals(n_flows, start_ns))
