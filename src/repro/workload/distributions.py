"""Empirical flow-size distributions (paper Fig. 7).

Each distribution is a piecewise-linear CDF over flow size in bytes,
sampled by inverse transform.  The point sets follow the published
traces:

* **web-search** — the DCTCP paper's production cluster: flows from
  ~10 KB to 30 MB, mean ≈ 1.6 MB, ~60% of flows under 100 KB yet ~95% of
  bytes from flows over 1 MB;
* **data-mining** — VL2's cluster: 80% of flows under 10 KB, a long tail
  to 1 GB; ~95% of bytes in the few percent of flows above 35 MB.

Benchmarks may scale sizes down by a constant factor
(:meth:`FlowSizeDistribution.scaled`) to keep CPython runtimes sane; the
scaling factor is always printed with the results.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple

KB = 1_000
MB = 1_000_000


class FlowSizeDistribution:
    """Piecewise-linear CDF over flow sizes in bytes.

    Args:
        name: label used in reports.
        points: ``(size_bytes, cdf)`` knots; cdf must be non-decreasing,
            start at 0.0 and end at 1.0.
    """

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [float(s) for s, _ in points]
        cdfs = [float(c) for _, c in points]
        if cdfs[0] != 0.0 or cdfs[-1] != 1.0:
            raise ValueError("CDF must start at 0.0 and end at 1.0")
        if any(b < a for a, b in zip(cdfs, cdfs[1:])):
            raise ValueError("CDF must be non-decreasing")
        if any(b < a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("sizes must be non-decreasing")
        if sizes[0] < 1.0:
            raise ValueError("smallest flow must be at least 1 byte")
        self.name = name
        self._sizes = sizes
        self._cdfs = cdfs

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (inverse-transform sampling)."""
        u = rng.random()
        idx = bisect.bisect_left(self._cdfs, u)
        if idx == 0:
            return max(1, int(self._sizes[0]))
        lo_c, hi_c = self._cdfs[idx - 1], self._cdfs[idx]
        lo_s, hi_s = self._sizes[idx - 1], self._sizes[idx]
        if hi_c == lo_c:
            return max(1, int(hi_s))
        frac = (u - lo_c) / (hi_c - lo_c)
        return max(1, int(lo_s + frac * (hi_s - lo_s)))

    def mean(self) -> float:
        """Expected flow size in bytes (piecewise-linear integration)."""
        total = 0.0
        for i in range(1, len(self._sizes)):
            mass = self._cdfs[i] - self._cdfs[i - 1]
            total += mass * (self._sizes[i] + self._sizes[i - 1]) / 2.0
        return total

    def cdf_at(self, size_bytes: float) -> float:
        """CDF evaluated at a size (linear interpolation)."""
        if size_bytes <= self._sizes[0]:
            return self._cdfs[0] if size_bytes < self._sizes[0] else self._cdfs[0]
        if size_bytes >= self._sizes[-1]:
            return 1.0
        idx = bisect.bisect_right(self._sizes, size_bytes)
        lo_s, hi_s = self._sizes[idx - 1], self._sizes[idx]
        lo_c, hi_c = self._cdfs[idx - 1], self._cdfs[idx]
        if hi_s == lo_s:
            return hi_c
        return lo_c + (size_bytes - lo_s) / (hi_s - lo_s) * (hi_c - lo_c)

    def scaled(self, factor: float) -> "FlowSizeDistribution":
        """A copy with every size multiplied by ``factor`` (min 1 byte)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        points = [
            (max(1.0, s * factor), c) for s, c in zip(self._sizes, self._cdfs)
        ]
        # Enforce monotone sizes after the 1-byte clamp.
        for i in range(1, len(points)):
            if points[i][0] < points[i - 1][0]:
                points[i] = (points[i - 1][0], points[i][1])
        return FlowSizeDistribution(f"{self.name}x{factor:g}", points)

    def points(self) -> List[Tuple[float, float]]:
        """The CDF knots (copy), for plotting Fig. 7."""
        return list(zip(self._sizes, self._cdfs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowSizeDistribution({self.name}, mean={self.mean():.0f}B)"


#: Web-search (DCTCP, Alizadeh et al. 2010).
WEB_SEARCH = FlowSizeDistribution(
    "web-search",
    [
        (6 * KB, 0.0),
        (6 * KB, 0.15),
        (13 * KB, 0.28),
        (19 * KB, 0.39),
        (33 * KB, 0.49),
        (53 * KB, 0.63),
        (133 * KB, 0.69),
        (667 * KB, 0.72),
        (1467 * KB, 0.77),
        (3333 * KB, 0.83),
        (6667 * KB, 0.89),
        (20 * MB, 0.97),
        (30 * MB, 1.0),
    ],
)

#: Data-mining (VL2, Greenberg et al. 2009).
DATA_MINING = FlowSizeDistribution(
    "data-mining",
    [
        (100, 0.0),
        (180, 0.1),
        (250, 0.2),
        (560, 0.3),
        (900, 0.4),
        (1_100, 0.5),
        (1_870, 0.6),
        (3_160, 0.7),
        (10 * KB, 0.8),
        (400 * KB, 0.9),
        (3_160 * KB, 0.95),
        (100 * MB, 0.98),
        (1_000 * MB, 1.0),
    ],
)

_BY_NAME = {d.name: d for d in (WEB_SEARCH, DATA_MINING)}


def distribution_by_name(name: str) -> FlowSizeDistribution:
    """Look up a built-in distribution by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown workload {name!r}; known: {known}") from None
