"""DCTCP on top of TCP New Reno.

Implements the DCTCP control law from Alizadeh et al. (SIGCOMM 2010):
the receiver echoes CE marks per packet (our ACKs are per-packet, so the
echo is exact), the sender maintains the EWMA marking fraction ``alpha``
updated once per window, and cuts ``cwnd`` by ``alpha / 2`` at most once
per window when marks arrive.  Loss handling (fast retransmit, RTO) is
inherited unchanged from New Reno, as in the paper's ns-3 setup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.packet import Packet
from repro.transport.tcp import TcpFlow

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric


class DctcpFlow(TcpFlow):
    """A DCTCP flow.

    Args:
        g: EWMA gain for the marking-fraction estimate (paper: 1/16).
        Remaining arguments are forwarded to :class:`TcpFlow`.
    """

    def __init__(self, fabric: "Fabric", src: int, dst: int, size_bytes: int,
                 g: float = 1.0 / 16.0, **kwargs) -> None:
        super().__init__(fabric, src, dst, size_bytes, **kwargs)
        if not 0.0 < g <= 1.0:
            raise ValueError(f"DCTCP gain g must be in (0, 1], got {g}")
        self.g = g
        self.ecn_capable = True
        self.alpha = 1.0  # start conservative, as the DCTCP paper suggests
        self._acks_total = 0
        self._acks_marked = 0
        self._alpha_seq = 0  # window boundary for the alpha update
        self._cut_seq = -1   # window boundary for the once-per-RTT cut

    def _ecn_feedback(self, ack: Packet, rtt_ns: int) -> None:
        self._acks_total += 1
        if ack.ece:
            self._acks_marked += 1
        # Update alpha once per window of data.
        if ack.ack_seq >= self._alpha_seq and self._acks_total > 0:
            fraction = self._acks_marked / self._acks_total
            self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
            self._acks_total = 0
            self._acks_marked = 0
            self._alpha_seq = self.snd_nxt
        # React to marks at most once per window in flight.
        if ack.ece and ack.ack_seq > self._cut_seq:
            self.cwnd = max(self.cwnd * (1.0 - self.alpha / 2.0), 1.0)
            self.ssthresh = self.cwnd
            self._cut_seq = self.snd_nxt
