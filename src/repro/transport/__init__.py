"""Transport protocols: TCP New Reno, DCTCP, UDP, reorder buffering.

The paper's evaluation runs DCTCP (default) and TCP; we implement both on
a shared New Reno engine plus a constant-rate UDP source for the
congestion-mismatch microbenchmarks (Fig. 2).  A receiver-side reordering
buffer (JUGGLER-style) is available to mask packet reordering for
Presto*/DRB, matching the paper's methodology.
"""

from repro.transport.base import FlowBase
from repro.transport.tcp import TcpFlow
from repro.transport.dctcp import DctcpFlow
from repro.transport.udp import UdpFlow
from repro.transport.rto import RtoEstimator

__all__ = ["FlowBase", "TcpFlow", "DctcpFlow", "UdpFlow", "RtoEstimator"]
