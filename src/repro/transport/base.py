"""Flow base class: identity, lifecycle, rate estimation.

A flow object holds *both* endpoints' state (sender and receiver); the
simulator is single-process, so splitting it in two would only add
plumbing.  The host layer dispatches DATA packets to :meth:`on_data`
(receiver side) and ACKs to :meth:`on_ack` (sender side).
"""

from __future__ import annotations

import math
from typing import Optional, TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric


class FlowBase:
    """Common flow state shared by TCP/DCTCP/UDP.

    Attributes consulted by load balancers (Hermes in particular):

    * ``bytes_sent`` — ``s_sent`` in the paper: bytes transmitted so far,
      used to estimate the remaining size;
    * ``rate_bps()`` — ``r_f``: DRE-smoothed sending rate;
    * ``current_path`` — the path the flow is pinned to right now;
    * ``if_timeout`` — set when the flow suffered an RTO; Hermes reroutes
      such flows at the next packet.
    """

    def __init__(
        self,
        fabric: "Fabric",
        src: int,
        dst: int,
        size_bytes: int,
        flow_id: Optional[int] = None,
    ) -> None:
        if src == dst:
            raise ValueError("flow endpoints must differ")
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        self.fabric = fabric
        self.sim = fabric.sim
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.flow_id = fabric.allocate_flow_id() if flow_id is None else flow_id
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.current_path: int = -2  # -2 = unassigned; -1 = intra-rack
        self.if_timeout: bool = False
        self.bytes_sent: int = 0
        self.pkts_sent: int = 0
        self.retx_count: int = 0
        self.timeout_count: int = 0
        self.last_tx_time: int = -(10**18)  # for flowlet detection
        # DRE rate estimator (lazy exponential decay).
        self._rate_tau_ns = 200_000
        self._rate_value = 0.0
        self._rate_last = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def fct_ns(self) -> Optional[int]:
        """Flow completion time, or ``None`` if unfinished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def start(self) -> None:
        """Begin transmission (subclasses send the initial window)."""
        raise NotImplementedError

    def on_data(self, packet: Packet) -> None:
        """Receiver-side handler for an arriving data packet."""
        raise NotImplementedError

    def on_ack(self, packet: Packet) -> None:
        """Sender-side handler for an arriving ACK."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Sending-rate estimation (r_f)
    # ------------------------------------------------------------------ #

    def _rate_add(self, size_bytes: int) -> None:
        now = self.sim.now
        dt = now - self._rate_last
        if dt > 0:
            self._rate_value *= math.exp(-dt / self._rate_tau_ns)
            self._rate_last = now
        self._rate_value += size_bytes

    def rate_bps(self) -> float:
        """Current DRE-smoothed sending rate in bits/second."""
        now = self.sim.now
        dt = now - self._rate_last
        value = self._rate_value
        if dt > 0:
            value *= math.exp(-dt / self._rate_tau_ns)
        return value * 8.0 / (self._rate_tau_ns / 1e9)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "done" if self.finished else "active"
        return (
            f"{type(self).__name__}(id={self.flow_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B {status})"
        )
