"""Retransmission-timeout estimation (RFC 6298 with the paper's floors).

The paper sets both the initial and the minimum TCP RTO to 10 ms; we do
the same by default.
"""

from __future__ import annotations

from repro.sim.engine import NS_PER_MS


class RtoEstimator:
    """SRTT/RTTVAR smoothing and exponential backoff.

    Args:
        init_rto_ns: RTO before any RTT sample exists.
        min_rto_ns: floor applied to the computed RTO.
        max_rto_ns: backoff ceiling.
    """

    __slots__ = ("srtt", "rttvar", "_rto", "min_rto_ns", "max_rto_ns", "_backoff")

    def __init__(
        self,
        init_rto_ns: int = 10 * NS_PER_MS,
        min_rto_ns: int = 10 * NS_PER_MS,
        max_rto_ns: int = 1_000 * NS_PER_MS,
    ) -> None:
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self._rto: int = init_rto_ns
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self._backoff: int = 1

    def update(self, rtt_ns: int) -> None:
        """Fold in one RTT sample (Karn's rule: never call for a
        retransmitted segment) and reset backoff."""
        if rtt_ns <= 0:
            return
        if self.srtt == 0.0:
            self.srtt = float(rtt_ns)
            self.rttvar = rtt_ns / 2.0
        else:
            delta = abs(self.srtt - rtt_ns)
            self.rttvar = 0.75 * self.rttvar + 0.25 * delta
            self.srtt = 0.875 * self.srtt + 0.125 * rtt_ns
        self._rto = int(self.srtt + max(4.0 * self.rttvar, 1.0))
        self._backoff = 1

    def backoff(self) -> None:
        """Double the effective RTO after a timeout (capped)."""
        self._backoff = min(self._backoff * 2, 64)

    @property
    def rto_ns(self) -> int:
        """Current RTO with floors, ceiling, and backoff applied."""
        rto = max(self._rto, self.min_rto_ns) * self._backoff
        return min(rto, self.max_rto_ns)
