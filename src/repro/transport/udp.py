"""Constant-rate UDP source.

Used by the congestion-mismatch microbenchmarks (paper Fig. 2: a 9 Gbps
rate-limited UDP flow shares the fabric with a sprayed DCTCP flow).  The
receiver side just counts bytes into time bins so throughput over time
can be plotted.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.net.packet import HEADER_BYTES, PacketKind
from repro.sim.engine import Event
from repro.transport.base import FlowBase

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric


class UdpFlow(FlowBase):
    """Open-loop UDP sender pacing packets at a fixed rate.

    Args:
        rate_bps: sending rate.
        duration_ns: stop sending after this long (``None`` = forever).
        packet_bytes: wire size per packet.
        fixed_path: pin all packets to one spine; if ``None``, the host's
            load-balancing agent is consulted per packet (so UDP can be
            sprayed by Presto/DRB like any other traffic).
        rx_bin_ns: width of the receive-throughput histogram bins.
    """

    def __init__(
        self,
        fabric: "Fabric",
        src: int,
        dst: int,
        rate_bps: float,
        duration_ns: Optional[int] = None,
        packet_bytes: int = 1500,
        fixed_path: Optional[int] = None,
        rx_bin_ns: int = 1_000_000,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"UDP rate must be positive, got {rate_bps}")
        if packet_bytes <= HEADER_BYTES:
            raise ValueError("packet size must exceed the header")
        expected = (
            int(rate_bps / 8 * duration_ns / 1e9) if duration_ns else 1 << 60
        )
        super().__init__(fabric, src, dst, max(expected, 1))
        self.rate_bps = rate_bps
        self.duration_ns = duration_ns
        self.packet_bytes = packet_bytes
        self.fixed_path = fixed_path
        self.interval_ns = int(packet_bytes * 8 * 1e9 / rate_bps)
        self.rx_bin_ns = rx_bin_ns
        self.rx_bytes = 0
        self._last_rx_ns = 0
        self._rx_bins: dict[int, int] = {}
        self._seq = 0
        self._intra_rack = (
            fabric.topology.leaf_of(src) == fabric.topology.leaf_of(dst)
        )
        self._fallback_path: Optional[int] = None
        # One persistent pacing event, re-armed per tick (no per-packet
        # Event allocation; a re-arm draws a fresh sequence number, so
        # dispatch order is identical to scheduling a new event).
        self._tick_event: Optional[Event] = None

    def start(self) -> None:
        self.start_time = self.sim.now
        self._tick()

    def stop(self) -> None:
        """Stop sending (receiver statistics stay available)."""
        self.finish_time = self.sim.now

    def _select_path(self, wire_bytes: int) -> int:
        if self._intra_rack:
            return -1
        if self.fixed_path is not None:
            return self.fixed_path
        agent = self.fabric.hosts[self.src].lb
        if agent is not None:
            return agent.select_path(self, wire_bytes)
        if self._fallback_path is None:
            paths = self.fabric.topology.paths_between_hosts(self.src, self.dst)
            digest = zlib.crc32(f"udp:{self.flow_id}".encode())
            self._fallback_path = paths[digest % len(paths)]
        return self._fallback_path

    def _tick(self) -> None:
        if self.finished:
            return
        if (
            self.duration_ns is not None
            and self.start_time is not None
            and self.sim.now - self.start_time >= self.duration_ns
        ):
            self.finish_time = self.sim.now
            return
        path = self._select_path(self.packet_bytes)
        self.current_path = path
        packet = self.fabric.packet_pool.acquire(
            self.flow_id, self.src, self.dst, self._seq, self.packet_bytes,
            PacketKind.UDP, path_id=path,
        )
        self._seq += 1
        self.pkts_sent += 1
        self.bytes_sent += self.packet_bytes - HEADER_BYTES
        self.last_tx_time = self.sim.now
        self._rate_add(self.packet_bytes)
        self.fabric.send(packet)
        event = self._tick_event
        if event is None:
            self._tick_event = self.sim.schedule(self.interval_ns, self._tick)
        else:
            self.sim.reschedule(event, self.interval_ns)

    # ------------------------------------------------------------------ #
    # Receiver
    # ------------------------------------------------------------------ #

    def on_data(self, packet: Packet) -> None:
        self.rx_bytes += packet.size
        self._last_rx_ns = self.sim.now
        bin_idx = self.sim.now // self.rx_bin_ns
        self._rx_bins[bin_idx] = self._rx_bins.get(bin_idx, 0) + packet.size

    def on_ack(self, packet: Packet) -> None:  # pragma: no cover - no ACKs
        pass

    def goodput_series(self) -> List[Tuple[float, float]]:
        """Received throughput per bin as ``(time_seconds, gbps)``."""
        series = []
        for bin_idx in sorted(self._rx_bins):
            gbps = self._rx_bins[bin_idx] * 8 / self.rx_bin_ns
            series.append((bin_idx * self.rx_bin_ns / 1e9, gbps))
        return series

    def mean_goodput_gbps(self) -> float:
        """Average received rate from first send to last receive (queued
        packets that drain after the sender stops still count as the
        bottleneck delivering them, not as extra rate)."""
        if self.start_time is None:
            return 0.0
        end = self.finish_time if self.finish_time is not None else self.sim.now
        end = max(end, self._last_rx_ns)
        elapsed = end - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.rx_bytes * 8 / elapsed
