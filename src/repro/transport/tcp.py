"""TCP New Reno.

Window-based sender with slow start, congestion avoidance, fast
retransmit / New Reno fast recovery with partial-ACK retransmission, and
RFC 6298 RTO with the paper's 10 ms floor.  The receiver ACKs every data
packet (cumulative ACKs, no delayed ACK) — ACKs travel the reverse of the
data packet's path in the high-priority queue, mirroring the paper's
testbed configuration for accurate RTT measurement.

Every outgoing data packet consults the host's load-balancing agent for a
path, which is what makes per-packet rerouting schemes (Hermes, Presto*,
DRB, DRILL) expressible.
"""

from __future__ import annotations

import zlib
from typing import Optional, TYPE_CHECKING

from repro.net.packet import HEADER_BYTES, Packet, PacketKind
from repro.sim.engine import Event
from repro.transport.base import FlowBase
from repro.transport.reorder import Receiver
from repro.transport.rto import RtoEstimator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

MSS = 1460  # payload bytes per packet


class TcpFlow(FlowBase):
    """A TCP New Reno flow.

    Args:
        fabric: the network.
        src / dst: endpoint host ids.
        size_bytes: application bytes to transfer.
        init_cwnd: initial window in packets (paper: 10).
        dupthresh: duplicate-ACK threshold for fast retransmit.
        max_cwnd: cap on the congestion window in packets.
        reorder_mask_ns: if set, the receiver masks reordering for this
            long before emitting duplicate ACKs (Presto*/DRB evaluation).
        flow_id: explicit flow id; ``None`` lets the fabric allocate the
            next sequential one.  The sharded runner pins ids to the
            global arrival index so every shard agrees with the serial
            run's allocation order.
    """

    def __init__(
        self,
        fabric: "Fabric",
        src: int,
        dst: int,
        size_bytes: int,
        init_cwnd: int = 10,
        dupthresh: int = 3,
        max_cwnd: float = 800.0,
        reorder_mask_ns: Optional[int] = None,
        min_rto_ns: int = 10_000_000,
        flow_id: Optional[int] = None,
    ) -> None:
        super().__init__(fabric, src, dst, size_bytes, flow_id=flow_id)
        self.mss = MSS
        self.n_pkts = (size_bytes + MSS - 1) // MSS
        self._last_payload = size_bytes - (self.n_pkts - 1) * MSS
        self.cwnd = float(init_cwnd)
        self.ssthresh = float(max_cwnd)
        self.max_cwnd = max_cwnd
        self.dupthresh = dupthresh
        # Classic TCP is not ECN-capable here; DCTCP flips this on.  The
        # flag propagates to every data packet so switches only CE-mark
        # traffic whose transport will react.
        self.ecn_capable = False
        self.snd_una = 0
        self.snd_nxt = 0
        self.dup_acks = 0
        self.in_recovery = False
        self.recover = 0
        self.rto = RtoEstimator(init_rto_ns=min_rto_ns, min_rto_ns=min_rto_ns)
        self._rto_event: Optional[Event] = None
        self._intra_rack = (
            fabric.topology.leaf_of(src) == fabric.topology.leaf_of(dst)
        )
        self._fallback_path: Optional[int] = None
        # Path each in-flight segment was last sent on, so retransmissions
        # are attributed to the path that lost the packet (Hermes' per-path
        # retransmission accounting depends on this).
        self._path_of: dict[int, int] = {}
        self.receiver = Receiver(
            self.sim, self._emit_ack, mask_timeout_ns=reorder_mask_ns,
            dupthresh=dupthresh,
        )

    # ------------------------------------------------------------------ #
    # Sender
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Record the start time and push the initial window."""
        self.start_time = self.sim.now
        self._maybe_send()

    def _select_path(self, wire_bytes: int) -> int:
        """Ask the host agent for a path (XPath-style source pinning)."""
        if self._intra_rack:
            return -1
        agent = self.fabric.hosts[self.src].lb
        if agent is not None:
            return agent.select_path(self, wire_bytes)
        # No agent installed: static ECMP-like hash so the flow still runs.
        if self._fallback_path is None:
            paths = self.fabric.topology.paths_between_hosts(self.src, self.dst)
            digest = zlib.crc32(f"{self.flow_id}:{self.src}:{self.dst}".encode())
            self._fallback_path = paths[digest % len(paths)]
        return self._fallback_path

    def _transmit(self, seq: int, retx: bool) -> None:
        payload = self.mss if seq < self.n_pkts - 1 else self._last_payload
        wire = payload + HEADER_BYTES
        path = self._select_path(wire)
        self.current_path = path
        packet = self.fabric.packet_pool.acquire(
            self.flow_id, self.src, self.dst, seq, wire, PacketKind.DATA,
            path_id=path, ecn_capable=self.ecn_capable,
        )
        packet.ts_echo = self.sim.now
        packet.is_retx = retx
        self.last_tx_time = self.sim.now
        self.pkts_sent += 1
        if not retx:
            self.bytes_sent += payload
        else:
            self.retx_count += 1
            lost_path = self._path_of.get(seq, path)
            agent = self.fabric.hosts[self.src].lb
            if agent is not None:
                # Blame the path that carried the lost copy, not the one
                # the retransmission happens to use.
                agent.on_retransmit(self, lost_path)
            tracer = self.fabric._tracer
            if tracer is not None:
                tracer.on_retransmit(self, seq, lost_path)
        self._path_of[seq] = path
        self._rate_add(wire)
        self.fabric.send(packet)
        if self._rto_event is None:
            self._arm_rto()

    def _maybe_send(self) -> None:
        """Fill the window with new data."""
        window = max(1, int(self.cwnd))
        while (
            not self.finished
            and self.snd_nxt < self.n_pkts
            and self.snd_nxt - self.snd_una < window
        ):
            self._transmit(self.snd_nxt, retx=False)
            self.snd_nxt += 1

    def on_ack(self, ack: Packet) -> None:
        if self.finished:
            return
        rtt = self.sim.now - ack.ts_echo
        if not ack.is_retx:
            self.rto.update(rtt)
        self._ecn_feedback(ack, rtt)
        agent = self.fabric.hosts[self.src].lb
        if agent is not None:
            agent.on_ack(self, ack.path_id, ack.ece, rtt, ack.is_retx)
            agent.on_path_feedback(self, ack.path_id, ack.conga_metric)
        ack_seq = ack.ack_seq
        if ack_seq > self.snd_una:
            newly = ack_seq - self.snd_una
            for seq in range(self.snd_una, ack_seq):
                self._path_of.pop(seq, None)
            self.snd_una = ack_seq
            self.dup_acks = 0
            if self.in_recovery:
                if ack_seq >= self.recover:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # New Reno partial ACK: retransmit the next hole,
                    # deflate by the amount acked.
                    self._transmit(self.snd_una, retx=True)
                    self.cwnd = max(self.cwnd - newly + 1.0, 1.0)
            else:
                self._increase_cwnd(newly)
            self._restart_rto()
            if self.snd_una >= self.n_pkts:
                self._complete()
                return
        elif ack_seq == self.snd_una and self.snd_nxt > self.snd_una:
            self.dup_acks += 1
            if self.in_recovery:
                self.cwnd += 1.0  # window inflation per extra dup ACK
            elif self.dup_acks >= self.dupthresh:
                self._enter_recovery()
        self._maybe_send()

    def _increase_cwnd(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.max_cwnd)
        else:
            self.cwnd = min(self.cwnd + newly_acked / self.cwnd, self.max_cwnd)

    def _enter_recovery(self) -> None:
        flight = self.snd_nxt - self.snd_una
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = self.ssthresh + float(self.dupthresh)
        self.in_recovery = True
        self.recover = self.snd_nxt
        self._transmit(self.snd_una, retx=True)

    def _ecn_feedback(self, ack: Packet, rtt_ns: int) -> None:
        """ECN reaction hook — New Reno ignores ECE; DCTCP overrides."""

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #

    def _arm_rto(self) -> None:
        # At most one live RTO event per flow, enforced here: an orphaned
        # second event fires as a phantom timeout whose handler re-arms
        # itself, multiplying events under sustained timeouts (_on_rto
        # used to double-arm via _transmit's tail plus its own call).
        if self._rto_event is not None:
            self._rto_event.cancel()
        # Pooled: the handle never outlives the event — _on_rto nulls it
        # before anything else, _complete cancels and nulls it.
        self._rto_event = self.sim.schedule_pooled(self.rto.rto_ns, self._on_rto)

    def _restart_rto(self) -> None:
        self._arm_rto()

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.finished or self.snd_una >= self.n_pkts:
            return
        self.timeout_count += 1
        self.if_timeout = True  # Hermes reroutes this flow at the next packet
        self.rto.backoff()
        flight = self.snd_nxt - self.snd_una
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_recovery = False
        self.dup_acks = 0
        agent = self.fabric.hosts[self.src].lb
        if agent is not None:
            agent.on_timeout(self, self.current_path)
        tracer = self.fabric._tracer
        if tracer is not None:
            tracer.on_timeout(self, self.current_path)
        # Go-back-N restart from the first unacked segment.
        self.snd_nxt = self.snd_una + 1
        self._transmit(self.snd_una, retx=True)
        self._arm_rto()

    def _complete(self) -> None:
        self.finish_time = self.sim.now
        self._path_of.clear()
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        agent = self.fabric.hosts[self.src].lb
        if agent is not None:
            agent.on_flow_done(self)
        self.fabric.flow_finished(self)

    # ------------------------------------------------------------------ #
    # Receiver
    # ------------------------------------------------------------------ #

    def on_data(self, packet: Packet) -> None:
        self.receiver.on_data(packet)

    def _emit_ack(self, template: Packet, copies: int) -> None:
        pool = self.fabric.packet_pool
        for _ in range(copies):
            ack = pool.ack(template, self.receiver.rcv_next, self.sim.now)
            self.fabric.send(ack)
