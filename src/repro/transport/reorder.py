"""Receiver-side in-order tracking and ACK policy.

Two policies are provided:

* the default acknowledges every arrival immediately (per-packet ACKs,
  cumulative) — out-of-order arrivals produce duplicate ACKs, which is
  what makes packet spraying hurt plain TCP;
* the *reorder-masking* policy (JUGGLER-style, used for Presto*/DRB in
  the paper's evaluation) suppresses duplicate ACKs while a gap is
  younger than a flush timeout.  If the gap persists (a real loss), the
  receiver emits a burst of duplicate ACKs to trigger fast retransmit.
"""

from __future__ import annotations

from typing import Callable, Optional, Set, TYPE_CHECKING

from repro.net.packet import Packet, clone_packet
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.tcp import TcpFlow


class Receiver:
    """Tracks in-order delivery and decides when to emit ACKs.

    Args:
        sim: event engine.
        send_ack: callback ``(template_packet, n_copies)`` — emits that
            many identical cumulative ACKs echoing the template's path,
            CE mark and timestamp.
        mask_timeout_ns: if set, reordering is masked: no duplicate ACKs
            until a gap has persisted this long.
        dupthresh: how many duplicate ACKs the sender needs for fast
            retransmit (used for the flush burst when masking).
    """

    __slots__ = (
        "sim",
        "send_ack",
        "mask_timeout_ns",
        "dupthresh",
        "rcv_next",
        "_ooo",
        "_gap_timer",
    )

    def __init__(
        self,
        sim: Simulator,
        send_ack: Callable[[Packet, int], None],
        mask_timeout_ns: Optional[int] = None,
        dupthresh: int = 3,
    ) -> None:
        self.sim = sim
        self.send_ack = send_ack
        self.mask_timeout_ns = mask_timeout_ns
        self.dupthresh = dupthresh
        self.rcv_next = 0
        self._ooo: Set[int] = set()
        self._gap_timer: Optional[Event] = None

    @property
    def has_gap(self) -> bool:
        return bool(self._ooo)

    def on_data(self, packet: Packet) -> None:
        """Process one data arrival and emit the appropriate ACK(s)."""
        seq = packet.seq
        if seq == self.rcv_next:
            self.rcv_next += 1
            ooo = self._ooo
            while self.rcv_next in ooo:
                ooo.remove(self.rcv_next)
                self.rcv_next += 1
            if not ooo and self._gap_timer is not None:
                self._gap_timer.cancel()
                self._gap_timer = None
            self.send_ack(packet, 1)
        elif seq > self.rcv_next:
            self._ooo.add(seq)
            if self.mask_timeout_ns is None:
                self.send_ack(packet, 1)  # immediate duplicate ACK
            elif self._gap_timer is None:
                # The timer outlives the delivery: clone the packet so the
                # template survives the fabric recycling the live object
                # (pooling lifecycle — no retention past deliver/drop).
                self._gap_timer = self.sim.schedule(
                    self.mask_timeout_ns, self._flush_gap, clone_packet(packet)
                )
        else:
            # Stale duplicate (e.g. spurious retransmission): ACK it so the
            # sender's cumulative state stays fresh.
            self.send_ack(packet, 1)

    def _flush_gap(self, template: Packet) -> None:
        """A gap outlived the masking window: treat it as a loss and emit
        enough duplicate ACKs to trigger the sender's fast retransmit."""
        self._gap_timer = None
        if not self._ooo:
            return
        self.send_ack(template, self.dupthresh)
        # Re-arm in case the retransmission is lost too.
        self._gap_timer = self.sim.schedule(
            self.mask_timeout_ns, self._flush_gap, template
        )
