"""Tests for the repro.telemetry observability layer."""

from __future__ import annotations

import json
import os

import pytest

from repro.lb.factory import install_lb
from repro.net.packet import Packet, PacketKind
from repro.telemetry import Telemetry, install_telemetry, watch_lb
from repro.telemetry.audit import DecisionAudit
from repro.telemetry.export import (
    explain_flow,
    perfetto_trace,
    read_jsonl,
    summarize_audit,
    summarize_events,
    write_csv,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.series import (
    EcnFractionSeries,
    LoopProfiler,
    PeriodicSampler,
    QueueSampler,
)
from repro.telemetry.tracer import EventTracer
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS
from tests.conftest import make_fabric


def traced_fabric(**kwargs):
    fabric = make_fabric()
    telemetry = install_telemetry(fabric, **kwargs)
    return fabric, telemetry


class TestEventTracer:
    def test_records_full_packet_lifecycle(self):
        fabric, telemetry = traced_fabric()
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000)
        kinds = telemetry.tracer.counts_by_kind()
        assert kinds["flow_start"] == 1
        assert kinds["flow_finish"] == 1
        assert kinds["send"] >= 2  # data + ack
        assert kinds["hop"] >= 2
        assert kinds["deliver"] >= 2
        finish = [
            r for r in telemetry.tracer.events if r.kind == "flow_finish"
        ]
        assert finish[0].note.startswith("fct_ns=")

    def test_drop_records_carry_reason_and_port(self):
        fabric, telemetry = traced_fabric()
        port = fabric.topology.all_ports()[0]
        port.drop_predicates.append(lambda packet, now: True)
        packet = Packet(0, 0, 2, 0, 1500, PacketKind.DATA, path_id=0)
        fabric.send(packet)
        drops = [r for r in telemetry.tracer.events if r.kind == "drop"]
        assert len(drops) == 1
        assert drops[0].note == "injected"
        assert drops[0].port == port.name

    def test_ring_buffer_bounds_memory(self, sim):
        tracer = EventTracer(sim, capacity=5)

        class FakeFlow:
            flow_id = 9
            src = 0
            dst = 1
            size_bytes = 100
            fct_ns = None

        for _ in range(12):
            tracer.on_flow_start(FakeFlow())
        assert len(tracer.events) == 5
        assert tracer.recorded == 12
        assert tracer.evicted == 7
        assert tracer.truncated
        # Eviction-independent counts still see everything.
        assert tracer.counts_by_kind()["flow_start"] == 12

    def test_paths_used_and_deliveries(self):
        fabric, telemetry = traced_fabric()
        install_lb(fabric, "drb")
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000)
        assert sorted(telemetry.tracer.paths_used(flow.flow_id)) == [0, 1]
        assert telemetry.tracer.deliveries(flow.flow_id) > 0

    def test_install_refuses_second_tracer(self):
        fabric, _ = traced_fabric()
        with pytest.raises(RuntimeError):
            install_telemetry(fabric)


class TestPeriodicSampler:
    def test_stop_cancels_pending_tick(self, sim):
        sampler = QueueSampler(sim, [], period_ns=1_000)
        sampler.start()
        assert sim.pending == 1
        sampler.stop()
        # The cancelled tick is skipped, never fired, and the queue
        # drains completely — the old sampler left a live event behind.
        assert sim.run() == 0
        assert sim.pending == 0

    def test_start_after_stop_single_tick_chain(self, sim):
        ticks = []

        class Counting(PeriodicSampler):
            def sample(self, now):
                ticks.append(now)

        sampler = Counting(sim, 1_000)
        sampler.start()
        sampler.stop()
        sampler.start()
        sampler.start()  # idempotent while running
        sim.run(until=5_500)
        assert ticks == [1_000, 2_000, 3_000, 4_000, 5_000]

    def test_queue_sampler_statistics(self, sim):
        class FakePort:
            name = "p"
            backlog_bytes = 0

        port = FakePort()
        sampler = QueueSampler(sim, [port], period_ns=100)
        sampler.start()

        def load(value):
            port.backlog_bytes = value

        for i, value in enumerate((100, 300, 200)):
            sim.schedule(50 + i * 100, load, value)
        sim.run(until=350)
        assert sampler.max_backlog("p") == 300
        assert sampler.mean_backlog("p") == pytest.approx(200.0)
        assert sampler.stddev_backlog("p") == pytest.approx(100.0)

    def test_collector_shim_import_is_hard_error(self):
        """The PR-6 compatibility shim's grace period is over: importing
        ``repro.metrics.collector`` is a hard ImportError pointing at
        telemetry.series (in-repo callers are all migrated)."""
        import importlib
        import sys

        sys.modules.pop("repro.metrics.collector", None)
        with pytest.raises(ImportError, match="telemetry.series"):
            importlib.import_module("repro.metrics.collector")

    def test_ecn_fraction_series(self, sim):
        class FakePort:
            name = "p"
            ecn_marks = 0
            pkts_sent = 0

        port = FakePort()
        series = EcnFractionSeries(sim, [port], period_ns=100)
        series.start()

        def traffic(pkts, marks):
            port.pkts_sent += pkts
            port.ecn_marks += marks

        sim.schedule(50, traffic, 10, 5)
        sim.schedule(150, traffic, 10, 0)
        sim.run(until=250)
        values = [v for _, v in series.samples["p"]]
        assert values == [0.5, 0.0]

    def test_loop_profiler_counts_by_kind(self, sim):
        profiler = LoopProfiler(sim, slab_ns=1_000)
        sim._profiler = profiler

        def noop():
            pass

        for i in range(6):
            sim.schedule(100 * (i + 1), noop)
        sim.run()
        assert profiler.events == 6
        (name, count), = profiler.top_kinds(1)
        assert "noop" in name
        assert count == 6
        assert profiler.summary()["events"] == 6


class TestDecisionAudit:
    def run_hermes(self, n_flows=8):
        fabric = make_fabric()
        telemetry = install_telemetry(fabric)
        shared = install_lb(fabric, "hermes")
        watch_lb(telemetry, fabric, shared)
        flows = []
        for i in range(n_flows):
            flow = DctcpFlow(fabric, i % 2, 2 + i % 2, 10 * MSS)
            fabric.register_flow(flow)
            flows.append(flow)
            flow.start()
        fabric.sim.run(until=50_000_000)
        return fabric, telemetry, flows

    def test_every_flow_gets_a_new_flow_decision(self):
        _, telemetry, flows = self.run_hermes()
        for flow in flows:
            decisions = telemetry.audit.decisions(flow.flow_id)
            assert decisions
            assert decisions[0].reason == "new-flow"
            assert decisions[0].path == -1

    def test_why_left_names_reason_and_thresholds(self):
        fabric = make_fabric()
        telemetry = install_telemetry(fabric)
        shared = install_lb(fabric, "hermes")
        watch_lb(telemetry, fabric, shared)
        flow = DctcpFlow(fabric, 0, 2, 400 * MSS)
        fabric.register_flow(flow)
        flow.start()
        # Force a failure evacuation: fail the flow's first path mid-run.
        def fail_current():
            state = shared["leaf_states"][0]
            state.mark_failed(1, flow.current_path)

        fabric.sim.schedule(30_000, fail_current)
        fabric.sim.run(until=50_000_000)
        moved = telemetry.audit.why_left(flow.flow_id, 0) or \
            telemetry.audit.why_left(flow.flow_id, 1)
        assert moved
        assert moved[0].reason in ("failed-path", "timeout", "congested-moved")
        # The failure overlay itself was audited with its hold time.
        failures = [
            r for r in telemetry.audit.path_events() if r.category == "failure"
        ]
        assert failures and failures[0].reason == "explicit"
        assert "hold_ns" in failures[0].detail

    def test_path_class_transitions_carry_thresholds(self):
        fabric = make_fabric()
        telemetry = install_telemetry(fabric)
        shared = install_lb(fabric, "hermes")
        watch_lb(telemetry, fabric, shared)
        state = shared["leaf_states"][0]
        # Drive one path's EWMAs into congested territory by hand.
        for _ in range(60):
            state.record_ack(1, 0, True, 1_000_000)
        state.classify(1, 0)
        transitions = [
            r
            for r in telemetry.audit.path_events(dst_leaf=1, path=0)
            if r.category == "path_class"
        ]
        assert transitions
        last = transitions[-1]
        assert last.reason.endswith("->congested")
        for key in ("f_ecn", "rtt_ns", "t_ecn", "t_rtt_low_ns", "t_rtt_high_ns"):
            assert key in last.detail

    def test_explain_flow_renders_lines(self):
        _, telemetry, flows = self.run_hermes()
        lines = telemetry.audit.explain_flow(flows[0].flow_id)
        assert lines
        assert "new-flow" in lines[0]

    def test_audit_ring_is_bounded(self, sim):
        audit = DecisionAudit(sim, capacity=3)
        for i in range(10):
            audit.on_decision(i, 0, 1, "new-flow", -1, 0)
        assert len(audit.records) == 3
        assert audit.evicted == 7
        assert audit.summary()["decisions_by_reason"]["new-flow"] == 10


class TestExport:
    def run_traced(self):
        fabric, telemetry = traced_fabric(sample_period_ns=100_000)
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, 10 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000)
        telemetry.stop_series()
        return telemetry

    def test_jsonl_roundtrip(self, tmp_path):
        telemetry = self.run_traced()
        path = str(tmp_path / "events.jsonl")
        written = write_jsonl(path, telemetry.tracer.iter_dicts())
        back = list(read_jsonl(path))
        assert written == len(back) == len(telemetry.tracer.events)
        assert back[0] == telemetry.tracer.events[0].to_dict()

    def test_csv_export(self, tmp_path):
        telemetry = self.run_traced()
        path = str(tmp_path / "events.csv")
        rows = write_csv(path, telemetry.tracer.iter_dicts())
        with open(path) as fh:
            lines = fh.read().strip().splitlines()
        assert len(lines) == rows + 1  # header
        assert lines[0].startswith("t,kind,flow")

    def test_perfetto_structure(self, tmp_path):
        telemetry = self.run_traced()
        path = str(tmp_path / "trace.json")
        write_perfetto(
            path,
            telemetry.tracer.iter_dicts(),
            telemetry.audit.iter_dicts(),
            series=telemetry.counter_series(),
            meta={"lb": "ecmp"},
        )
        doc = json.load(open(path))
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        # Metadata, instants, flow spans, counters all present.
        assert {"M", "i", "b", "e", "C"} <= phases
        spans_b = [e for e in events if e["ph"] == "b"]
        spans_e = [e for e in events if e["ph"] == "e"]
        assert len(spans_b) == len(spans_e) == 1
        assert spans_b[0]["id"] == spans_e[0]["id"]
        for event in events:
            if event["ph"] != "M":
                assert isinstance(event["ts"], float)

    def test_summaries_and_explain_over_dicts(self):
        telemetry = self.run_traced()
        events = summarize_events(telemetry.tracer.iter_dicts())
        assert events["records"] == len(telemetry.tracer.events)
        assert events["flows_seen"] >= 1
        audit = summarize_audit(
            [{"category": "decision", "reason": "new-flow"}]
        )
        assert audit["decisions_by_reason"] == {"new-flow": 1}
        lines = explain_flow(
            [
                {
                    "category": "decision",
                    "flow": 3,
                    "t": 10,
                    "path": 0,
                    "new_path": 1,
                    "reason": "congested-moved",
                    "detail": {"delta_ecn": 0.05},
                }
            ],
            3,
        )
        assert lines == [
            "t=10ns flow 3: congested-moved: path 0 -> 1 (delta_ecn=0.05)"
        ]


class TestCli:
    def test_trace_run_summarize_export(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "trace")
        assert main([
            "trace", "run", "--lb", "ecmp", "--flows", "10",
            "--size-scale", "0.05", "--time-scale", "0.05",
            "--out", out, "--flow", "0",
        ]) == 0
        for name in ("events.jsonl", "audit.jsonl", "perfetto.json",
                     "summary.json"):
            assert os.path.exists(os.path.join(out, name))
        doc = json.load(open(os.path.join(out, "perfetto.json")))
        assert doc["traceEvents"]

        assert main(["trace", "summarize", "--dir", out]) == 0
        report = capsys.readouterr().out
        assert '"flows_seen": 10' in report

        csv_out = str(tmp_path / "events.csv")
        assert main([
            "trace", "export", "--dir", out, "--format", "csv",
            "--out", csv_out,
        ]) == 0
        assert os.path.exists(csv_out)
