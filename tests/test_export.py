"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.export import (
    FLOW_FIELDS,
    summary_dict,
    write_flow_csv,
    write_summary_json,
)
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology


def small_result(**overrides):
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb="ecmp",
        workload="web-search",
        load=0.4,
        n_flows=12,
        seed=1,
        size_scale=0.05,
    )
    defaults.update(overrides)
    return run_experiment(ExperimentConfig(**defaults))


class TestFlowCsv:
    def test_row_per_flow(self):
        result = small_result()
        buffer = io.StringIO()
        rows = write_flow_csv(result, buffer)
        assert rows == 12
        parsed = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert parsed[0] == FLOW_FIELDS
        assert len(parsed) == 13

    def test_fct_parseable(self):
        result = small_result()
        buffer = io.StringIO()
        write_flow_csv(result, buffer)
        reader = csv.DictReader(io.StringIO(buffer.getvalue()))
        for row in reader:
            assert int(row["fct_ns"]) > 0
            assert row["finished"] == "1"


class TestSummary:
    def test_summary_roundtrips_as_json(self):
        result = small_result()
        buffer = io.StringIO()
        write_summary_json(result, buffer)
        data = json.loads(buffer.getvalue())
        assert data["config"]["lb"] == "ecmp"
        assert data["flows"]["total"] == 12
        assert data["fct_ms"]["mean"] > 0

    def test_nan_becomes_null(self):
        result = small_result(size_scale=0.01)  # likely no "large" flows
        data = summary_dict(result)
        large = data["fct_ms"]["large_mean"]
        assert large is None or large > 0

    def test_failure_recorded(self):
        result = small_result(
            failure=FailureSpec(kind="random_drop", spine=0, drop_rate=0.01)
        )
        data = summary_dict(result)
        assert data["config"]["failure"]["kind"] == "random_drop"

    def test_no_failure_is_null(self):
        data = summary_dict(small_result())
        assert data["config"]["failure"] is None
