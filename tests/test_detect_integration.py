"""End-to-end tests for the detection plane through the experiment
runner: detection-latency ordering, passive bit-identity, probe-loss
accounting, flap suppression under a real fault schedule, and
serial/parallel determinism with a detector attached.

Shapes are kept small (2x2 fabric, 60 flows) with *unscaled* time
(``time_scale=1.0``) so detection timers keep their literal meaning:
the transport RTO floor is 10 ms and the default BFD session detects
in 300 us — the latency gap under test is physical, not an artifact of
scaling.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_cells
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.faults.spec import flap, link_down, link_up, schedule

MS = 1_000_000

FAULTS = schedule(
    link_down(5 * MS, leaf=0, spine=0),
    link_up(20 * MS, leaf=0, spine=0),
)


def _config(**overrides) -> ExperimentConfig:
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4),
        lb="ecmp",
        workload="web-search",
        load=0.5,
        n_flows=60,
        seed=2,
        size_scale=0.2,
        extra_drain_ns=15 * MS,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestDetectionLatency:
    def test_bfd_detects_an_order_of_magnitude_before_transport(self):
        transport = run_experiment(_config(detector="transport",
                                           faults=FAULTS))
        bfd = run_experiment(_config(detector="bfd", faults=FAULTS))
        t_ns = transport.detector_metrics["detection_ns"]
        b_ns = bfd.detector_metrics["detection_ns"]
        assert t_ns is not None and b_ns is not None
        # The ISSUE's acceptance bar: BFD >= 10x faster on link_down.
        assert b_ns * 10 <= t_ns
        assert bfd.detector_metrics["false_positive_count"] == 0
        assert transport.detector_metrics["false_positive_count"] == 0
        # Heartbeats really died on the admin-down link.
        assert bfd.probe_losses > 0

    def test_detector_times_feed_summary_detection_ns(self):
        result = run_experiment(_config(detector="bfd", faults=FAULTS))
        assert result.detection_ns is not None
        assert result.detection_ns <= result.detector_metrics["detection_ns"]

    def test_combiner_metrics_nest_per_member(self):
        result = run_experiment(
            _config(detector="quorum:transport+bfd", faults=FAULTS)
        )
        members = result.detector_metrics["members"]
        assert [m["detector"] for m in members] == ["transport", "bfd"]
        # Each layer saw the outage on its own timescale.
        assert members[1]["detection_ns"] < members[0]["detection_ns"]


class TestFlapSuppression:
    def test_fast_flap_does_not_oscillate_transport(self):
        # 250us down-phases against a 50ms hold: the transport detector
        # must coalesce repeat evidence, not flip per cycle.
        faults = schedule(
            flap(5 * MS, leaf=0, spine=0, period_ns=500_000, duty=0.5,
                 until_ns=12 * MS),
        )
        result = run_experiment(_config(detector="transport", faults=faults))
        m = result.detector_metrics
        assert m["flap_suppressions"] > 0
        assert m["detections"] <= 4


class TestPassiveBitIdentity:
    def test_passive_detectors_do_not_perturb_clean_runs(self):
        baseline = run_experiment(_config())
        for spec in ("transport", "breaker"):
            watched = run_experiment(_config(detector=spec))
            assert watched.stats.mean_ms() == baseline.stats.mean_ms(), spec
            assert watched.stats.p99_ms() == baseline.stats.p99_ms(), spec
            assert watched.events == baseline.events, spec
            assert watched.detector_metrics["detections"] == 0, spec

    def test_active_detector_keeps_run_deterministic(self):
        a = run_experiment(_config(detector="bfd", faults=FAULTS))
        b = run_experiment(_config(detector="bfd", faults=FAULTS))
        assert a.stats.mean_ms() == b.stats.mean_ms()
        assert a.events == b.events
        assert a.detector_metrics == b.detector_metrics


class TestSerialParallelIdentity:
    def test_serial_equals_parallel_with_detector_attached(self):
        grid = [
            _config(detector="bfd", faults=FAULTS),
            _config(detector="fastest:transport+bfd", faults=FAULTS,
                    seed=3),
        ]
        serial = run_cells(grid, jobs=1, use_cache=False)
        parallel_ = run_cells(grid, jobs=2, use_cache=False)
        for s, p in zip(serial, parallel_):
            assert s.mean_fct_ms == p.mean_fct_ms
            assert s.events == p.events
            assert s.detector_metrics == p.detector_metrics
            assert s.probe_losses == p.probe_losses


class TestProbeLossAccounting:
    def test_hermes_probe_losses_are_counted_and_attributed(self):
        result = run_experiment(
            _config(lb="hermes", detector=None, faults=FAULTS)
        )
        probers = result.shared["probers"]
        attributed = sum(p.probes_lost for p in probers.values())
        # Probes died on the admin-down link, every death was charged
        # to its owning prober, and the run summary surfaces the total.
        assert attributed > 0
        assert result.probe_losses == attributed

    def test_clean_run_loses_no_probes(self):
        result = run_experiment(_config(lb="hermes", detector=None))
        assert result.probe_losses == 0
        assert all(
            p.probes_lost == 0 for p in result.shared["probers"].values()
        )


class TestEverySchemeConsultsDetectors:
    @pytest.mark.parametrize("lb", ("hermes", "conga", "reps", "clove-ecn"))
    def test_detector_attaches_across_scheme_families(self, lb):
        result = run_experiment(
            _config(lb=lb, detector="bfd", faults=FAULTS, n_flows=40)
        )
        detectors = result.shared["detectors"]
        assert sorted(detectors) == [0, 1]
        assert result.detector_metrics["detector"] == "bfd"
        assert result.detector_metrics["detection_ns"] is not None
