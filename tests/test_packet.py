"""Unit tests for packet construction and control-packet helpers."""

from repro.net.packet import (
    ACK_BYTES,
    PROBE_BYTES,
    PRIO_HIGH,
    PRIO_LOW,
    Packet,
    PacketKind,
    make_ack,
    make_probe,
    make_probe_reply,
)


def data_packet(**overrides) -> Packet:
    kwargs = dict(
        flow_id=7, src=1, dst=5, seq=3, size=1500, kind=PacketKind.DATA, path_id=2
    )
    kwargs.update(overrides)
    return Packet(**kwargs)


class TestPacket:
    def test_defaults(self):
        packet = data_packet()
        assert packet.ce is False
        assert packet.ece is False
        assert packet.is_retx is False
        assert packet.hop == 0
        assert packet.conga_metric == 0

    def test_priority_default_low(self):
        assert data_packet().priority == PRIO_LOW


class TestMakeAck:
    def test_ack_reverses_endpoints(self):
        data = data_packet()
        ack = make_ack(data, ack_seq=4, now=100)
        assert ack.src == data.dst
        assert ack.dst == data.src
        assert ack.flow_id == data.flow_id

    def test_ack_echoes_ce_as_ece(self):
        data = data_packet()
        data.ce = True
        ack = make_ack(data, 4, 100)
        assert ack.ece is True

    def test_ack_keeps_path_and_timestamp(self):
        data = data_packet()
        data.ts_echo = 1234
        ack = make_ack(data, 4, 100)
        assert ack.path_id == data.path_id
        assert ack.ts_echo == 1234

    def test_ack_is_high_priority_and_small(self):
        ack = make_ack(data_packet(), 4, 0)
        assert ack.priority == PRIO_HIGH
        assert ack.size == ACK_BYTES

    def test_ack_not_ecn_capable(self):
        assert make_ack(data_packet(), 4, 0).ecn_capable is False

    def test_ack_carries_retx_flag(self):
        data = data_packet()
        data.is_retx = True
        assert make_ack(data, 4, 0).is_retx is True

    def test_ack_carries_conga_metric(self):
        data = data_packet()
        data.conga_metric = 5
        assert make_ack(data, 4, 0).conga_metric == 5

    def test_cumulative_ack_seq(self):
        assert make_ack(data_packet(), 9, 0).ack_seq == 9


class TestProbes:
    def test_probe_is_small_and_normal_priority(self):
        probe = make_probe(1, 0, 3, 2, now=50)
        assert probe.size == PROBE_BYTES
        assert probe.priority == PRIO_LOW  # must experience real queueing
        assert probe.ecn_capable is True
        assert probe.ts_echo == 50

    def test_reply_reverses_and_echoes(self):
        probe = make_probe(1, 0, 3, 2, now=50)
        probe.ce = True
        reply = make_probe_reply(probe)
        assert (reply.src, reply.dst) == (3, 0)
        assert reply.path_id == 2
        assert reply.ece is True
        assert reply.ts_echo == 50

    def test_reply_high_priority(self):
        reply = make_probe_reply(make_probe(1, 0, 3, 2, 0))
        assert reply.priority == PRIO_HIGH
        assert reply.ecn_capable is False
