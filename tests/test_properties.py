"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fct import percentile
from repro.net.packet import Packet, PacketKind
from repro.net.port import OutputPort
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.transport.rto import RtoEstimator
from repro.workload.distributions import DATA_MINING, WEB_SEARCH, FlowSizeDistribution


# --------------------------------------------------------------------- #
# Engine ordering
# --------------------------------------------------------------------- #

@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100),
    st.sets(st.integers(min_value=0, max_value=99)),
)
@settings(max_examples=50, deadline=None)
def test_engine_cancellation_exactness(delays, cancel_idx):
    """Exactly the non-cancelled events fire."""
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(delay, fired.append, i) for i, delay in enumerate(delays)
    ]
    cancelled = {i for i in cancel_idx if i < len(events)}
    for i in cancelled:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


# --------------------------------------------------------------------- #
# Port conservation
# --------------------------------------------------------------------- #

@given(
    st.lists(
        st.tuples(
            st.integers(min_value=64, max_value=9000),   # size
            st.integers(min_value=0, max_value=1),       # priority
        ),
        min_size=1,
        max_size=150,
    ),
    st.integers(min_value=10_000, max_value=200_000),     # buffer
)
@settings(max_examples=50, deadline=None)
def test_port_conserves_packets(packets, buffer_bytes):
    """enqueued = delivered + dropped, and backlog drains to zero."""
    sim = Simulator()
    delivered = []
    port = OutputPort(
        sim, "p", 10e9, 1_000, buffer_bytes, 50_000, forward=delivered.append
    )
    accepted = 0
    for i, (size, prio) in enumerate(packets):
        packet = Packet(0, 0, 1, i, size, PacketKind.DATA)
        packet.priority = prio
        if port.enqueue(packet):
            accepted += 1
    sim.run()
    assert len(delivered) == accepted
    assert accepted + port.drops_overflow == len(packets)
    assert port.backlog_bytes == 0
    assert port.bytes_sent == sum(p.size for p in delivered)


@given(st.lists(st.integers(min_value=64, max_value=1500), min_size=2, max_size=50))
@settings(max_examples=30, deadline=None)
def test_port_fifo_within_priority(sizes):
    sim = Simulator()
    delivered = []
    port = OutputPort(sim, "p", 10e9, 0, 10**9, 0, forward=delivered.append)
    for i, size in enumerate(sizes):
        port.enqueue(Packet(0, 0, 1, i, size, PacketKind.DATA))
    sim.run()
    assert [p.seq for p in delivered] == list(range(len(sizes)))


# --------------------------------------------------------------------- #
# Percentile
# --------------------------------------------------------------------- #

@given(
    st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False),
             min_size=1, max_size=500),
    st.floats(min_value=0, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_percentile_bounded_by_extremes(values, q):
    data = sorted(values)
    result = percentile(data, q)
    assert data[0] <= result <= data[-1]


@given(
    st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False),
             min_size=2, max_size=200)
)
@settings(max_examples=50, deadline=None)
def test_percentile_monotone_in_q(values):
    data = sorted(values)
    results = [percentile(data, q) for q in (0, 25, 50, 75, 99, 100)]
    assert results == sorted(results)


# --------------------------------------------------------------------- #
# Flow-size distributions
# --------------------------------------------------------------------- #

@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_distribution_samples_in_support(seed):
    rng = random.Random(seed)
    for dist in (WEB_SEARCH, DATA_MINING):
        lo = dist.points()[0][0]
        hi = dist.points()[-1][0]
        sample = dist.sample(rng)
        assert lo <= sample <= hi or sample == 1


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=10**9),
                  st.floats(min_value=0, max_value=1)),
        min_size=2,
        max_size=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_distribution_cdf_monotone_everywhere(raw_points):
    """Any valid CDF we can construct has a monotone cdf_at."""
    sizes = sorted(s for s, _ in raw_points)
    cdfs = sorted(c for _, c in raw_points)
    cdfs[0], cdfs[-1] = 0.0, 1.0
    points = list(zip(sizes, cdfs))
    dist = FlowSizeDistribution("prop", points)
    probes = [sizes[0] - 1, sizes[0], (sizes[0] + sizes[-1]) // 2, sizes[-1] + 1]
    values = [dist.cdf_at(p) for p in sorted(probes)]
    assert values == sorted(values)
    assert 0.0 <= min(values) and max(values) <= 1.0


@given(st.floats(min_value=0.001, max_value=10.0),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_scaled_distribution_scales_samples(factor, seed):
    base = WEB_SEARCH
    scaled = base.scaled(factor)
    a = base.sample(random.Random(seed))
    b = scaled.sample(random.Random(seed))
    assert abs(b - a * factor) <= max(2.0, a * factor * 0.01) or b == 1


# --------------------------------------------------------------------- #
# RTO estimator
# --------------------------------------------------------------------- #

@given(st.lists(st.integers(min_value=1, max_value=10**9), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_rto_at_least_floor_and_finite(samples):
    rto = RtoEstimator()
    for s in samples:
        rto.update(s)
    assert rto.rto_ns >= rto.min_rto_ns
    assert rto.rto_ns <= rto.max_rto_ns * 64
    assert min(samples) * 0.5 <= rto.srtt <= max(samples) * 1.5


@given(st.integers(min_value=0, max_value=20))
@settings(max_examples=30, deadline=None)
def test_rto_backoff_monotone(n_backoffs):
    rto = RtoEstimator()
    values = []
    for _ in range(n_backoffs):
        values.append(rto.rto_ns)
        rto.backoff()
    values.append(rto.rto_ns)
    assert values == sorted(values)


# --------------------------------------------------------------------- #
# RNG streams
# --------------------------------------------------------------------- #

@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.text(min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_rng_streams_reproducible(seed, name):
    a = RngStreams(seed).get(name).random()
    b = RngStreams(seed).get(name).random()
    assert a == b
