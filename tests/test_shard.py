"""Tests for repro.shard — the spatially partitioned runner.

The contract under test: ``run_sharded`` (and ``run_experiment`` with
``shards > 1``) is *bit-identical* to the serial runner — same per-flow
records, same event count, same final clock, same reroute and probe-loss
counters — regardless of how the shards execute (round-robin in-process
or one OS process each).  On the golden 2-leaf grid the composite event
ordering is provably unambiguous, so the hazard counter must read zero.
"""

from dataclasses import replace

import pytest

from repro.api import (
    ExperimentConfig,
    FailureSpec,
    FaultEventSpec,
    FaultScheduleSpec,
    bench_topology,
    run_experiment,
    run_sharded,
    simulation_topology,
)
from repro.lb.factory import SPRAYING_SCHEMES


def _cell(lb: str, **overrides) -> ExperimentConfig:
    """One golden-style cell: 2x2 leaf-spine, 4 hosts/leaf, 40 flows."""
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4),
        lb=lb,
        workload="web-search",
        load=0.5,
        n_flows=40,
        seed=1,
        size_scale=0.05,
        time_scale=0.05,
    )
    if lb in SPRAYING_SCHEMES:
        defaults["reorder_mask_us"] = 100.0
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _assert_identical(serial, sharded, *, hazard_free: bool = True) -> None:
    assert sharded.stats.records == serial.stats.records
    assert sharded.sim_time_ns == serial.sim_time_ns
    assert sharded.events == serial.events
    assert sharded.total_reroutes == serial.total_reroutes
    assert sharded.probe_losses == serial.probe_losses
    diag = sharded.shared["shard_diagnostics"]
    assert diag["shards"] >= 2
    assert diag["windows"] > 0
    if hazard_free:
        assert diag["hazards"] == 0


class TestBitIdentity:
    """shards=2 reproduces the serial run exactly, scheme by scheme."""

    @pytest.mark.parametrize("lb", ["ecmp", "hermes", "rdna"])
    def test_golden_cell_matches_serial(self, lb):
        config = _cell(lb)
        serial = run_experiment(config)
        sharded = run_sharded(replace(config, shards=2), jobs=1)
        _assert_identical(serial, sharded)
        assert sharded.shared["shard_diagnostics"]["mode"] == "in-process"

    def test_run_experiment_dispatches_on_shards(self):
        """``run_experiment(shards=2)`` IS the sharded runner — the
        facade never silently falls back to a serial run."""
        config = _cell("hermes")
        serial = run_experiment(config)
        sharded = run_experiment(replace(config, shards=2))
        _assert_identical(serial, sharded)
        assert sharded.scheduler_info["shards"] == 2

    def test_forced_multiprocess_matches_serial(self):
        """jobs=2 forces one OS process per shard (the container may
        report a single core; the mode switch honours explicit jobs)."""
        config = _cell("hermes")
        serial = run_experiment(config)
        sharded = run_sharded(replace(config, shards=2), jobs=2)
        _assert_identical(serial, sharded)

    def test_jobs_never_changes_the_answer(self):
        config = replace(_cell("conga"), shards=2)
        inline = run_sharded(config, jobs=1)
        fleet = run_sharded(config, jobs=2)
        assert fleet.stats.records == inline.stats.records
        assert fleet.events == inline.events
        assert fleet.sim_time_ns == inline.sim_time_ns

    def test_both_engines_agree(self):
        """The composite-seq mixin works over both schedulers."""
        config = _cell("letflow")
        for scheduler in ("heap", "wheel:auto"):
            cfg = replace(config, scheduler=scheduler)
            serial = run_experiment(cfg)
            sharded = run_sharded(replace(cfg, shards=2), jobs=1)
            _assert_identical(serial, sharded)

    def test_blackhole_deadline_ending(self):
        """A static blackhole strands ECMP flows: the serial run ends at
        the drain deadline with unfinished-flow records.  The sharded
        run must reproduce that ending exactly (deadline clock, same
        unfinished set), not just the all-flows-finish fast path."""
        config = _cell(
            "ecmp",
            failure=FailureSpec(kind="blackhole", spine=0, pair_fraction=1.0),
            extra_drain_ns=2_000_000,
        )
        serial = run_experiment(config)
        sharded = run_sharded(replace(config, shards=2), jobs=1)
        _assert_identical(serial, sharded)
        unfinished = [r for r in serial.stats.records if r.fct_ns is None]
        assert unfinished, "blackhole cell must strand at least one flow"


class TestPaperScale:
    """The 8x8 leaf-spine / 128-host simulation shape from the paper."""

    def test_simulation_cell_completes_and_is_reproducible(self):
        config = ExperimentConfig(
            topology=simulation_topology(),
            lb="hermes",
            workload="web-search",
            load=0.5,
            n_flows=96,
            seed=1,
            size_scale=0.02,
            time_scale=0.02,
            shards=4,
        )
        a = run_sharded(config, jobs=1)
        b = run_sharded(config, jobs=2)
        assert len(a.stats.records) == 96
        assert all(r.fct_ns is not None for r in a.stats.records)
        assert b.stats.records == a.stats.records
        assert b.events == a.events
        assert b.sim_time_ns == a.sim_time_ns


class TestRestrictions:
    """Single-engine-only features refuse loudly instead of diverging."""

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(validate=True),
            dict(trace=True),
            dict(streaming_stats=True),
            dict(visibility_sampling=True),
            dict(detector="bfd"),
            dict(
                faults=FaultScheduleSpec(
                    events=(
                        FaultEventSpec(
                            action="link_down", time_ns=1_000_000,
                            leaf=0, spine=0,
                        ),
                    )
                )
            ),
            dict(failure=FailureSpec(kind="random_drop", spine=0)),
        ],
        ids=[
            "validate", "trace", "streaming", "visibility",
            "detector", "faults", "random_drop",
        ],
    )
    def test_unsupported_feature_raises(self, overrides):
        config = replace(_cell("ecmp", **overrides), shards=2)
        with pytest.raises(ValueError, match="do not support"):
            run_sharded(config, jobs=1)

    def test_blackhole_failure_is_supported(self):
        """One setup-time draw, static predicates — explicitly allowed
        (contrast random_drop above)."""
        config = replace(
            _cell("ecmp", failure=FailureSpec(kind="blackhole", spine=0)),
            shards=2,
        )
        run_sharded(config, jobs=1)  # must not raise

    def test_zero_prop_delay_has_no_lookahead(self):
        topo = replace(
            bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4),
            prop_delay_ns=0,
        )
        config = replace(_cell("ecmp", topology=topo), shards=2)
        with pytest.raises(ValueError, match="propagation delay"):
            run_sharded(config, jobs=1)

    def test_more_shards_than_leaves(self):
        config = replace(_cell("ecmp"), shards=3)
        with pytest.raises(ValueError, match="cannot cut"):
            run_sharded(config, jobs=1)

    def test_run_sharded_requires_two_shards(self):
        with pytest.raises(ValueError, match="shards >= 2"):
            run_sharded(_cell("ecmp"), jobs=1)


class TestConfigPlumbing:
    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            _cell("ecmp", shards=0)

    def test_shards_round_trips_through_dict(self):
        config = _cell("hermes", shards=2)
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.shards == 2

    def test_shards_distinguishes_cache_keys(self):
        """shards is part of the serialized config, so the result cache
        can never serve a sharded run for a serial key or vice versa."""
        serial = _cell("hermes").to_dict()
        sharded = _cell("hermes", shards=2).to_dict()
        assert serial != sharded
