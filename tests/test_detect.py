"""Unit tests for the pluggable failure-detection plane (repro.detect).

Everything here runs on a bare 2x2 fabric with hand-scheduled link
admin flips — no workload, no load balancer — so each test isolates one
detector mechanism: spec parsing, BFD session timing, breaker state
transitions, combiner quorum arithmetic.  End-to-end behaviour (latency
frontiers, bit-identity, probe-loss accounting) lives in
``test_detect_integration.py``.
"""

from __future__ import annotations

import types

import pytest

from repro.detect import (
    DOWN,
    SUSPECT,
    UP,
    BfdDetector,
    CircuitBreakerDetector,
    FastestOfDetector,
    QuorumDetector,
    TransportDetector,
    agent_host_of,
    build_detector,
    build_leaf_detectors,
    parse_detector,
)
from repro.detect.spec import DetectorSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import config_key
from repro.experiments.scenarios import bench_topology
from repro.sim.engine import microseconds, milliseconds
from tests.conftest import make_fabric

US = 1_000
MS = 1_000_000


def _set_link(fabric, leaf: int, spine: int, down: bool) -> None:
    """Admin-flip both directions of one leaf-spine link (what the
    fault plane's link_down/link_up do)."""
    topo = fabric.topology
    topo.leaf_up[leaf][spine].set_admin_down(down)
    topo.spine_down[spine][leaf].set_admin_down(down)


# --------------------------------------------------------------------- #
# Spec DSL
# --------------------------------------------------------------------- #


class TestDetectorSpec:
    def test_bare_kinds_parse(self):
        for kind in ("transport", "bfd", "breaker"):
            spec = parse_detector(kind)
            assert spec.kind == kind
            assert spec.params == ()
            assert spec.canonical() == kind

    def test_params_parse_with_time_units(self):
        spec = parse_detector("bfd:tx=100us,mult=3")
        assert spec.kind == "bfd"
        assert spec.param("tx") == microseconds(100)
        assert spec.param("mult") == 3

    def test_canonical_round_trips(self):
        for text in (
            "transport:hold=50ms,retx_threshold=10",
            "bfd:tx=100us,mult=3",
            "breaker:threshold=0.5,window=10ms,min_volume=4",
            "quorum:transport+bfd",
            "quorum:transport+bfd+breaker,quorum=3",
            "fastest:transport+bfd",
        ):
            spec = parse_detector(text)
            assert parse_detector(spec.canonical()) == spec

    def test_rejects_nonsense(self):
        for bad in (
            "",
            "frobnicate",
            "bfd:unknown=1",
            "bfd:tx=abc",
            "quorum:bfd",            # combiners need >= 2 members
            "quorum:quorum+bfd",     # no nesting
            "transport:hold",        # missing value
        ):
            with pytest.raises(ValueError):
                parse_detector(bad)

    def test_explicit_values_ignore_time_scale(self):
        fabric = make_fabric()
        det = build_detector(
            parse_detector("bfd:tx=100us,mult=3"), fabric, 0, time_scale=0.05
        )
        assert det.tx_interval_ns == microseconds(100)

    def test_time_defaults_scale(self):
        fabric = make_fabric()
        det = build_detector(parse_detector("bfd"), fabric, 0, time_scale=0.5)
        assert det.tx_interval_ns == microseconds(50)

    def test_build_leaf_detectors_covers_every_leaf(self):
        fabric = make_fabric()
        detectors = build_leaf_detectors(fabric, "quorum:transport+bfd")
        assert sorted(detectors) == list(range(fabric.config.n_leaves))
        for leaf, det in detectors.items():
            assert isinstance(det, QuorumDetector)
            assert det.leaf == leaf
            assert [m.name for m in det.members] == ["transport", "bfd"]

    def test_detector_changes_cache_key(self):
        topo = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2)
        base = ExperimentConfig(topology=topo, lb="ecmp", n_flows=10)
        with_det = ExperimentConfig(
            topology=topo, lb="ecmp", n_flows=10, detector="bfd"
        )
        assert config_key(base) != config_key(with_det)
        assert ExperimentConfig.from_dict(with_det.to_dict()).detector == "bfd"

    def test_config_rejects_bad_detector_spec(self):
        topo = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2)
        with pytest.raises(ValueError):
            ExperimentConfig(topology=topo, lb="ecmp", detector="nope")

    def test_spec_param_lookup_default(self):
        spec = DetectorSpec(kind="bfd", params=(("tx", 5),))
        assert spec.param("tx") == 5
        assert spec.param("mult", 3) == 3


# --------------------------------------------------------------------- #
# BFD sessions
# --------------------------------------------------------------------- #


def _bfd(fabric, leaf=0, tx=100 * US, mult=3) -> BfdDetector:
    det = BfdDetector(fabric, leaf, tx_interval_ns=tx, detect_mult=mult)
    det.start()
    return det


class TestBfdDetector:
    def test_cold_start_reads_up(self):
        fabric = make_fabric()
        det = _bfd(fabric)
        # Before any round trip completes, every path must read UP —
        # a cold start must not strand the whole fabric.
        assert det.path_verdict(1, 0) == UP
        assert det.path_verdict(1, 1) == UP

    def test_sessions_establish_on_healthy_fabric(self):
        fabric = make_fabric()
        det = _bfd(fabric)
        fabric.sim.run(until=2 * MS)
        assert det.heartbeats_sent > 0
        assert det.replies_heard > 0
        assert det.failed_detections == 0
        assert det.path_verdict(1, 0) == UP

    def test_detects_admin_down_within_mult_tx(self):
        fabric = make_fabric()
        det = _bfd(fabric)  # leaf 0: zero jitter, rounds at 0, 100us, ...
        fabric.sim.schedule(1 * MS, _set_link, fabric, 0, 0, True)
        fabric.sim.run(until=3 * MS)
        assert det.path_verdict(1, 0) == DOWN
        assert det.path_verdict(1, 1) == UP  # the other spine is fine
        assert det.failed_detections == 1
        # Detection lands within ~mult*tx of the last good echo.
        assert det.detection_times[0] <= 1 * MS + 4 * 100 * US

    def test_flap_shorter_than_window_is_suppressed(self):
        fabric = make_fabric()
        det = _bfd(fabric)
        # Down for 200us starting mid-interval: two heartbeats die,
        # idle peaks just under the 300us deadline (SUSPECT territory)
        # — the session must dip and recover, not flip.
        fabric.sim.schedule(1 * MS + 50 * US, _set_link, fabric, 0, 0, True)
        fabric.sim.schedule(1 * MS + 250 * US, _set_link, fabric, 0, 0, False)
        fabric.sim.run(until=3 * MS)
        assert det.failed_detections == 0
        assert det.flap_suppressions >= 1
        assert det.path_verdict(1, 0) == UP

    def test_inflight_echo_after_flip_counts_false_positive(self):
        # The link_up race: a heartbeat that left before the DOWN
        # verdict comes home after it.  ts_echo < down_since proves the
        # path was alive when condemned.
        fabric = make_fabric()
        det = _bfd(fabric)
        fabric.sim.schedule(1 * MS, _set_link, fabric, 0, 0, True)
        fabric.sim.run(until=3 * MS)
        assert det.failed_detections == 1
        session = det._sessions[(1, 0)]
        stale = types.SimpleNamespace(
            src=agent_host_of(fabric, 1),
            path_id=0,
            ts_echo=session.down_since - 10 * US,
        )
        det._on_reply(stale)
        assert det.false_positive_count == 1
        # One more (fresh) echo re-establishes the session.
        fresh = types.SimpleNamespace(
            src=agent_host_of(fabric, 1),
            path_id=0,
            ts_echo=fabric.sim.now,
        )
        det._on_reply(fresh)
        assert det.path_verdict(1, 0) == UP

    def test_recovers_after_link_up(self):
        fabric = make_fabric()
        det = _bfd(fabric)
        fabric.sim.schedule(1 * MS, _set_link, fabric, 0, 0, True)
        fabric.sim.schedule(2 * MS, _set_link, fabric, 0, 0, False)
        fabric.sim.run(until=4 * MS)
        assert det.failed_detections == 1
        assert det.path_verdict(1, 0) == UP

    def test_rejects_bad_parameters(self):
        fabric = make_fabric()
        with pytest.raises(ValueError):
            BfdDetector(fabric, 0, tx_interval_ns=0)
        with pytest.raises(ValueError):
            BfdDetector(fabric, 0, detect_mult=0)


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #


def _breaker(fabric, **overrides) -> CircuitBreakerDetector:
    params = dict(
        failure_threshold=0.5,
        window_ns=1 * MS,
        min_volume=4,
        open_timeout_ns=1 * MS,
        trial_timeout_ns=500 * US,
    )
    params.update(overrides)
    return CircuitBreakerDetector(fabric, 0, **params)


class TestCircuitBreaker:
    def test_timeout_trips_immediately(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        assert det.path_verdict(1, 0) == UP
        det.note_timeout(1, 0)
        assert det.path_verdict(1, 0) == DOWN
        assert det.failed_detections == 1

    def test_failure_rate_trips_at_min_volume(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        det.note_retransmit(1, 0)
        det.note_ok(1, 0)
        # Volume 2 < min_volume 4: adverse evidence shows as SUSPECT,
        # but the breaker must not trip yet.
        assert det.path_verdict(1, 0) == SUSPECT
        assert det.failed_detections == 0
        det.note_retransmit(1, 0)
        det.note_retransmit(1, 0)  # 3 failures / 4 samples = 0.75 >= 0.5
        assert det.path_verdict(1, 0) == DOWN

    def test_successes_keep_breaker_closed(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        for _ in range(10):
            det.note_ok(1, 0)
        det.note_retransmit(1, 0)  # 1/11 well under threshold
        assert det.path_verdict(1, 0) in (UP, SUSPECT)
        assert det.failed_detections == 0

    def test_half_open_trial_closes_on_echo(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        det.note_timeout(1, 0)
        assert det.path_verdict(1, 0) == DOWN
        # Open timeout elapses -> half-open trial probe over the (still
        # healthy) fabric -> echo closes the breaker.
        fabric.sim.run(until=3 * MS)
        assert det.path_verdict(1, 0) == UP

    def test_trial_timeout_reopens(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        _set_link(fabric, 0, 0, True)  # trial probes will die
        det.note_timeout(1, 0)
        fabric.sim.run(until=5 * MS)
        assert det.path_verdict(1, 0) == DOWN

    def test_proof_of_life_while_open_is_false_positive(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        det.note_timeout(1, 0)
        det.note_ok(1, 0)  # real traffic made it through: we were wrong
        assert det.false_positive_count == 1
        assert det.path_verdict(1, 0) == UP

    def test_half_open_trial_racing_real_recovery_closes_once(self):
        fabric = make_fabric()
        det = _breaker(fabric)
        flips = []
        det.add_flip_listener(
            lambda det_, dst, path, old, new: flips.append((old, new))
        )
        det.note_timeout(1, 0)
        # Real recovery evidence lands just after the trial probe is
        # launched but before its echo returns; the late echo must not
        # double-close or flip the verdict again.
        fabric.sim.schedule(
            1 * MS + 1 * US, lambda: det.note_ok(1, 0)
        )
        fabric.sim.run(until=4 * MS)
        assert det.path_verdict(1, 0) == UP
        assert flips.count((DOWN, UP)) == 1

    def test_rejects_bad_parameters(self):
        fabric = make_fabric()
        with pytest.raises(ValueError):
            _breaker(fabric, failure_threshold=0.0)
        with pytest.raises(ValueError):
            _breaker(fabric, min_volume=0)
        with pytest.raises(ValueError):
            _breaker(fabric, window_ns=0)


# --------------------------------------------------------------------- #
# Combiners
# --------------------------------------------------------------------- #


def _transport_pair(fabric):
    return (
        TransportDetector(fabric, 0, hold_ns=50 * MS),
        TransportDetector(fabric, 0, hold_ns=50 * MS),
    )


class TestCombiners:
    def test_quorum_requires_majority(self):
        fabric = make_fabric()
        a, b = _transport_pair(fabric)
        det = QuorumDetector(fabric, 0, members=(a, b))
        assert det.quorum == 2
        a.mark_failed(1, 0)
        # One vote of two: adverse evidence surfaces as SUSPECT only.
        assert det.path_verdict(1, 0) == SUSPECT
        assert det.failed_detections == 0
        b.mark_failed(1, 0)
        assert det.path_verdict(1, 0) == DOWN
        assert det.failed_detections == 1

    def test_fastest_takes_first_down_vote(self):
        fabric = make_fabric()
        a, b = _transport_pair(fabric)
        det = FastestOfDetector(fabric, 0, members=(a, b))
        a.mark_failed(1, 0)
        assert det.path_verdict(1, 0) == DOWN
        assert det.failed_detections == 1

    def test_member_recovery_lifts_combined_verdict(self):
        fabric = make_fabric()
        a, b = _transport_pair(fabric)
        det = FastestOfDetector(fabric, 0, members=(a, b))
        a.mark_failed(1, 0)
        assert det.path_verdict(1, 0) == DOWN
        a.note_ok(1, 0)
        assert det.path_verdict(1, 0) == UP

    def test_metrics_nest_member_blocks(self):
        fabric = make_fabric()
        a, b = _transport_pair(fabric)
        det = QuorumDetector(fabric, 0, members=(a, b))
        a.mark_failed(1, 0)
        out = det.metrics()
        assert [m["detector"] for m in out["members"]] == [
            "transport", "transport",
        ]
        assert out["members"][0]["detections"] == 1

    def test_combiner_needs_two_members(self):
        fabric = make_fabric()
        (a, _) = _transport_pair(fabric)
        with pytest.raises(ValueError):
            QuorumDetector(fabric, 0, members=(a,))

    def test_never_strand_fallback(self):
        fabric = make_fabric()
        a, b = _transport_pair(fabric)
        det = FastestOfDetector(fabric, 0, members=(a, b))
        for path in (0, 1):
            a.mark_failed(1, path)
        # Every path condemned: alive() must still offer the full set
        # rather than stranding the flow with nothing to route on.
        assert det.alive(1, (0, 1)) == (0, 1)
