"""Fault-plane x scheme-zoo edge cases, parametrized over the registry.

Three corners the per-scheme tests don't reach, each run against every
registered scheme (the fault plane must be scheme-agnostic):

* a fault that fires **before the first flow starts** — schemes must
  come up on a degraded fabric without special-casing t=0;
* **every uplink of a leaf dark** with no recovery — the rack is
  unreachable; schemes must not crash, must not spin, and the stranded
  flows must surface as ``unrecovered_timeouts``;
* **link_up mid-retransmission** — the revert races flows that are
  actively timing out and retransmitting into the dark link; everything
  must drain cleanly once capacity returns.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.faults.spec import link_down, link_up, schedule
from repro.lb.factory import LB_REGISTRY, SPRAYING_SCHEMES

MS = 1_000_000
SCHEMES = sorted(LB_REGISTRY)


def _config(scheme, **overrides):
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb=scheme,
        workload="web-search",
        load=0.4,
        n_flows=25,
        seed=1,
        size_scale=0.05,
        time_scale=0.05,
        reorder_mask_us=100.0 if scheme in SPRAYING_SCHEMES else None,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestFaultSchemeMatrix:
    def test_fault_before_first_flow(self, scheme):
        """The outage predates every arrival: schemes start life on a
        degraded fabric and must route around it from packet one."""
        result = run_experiment(_config(scheme, faults=schedule(
            link_down(0, leaf=0, spine=0),
            link_up(4 * MS, leaf=0, spine=0),
        )))
        assert [r["phase"] for r in result.fault_timeline] == [
            "applied", "reverted"
        ]
        stats = result.stats
        assert stats.count == 25
        assert stats.finished_count == 25, (
            f"{scheme}: flows stranded although the link recovered"
        )

    def test_all_uplinks_of_a_leaf_dark(self, scheme):
        """The whole rack is cut off and never recovers: no crash, no
        infinite spin, and the stranded flows are accounted as
        unrecovered timeouts."""
        result = run_experiment(_config(scheme, extra_drain_ns=20 * MS,
                                        faults=schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_down(1 * MS, leaf=0, spine=1),
        )))
        stats = result.stats
        assert stats.count == 25, f"{scheme}: flows went missing"
        assert stats.unfinished_count > 0, (
            f"{scheme}: flows crossing an unreachable rack cannot finish"
        )
        assert result.unrecovered_timeouts > 0, (
            f"{scheme}: stranded flows must surface as unrecovered "
            f"timeouts in the fault report"
        )
        # Flows that never touch the dark rack must still complete.
        assert stats.finished_count > 0, (
            f"{scheme}: the outage must not take down unrelated traffic"
        )
        # Stranded flows back off exponentially — a per-flow timeout
        # count past this bound means phantom (double-armed) RTO events
        # are firing again.
        assert max(r.timeouts for r in stats.records) <= 12, (
            f"{scheme}: timeout storm on the stranded flows"
        )

    def test_link_up_mid_retransmission(self, scheme):
        """The revert lands while flows are mid-RTO into the dark link
        (min RTO at this time_scale is 0.5 ms, the outage spans 1.5 ms =
        several back-offs): the race must resolve with a full drain."""
        result = run_experiment(_config(scheme, faults=schedule(
            link_down(500_000, leaf=0, spine=0),
            link_up(2 * MS, leaf=0, spine=0),
        )))
        assert [r["phase"] for r in result.fault_timeline] == [
            "applied", "reverted"
        ]
        stats = result.stats
        assert stats.finished_count == stats.count == 25, (
            f"{scheme}: flows stranded after the mid-retransmission revert"
        )
        # And the recovery is reproducible bit for bit.
        replay = run_experiment(_config(scheme, faults=schedule(
            link_down(500_000, leaf=0, spine=0),
            link_up(2 * MS, leaf=0, spine=0),
        )))
        assert stats.records == replay.stats.records
