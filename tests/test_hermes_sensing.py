"""Unit tests for Hermes sensing (Algorithm 1 and failure detection)."""

import pytest

from repro.core.parameters import HermesParams
from repro.core.sensing import (
    PATH_CONGESTED,
    PATH_FAILED,
    PATH_GOOD,
    PATH_GRAY,
    HermesLeafState,
    PathState,
)
from tests.conftest import make_fabric


def make_state(fabric, **param_overrides):
    params = HermesParams(**param_overrides).resolve(fabric.config)
    return HermesLeafState(fabric, 0, params), params


def feed(state, dst_leaf, path, ece, rtt_ns, n=50):
    """Push enough identical samples to converge the EWMAs."""
    for _ in range(n):
        state.record_ack(dst_leaf, path, ece, rtt_ns)


class TestParams:
    def test_resolve_fills_thresholds(self, fabric):
        params = HermesParams().resolve(fabric.config)
        base = fabric.config.base_rtt_ns()
        hop = fabric.config.one_hop_delay_ns()
        assert params.t_rtt_low_ns == base + 30_000
        assert params.t_rtt_high_ns == base + int(params.t_rtt_high_hops * hop)
        assert params.delta_rtt_ns == hop

    def test_paper_hop_multiplier_selectable(self, fabric):
        params = HermesParams(t_rtt_high_hops=1.5).resolve(fabric.config)
        base = fabric.config.base_rtt_ns()
        hop = fabric.config.one_hop_delay_ns()
        assert params.t_rtt_high_ns == base + int(1.5 * hop)

    def test_explicit_thresholds_kept(self, fabric):
        params = HermesParams(t_rtt_high_ns=123).resolve(fabric.config)
        assert params.t_rtt_high_ns == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            HermesParams(t_ecn=0.0)
        with pytest.raises(ValueError):
            HermesParams(rate_threshold_fraction=2.0)
        with pytest.raises(ValueError):
            HermesParams(probe_interval_ns=0)

    def test_time_scaled(self):
        params = HermesParams().time_scaled(0.1)
        # Probe interval is network-timescale: untouched by time_scale.
        assert params.probe_interval_ns == 500_000
        assert params.retx_sweep_interval_ns == 1_000_000
        assert params.failure_hold_ns == 5_000_000

    def test_time_scaled_validation(self):
        with pytest.raises(ValueError):
            HermesParams().time_scaled(0)

    def test_unresolved_params_rejected_by_leaf_state(self, fabric):
        with pytest.raises(ValueError):
            HermesLeafState(fabric, 0, HermesParams())


class TestAlgorithm1:
    """The ECN x RTT characterization table (paper Table 5)."""

    def test_low_ecn_low_rtt_is_good(self, fabric):
        state, params = make_state(fabric)
        feed(state, 1, 0, ece=False, rtt_ns=params.t_rtt_low_ns - 5_000)
        assert state.classify(1, 0) == PATH_GOOD

    def test_high_ecn_high_rtt_is_congested(self, fabric):
        state, params = make_state(fabric)
        feed(state, 1, 0, ece=True, rtt_ns=params.t_rtt_high_ns + 50_000)
        assert state.classify(1, 0) == PATH_CONGESTED

    def test_high_ecn_low_rtt_is_gray(self, fabric):
        """High marks alone may just be too few samples (paper Table 5)."""
        state, params = make_state(fabric)
        feed(state, 1, 0, ece=True, rtt_ns=params.t_rtt_low_ns - 5_000)
        assert state.classify(1, 0) == PATH_GRAY

    def test_low_ecn_high_rtt_is_gray(self, fabric):
        """High RTT alone may be host network-stack latency."""
        state, params = make_state(fabric)
        feed(state, 1, 0, ece=False, rtt_ns=params.t_rtt_high_ns + 50_000)
        assert state.classify(1, 0) == PATH_GRAY

    def test_moderate_rtt_is_gray(self, fabric):
        state, params = make_state(fabric)
        mid = (params.t_rtt_low_ns + params.t_rtt_high_ns) // 2
        feed(state, 1, 0, ece=False, rtt_ns=mid)
        assert state.classify(1, 0) == PATH_GRAY

    def test_fresh_path_defaults_good(self, fabric):
        state, _ = make_state(fabric)
        assert state.classify(1, 0) == PATH_GOOD

    def test_rtt_only_mode(self, fabric):
        state, params = make_state(fabric, use_ecn=False)
        feed(state, 1, 0, ece=False, rtt_ns=params.t_rtt_high_ns + 50_000)
        assert state.classify(1, 0) == PATH_CONGESTED


class TestNotablyBetter:
    def test_requires_both_margins(self, fabric):
        state, params = make_state(fabric)
        feed(state, 1, 0, ece=True, rtt_ns=params.t_rtt_high_ns + 100_000)
        feed(state, 1, 1, ece=False, rtt_ns=fabric.config.base_rtt_ns())
        assert state.notably_better(1, candidate=1, current=0)
        assert not state.notably_better(1, candidate=0, current=1)

    def test_small_difference_not_notable(self, fabric):
        state, params = make_state(fabric)
        rtt = params.t_rtt_high_ns
        feed(state, 1, 0, ece=True, rtt_ns=rtt)
        feed(state, 1, 1, ece=True, rtt_ns=rtt - 1_000)  # 1us < delta_rtt
        assert not state.notably_better(1, candidate=1, current=0)

    def test_rtt_only_mode_ignores_ecn_margin(self, fabric):
        state, params = make_state(fabric, use_ecn=False)
        feed(state, 1, 0, ece=False, rtt_ns=params.t_rtt_high_ns + 200_000)
        feed(state, 1, 1, ece=False, rtt_ns=fabric.config.base_rtt_ns())
        assert state.notably_better(1, candidate=1, current=0)


class TestFailureDetection:
    def test_retx_sweep_marks_uncongested_lossy_path(self, fabric):
        state, params = make_state(fabric)
        state.start_sweep()
        for i in range(100):
            state.record_sent(1, 0, 1500)
        for flow_id in range(4):  # distributed across flows (cap is 3/flow)
            state.record_retransmit(1, 0, flow_id)
        fabric.sim.run(until=params.retx_sweep_interval_ns + 1)
        assert state.classify(1, 0) == PATH_FAILED
        assert state.failed_detections == 1

    def test_congested_path_exempt(self, fabric):
        """Congestion also causes retransmissions (paper §3.1.2)."""
        state, params = make_state(fabric)
        state.start_sweep()
        feed(state, 1, 0, ece=True, rtt_ns=params.t_rtt_high_ns + 100_000)
        for i in range(100):
            state.record_sent(1, 0, 1500)
        for flow_id in range(4):
            state.record_retransmit(1, 0, flow_id)
        fabric.sim.run(until=params.retx_sweep_interval_ns + 1)
        assert state.classify(1, 0) == PATH_CONGESTED

    def test_too_few_samples_not_marked(self, fabric):
        state, params = make_state(fabric)
        state.start_sweep()
        for i in range(5):
            state.record_sent(1, 0, 1500)
        state.record_retransmit(1, 0, 0)
        fabric.sim.run(until=params.retx_sweep_interval_ns + 1)
        assert state.classify(1, 0) != PATH_FAILED

    def test_per_flow_retx_cap(self, fabric):
        """One flow's spurious burst cannot fail a path by itself."""
        state, params = make_state(fabric)
        state.start_sweep()
        for i in range(400):
            state.record_sent(1, 0, 1500)
        for _ in range(50):  # one flow, huge burst (capped to 3)
            state.record_retransmit(1, 0, 7)
        fabric.sim.run(until=params.retx_sweep_interval_ns + 1)
        assert state.state(1, 0).retx_pkts == 0  # swept
        assert state.classify(1, 0) != PATH_FAILED

    def test_failure_expires_after_hold(self, fabric):
        state, params = make_state(fabric)
        state.mark_failed(1, 0)
        assert state.classify(1, 0) == PATH_FAILED
        fabric.sim.run(until=params.failure_hold_ns + 1)
        assert state.classify(1, 0) != PATH_FAILED

    def test_counters_reset_each_sweep(self, fabric):
        state, params = make_state(fabric)
        state.start_sweep()
        for i in range(20):
            state.record_sent(1, 0, 1500)
        fabric.sim.run(until=params.retx_sweep_interval_ns + 1)
        assert state.state(1, 0).sent_pkts == 0


class TestRpEstimator:
    def test_rp_tracks_send_rate(self, fabric):
        state, _ = make_state(fabric)
        path_state = state.state(1, 0)
        # ~4 tau of sustained 10 Gbps so the estimator converges.
        for _ in range(700):
            path_state.rp_add(1500, fabric.sim.now)
            fabric.sim.run(until=fabric.sim.now + 1_200)
        rate = path_state.rp_bps(fabric.sim.now)
        assert rate == pytest.approx(10e9, rel=0.15)

    def test_rp_decays_to_zero(self, fabric):
        state, _ = make_state(fabric)
        path_state = state.state(1, 0)
        path_state.rp_add(150_000, 0)
        assert path_state.rp_bps(10_000_000) < 1.0
