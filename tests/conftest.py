"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.net.fabric import Fabric
from repro.net.topology import TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def small_config(**overrides) -> TopologyConfig:
    """A 2x2 leaf-spine with 2 hosts per leaf at 10 Gbps."""
    defaults = dict(
        n_leaves=2,
        n_spines=2,
        hosts_per_leaf=2,
        host_link_gbps=10.0,
        spine_link_gbps=10.0,
        prop_delay_ns=1_000,
        buffer_bytes=750_000,
        ecn_threshold_bytes=97_500,
    )
    defaults.update(overrides)
    return TopologyConfig(**defaults)


def make_fabric(seed: int = 1, **overrides) -> Fabric:
    """A small ready-to-use fabric."""
    return Fabric(Simulator(), small_config(**overrides), RngStreams(seed))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fabric() -> Fabric:
    return make_fabric()
