"""Unit tests for the output port (queue + link)."""

import pytest

from repro.net.packet import PRIO_HIGH, Packet, PacketKind
from repro.net.port import OutputPort
from repro.sim.engine import Simulator


def make_port(sim, rate_gbps=10.0, ecn_k=97_500, buffer_bytes=750_000, sink=None):
    arrived = [] if sink is None else sink
    port = OutputPort(
        sim,
        "test",
        rate_gbps * 1e9,
        prop_delay_ns=1_000,
        buffer_bytes=buffer_bytes,
        ecn_threshold_bytes=ecn_k,
        forward=arrived.append,
    )
    return port, arrived


def data(seq=0, size=1500, prio=None, ecn=True):
    packet = Packet(0, 0, 1, seq, size, PacketKind.DATA, ecn_capable=ecn)
    if prio is not None:
        packet.priority = prio
    return packet


class TestSerialization:
    def test_tx_time(self):
        sim = Simulator()
        port, _ = make_port(sim, rate_gbps=10.0)
        assert port.tx_time_ns(1500) == 1200  # 1500B * 8 / 10Gbps

    def test_delivery_after_tx_plus_prop(self):
        sim = Simulator()
        port, arrived = make_port(sim)
        port.enqueue(data())
        sim.run()
        # 1200ns serialization + 1000ns propagation
        assert sim.now == 2200
        assert len(arrived) == 1

    def test_back_to_back_serialize_sequentially(self):
        sim = Simulator()
        port, arrived = make_port(sim)
        port.enqueue(data(0))
        port.enqueue(data(1))
        sim.run()
        assert sim.now == 2 * 1200 + 1000
        assert [p.seq for p in arrived] == [0, 1]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            OutputPort(Simulator(), "bad", 0, 0, 1000, 100)

    def test_tx_time_exact_integer_arithmetic(self):
        # tx = size * 8 * 10**9 // rate, exactly — no float truncation.
        from fractions import Fraction

        sim = Simulator()
        for rate_bps in (10e9, 1e9, 2.5e9, 40e9, 3_000_000_000, 7e9):
            port = OutputPort(sim, "x", rate_bps, 0, 10**9, 0)
            for size in (40, 1460, 1500, 9000, 12_345_678):
                exact = int(
                    Fraction(size * 8 * 10**9) / Fraction(rate_bps)
                )
                assert port.tx_time_ns(size) == exact

    def test_tx_time_integer_rate(self):
        sim = Simulator()
        port = OutputPort(sim, "int-rate", 10**10, 0, 10**9, 0)
        assert port.tx_time_ns(1500) == 1200


class TestPriority:
    def test_high_priority_jumps_queue(self):
        sim = Simulator()
        port, arrived = make_port(sim)
        port.enqueue(data(0))        # starts transmitting immediately
        port.enqueue(data(1))        # queued low
        port.enqueue(data(2, size=64, prio=PRIO_HIGH))  # queued high
        sim.run()
        assert [p.seq for p in arrived] == [0, 2, 1]

    def test_no_preemption_of_inflight_packet(self):
        sim = Simulator()
        port, arrived = make_port(sim)
        port.enqueue(data(0))
        port.enqueue(data(1, size=64, prio=PRIO_HIGH))
        sim.run()
        assert arrived[0].seq == 0  # the in-flight packet finishes first


class TestEcnMarking:
    def test_no_mark_below_threshold(self):
        sim = Simulator()
        port, _ = make_port(sim, ecn_k=10_000)
        packet = data()
        port.enqueue(packet)
        assert packet.ce is False

    def test_mark_above_threshold(self):
        sim = Simulator()
        port, _ = make_port(sim, ecn_k=3_000)
        first, second, third = data(0), data(1), data(2)
        port.enqueue(first)   # backlog 1500
        port.enqueue(second)  # backlog 3000 -> at threshold
        port.enqueue(third)   # backlog >= threshold -> marked
        assert first.ce is False
        assert third.ce is True

    def test_non_ecn_capable_never_marked(self):
        sim = Simulator()
        port, _ = make_port(sim, ecn_k=1)
        packet = data(ecn=False)
        port.enqueue(data(0))
        port.enqueue(packet)
        assert packet.ce is False

    def test_zero_threshold_disables_marking(self):
        sim = Simulator()
        port, _ = make_port(sim, ecn_k=0)
        port.enqueue(data(0))
        packet = data(1)
        port.enqueue(packet)
        assert packet.ce is False


class TestDrops:
    def test_buffer_overflow_drops(self):
        sim = Simulator()
        port, arrived = make_port(sim, buffer_bytes=2_000)
        assert port.enqueue(data(0)) is True
        assert port.enqueue(data(1)) is False  # 3000 > 2000
        assert port.drops_overflow == 1
        sim.run()
        assert len(arrived) == 1

    def test_drop_predicate(self):
        sim = Simulator()
        port, arrived = make_port(sim)
        port.drop_predicates.append(lambda p, now: p.seq == 1)
        assert port.enqueue(data(0)) is True
        assert port.enqueue(data(1)) is False
        assert port.drops_injected == 1
        assert port.total_drops == 1

    def test_dropped_packet_frees_no_backlog(self):
        sim = Simulator()
        port, _ = make_port(sim, buffer_bytes=2_000)
        port.enqueue(data(0))
        backlog = port.backlog_bytes
        port.enqueue(data(1))
        assert port.backlog_bytes == backlog


class TestAccounting:
    def test_bytes_and_packets_counted(self):
        sim = Simulator()
        port, _ = make_port(sim)
        port.enqueue(data(0))
        port.enqueue(data(1, size=500))
        sim.run()
        assert port.pkts_sent == 2
        assert port.bytes_sent == 2_000

    def test_backlog_drains_to_zero(self):
        sim = Simulator()
        port, _ = make_port(sim)
        for i in range(5):
            port.enqueue(data(i))
        assert port.backlog_bytes == 7_500
        sim.run()
        assert port.backlog_bytes == 0

    def test_max_backlog_tracked(self):
        sim = Simulator()
        port, _ = make_port(sim)
        for i in range(4):
            port.enqueue(data(i))
        sim.run()
        assert port.max_backlog == 6_000

    def test_utilization_since(self):
        sim = Simulator()
        port, _ = make_port(sim, rate_gbps=10.0)
        start, bytes0 = sim.now, port.bytes_sent
        port.enqueue(data(0))
        sim.run(until=1_200)  # exactly the serialization time
        assert port.utilization_since(start, bytes0) == pytest.approx(1.0)


class TestDre:
    def test_dre_rises_with_traffic(self):
        sim = Simulator()
        port, _ = make_port(sim)
        assert port.dre_utilization() == 0.0
        # Sustain line rate for ~2 tau so the estimator converges.
        for i in range(200):
            port.enqueue(data(i))
        sim.run()
        assert port.dre_utilization() > 0.5

    def test_dre_decays_when_idle(self):
        sim = Simulator()
        port, _ = make_port(sim)
        for i in range(200):
            port.enqueue(data(i))
        sim.run()
        busy = port.dre_utilization()
        sim.run(until=sim.now + 1_000_000)  # 10 tau of idle decay
        assert port.dre_utilization() < busy / 100

    def test_dre_quantized_range(self):
        sim = Simulator()
        port, _ = make_port(sim)
        assert port.dre_quantized() == 0
        for i in range(100):
            port.enqueue(data(i))
        sim.run(until=port.tx_time_ns(1500) * 50)
        assert 0 <= port.dre_quantized() <= 7

    def test_data_packet_stamped_with_max_dre(self):
        sim = Simulator()
        port, arrived = make_port(sim)
        for i in range(50):
            port.enqueue(data(i))
        sim.run()
        # Later packets saw a busier link and carry a larger stamp.
        assert arrived[-1].conga_metric >= arrived[0].conga_metric
        assert arrived[-1].conga_metric > 0
