"""Unit tests for the leaf-spine topology builder."""

import pytest

from repro.net.fabric import Fabric
from repro.net.topology import LeafSpineTopology, TopologyConfig
from repro.sim.engine import Simulator
from tests.conftest import make_fabric, small_config


class TestConfigValidation:
    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_leaves=0)

    def test_rejects_out_of_range_override(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_leaves=2, n_spines=2, link_overrides={(5, 0): 1.0})

    def test_rejects_negative_override_rate(self):
        with pytest.raises(ValueError):
            TopologyConfig(link_overrides={(0, 0): -1.0})

    def test_n_hosts(self):
        assert TopologyConfig(n_leaves=8, hosts_per_leaf=16).n_hosts == 128

    def test_link_rate_with_override(self):
        cfg = TopologyConfig(
            n_leaves=2, n_spines=2, spine_link_gbps=10.0,
            link_overrides={(0, 1): 2.0},
        )
        assert cfg.link_rate_gbps(0, 1) == 2.0
        assert cfg.link_rate_gbps(0, 0) == 10.0

    def test_one_hop_delay_follows_ecn_threshold(self):
        cfg = TopologyConfig(ecn_threshold_bytes=97_500, spine_link_gbps=10.0)
        assert cfg.one_hop_delay_ns() == 78_000  # 97500*8/10G

    def test_base_rtt_larger_for_inter_rack(self):
        cfg = small_config()
        assert cfg.base_rtt_ns() > cfg.base_rtt_ns(intra_rack=True)


class TestAddressing:
    def test_leaf_of(self, fabric):
        topo = fabric.topology
        assert topo.leaf_of(0) == 0
        assert topo.leaf_of(1) == 0
        assert topo.leaf_of(2) == 1

    def test_hosts_of_leaf(self, fabric):
        assert list(fabric.topology.hosts_of_leaf(1)) == [2, 3]


class TestPaths:
    def test_inter_leaf_paths_are_spines(self, fabric):
        assert fabric.topology.paths(0, 1) == (0, 1)

    def test_intra_leaf_single_path(self, fabric):
        assert fabric.topology.paths(0, 0) == (-1,)

    def test_cut_link_removes_path(self):
        fabric = make_fabric(link_overrides={(0, 1): 0.0})
        assert fabric.topology.paths(0, 1) == (0,)
        # Reverse direction through the same cut link is also gone.
        assert fabric.topology.paths(1, 0) == (0,)

    def test_all_paths_cut_raises(self):
        fabric = make_fabric(link_overrides={(0, 0): 0.0, (0, 1): 0.0})
        with pytest.raises(ValueError):
            fabric.topology.paths(0, 1)

    def test_paths_between_hosts(self, fabric):
        assert fabric.topology.paths_between_hosts(0, 2) == (0, 1)
        assert fabric.topology.paths_between_hosts(0, 1) == (-1,)


class TestRoutes:
    def test_inter_rack_route_has_four_hops(self, fabric):
        route = fabric.topology.route(0, 2, 1)
        names = [p.name for p in route]
        assert names == [
            "host0->leaf0",
            "leaf0->spine1",
            "spine1->leaf1",
            "leaf1->host2",
        ]

    def test_intra_rack_route_has_two_hops(self, fabric):
        route = fabric.topology.route(0, 1, -1)
        assert [p.name for p in route] == ["host0->leaf0", "leaf0->host1"]

    def test_route_to_self_rejected(self, fabric):
        with pytest.raises(ValueError):
            fabric.topology.route(0, 0, -1)

    def test_route_over_cut_path_rejected(self):
        fabric = make_fabric(link_overrides={(0, 1): 0.0})
        with pytest.raises(ValueError):
            fabric.topology.route(0, 2, 1)

    def test_route_cached(self, fabric):
        assert fabric.topology.route(0, 2, 0) is fabric.topology.route(0, 2, 0)

    def test_override_sets_port_rate(self):
        fabric = make_fabric(link_overrides={(0, 1): 2.0})
        up = fabric.topology.leaf_up[0][1]
        assert up.rate_bps == 2.0e9

    def test_ecn_threshold_scales_with_rate(self):
        fabric = make_fabric(link_overrides={(0, 1): 2.0})
        fast = fabric.topology.leaf_up[0][0]
        slow = fabric.topology.leaf_up[0][1]
        assert slow.ecn_threshold_bytes < fast.ecn_threshold_bytes


class TestIntrospection:
    def test_uplink_ports_skip_cut_links(self):
        fabric = make_fabric(link_overrides={(0, 1): 0.0})
        uplinks = fabric.topology.uplink_ports(0)
        assert [s for s, _ in uplinks] == [0]

    def test_spine_ports(self, fabric):
        ports = fabric.topology.spine_ports(0)
        assert sorted(p.name for p in ports) == [
            "spine0->leaf0",
            "spine0->leaf1",
        ]

    def test_all_ports_count(self, fabric):
        # 4 host_up + 4 leaf_down + 2x2 leaf_up + 2x2 spine_down
        assert len(fabric.topology.all_ports()) == 16
