"""Packet/event pooling: recycling must be invisible.

Pooling changes where objects come from, never what the simulation
computes.  These tests pin the three contracts:

1. ``PacketPool.acquire`` resets *every* field — a recycled packet is
   bit-for-bit what the constructor would build;
2. recycling is suspended while observation hooks are attached (the
   invariant checker tracks packets by identity);
3. ``schedule_pooled`` preserves the engine's (time, seq) dispatch order
   and never recycles an event that was re-armed from its own callback.
"""

import dataclasses

from repro.net.packet import (
    ACK_BYTES,
    PRIO_HIGH,
    PRIO_LOW,
    Packet,
    PacketKind,
    PacketPool,
    clone_packet,
    make_ack,
    make_probe,
    make_probe_reply,
)
from repro.sim.engine import Simulator, WheelSimulator
from repro.experiments.runner import run_experiment
from repro.validate import golden

from tests.conftest import make_fabric


def _packet_fields(packet: Packet) -> dict:
    return {name: getattr(packet, name) for name in Packet.__slots__}


def _dirty(packet: Packet) -> None:
    """Scribble on every mutable field a previous life could have set."""
    packet.ack_seq = 99
    packet.ce = True
    packet.ece = True
    packet.ts_echo = 123_456
    packet.is_retx = True
    packet.conga_metric = 7
    packet.route = (object(),)
    packet.hop = 3


# --------------------------------------------------------------------- #
# PacketPool field hygiene
# --------------------------------------------------------------------- #


def test_acquire_resets_every_field():
    pool = PacketPool()
    first = pool.acquire(1, 0, 3, 5, 1500, PacketKind.DATA)
    _dirty(first)
    pool.release(first)
    recycled = pool.acquire(
        2, 1, 2, 0, 1500, PacketKind.DATA, path_id=1, priority=PRIO_LOW
    )
    assert recycled is first  # actually reused, not a fresh allocation
    fresh = Packet(2, 1, 2, 0, 1500, PacketKind.DATA, path_id=1)
    assert _packet_fields(recycled) == _packet_fields(fresh)


def test_pool_counters_track_lifecycle():
    pool = PacketPool()
    a = pool.acquire(1, 0, 1, 0, 1500, PacketKind.DATA)
    pool.release(a)
    pool.acquire(1, 0, 1, 1, 1500, PacketKind.DATA)
    stats = pool.stats()
    assert stats == {"allocated": 1, "reused": 1, "released": 1, "free": 0}


def test_pooled_ack_matches_make_ack():
    pool = PacketPool()
    data = Packet(4, 0, 3, 17, 1500, PacketKind.DATA, path_id=1)
    data.ce = True
    data.ts_echo = 42_000
    data.is_retx = True
    data.conga_metric = 5
    pooled = pool.ack(data, ack_seq=18, now=50_000)
    plain = make_ack(data, ack_seq=18, now=50_000)
    assert _packet_fields(pooled) == _packet_fields(plain)
    assert pooled.size == ACK_BYTES and pooled.priority == PRIO_HIGH


def test_pooled_probe_and_reply_match_builders():
    pool = PacketPool()
    pooled = pool.probe(9, 0, 3, 1, now=77_000)
    plain = make_probe(9, 0, 3, 1, now=77_000)
    assert _packet_fields(pooled) == _packet_fields(plain)
    pooled.ce = True  # marked in the fabric
    assert _packet_fields(pool.probe_reply(pooled)) == _packet_fields(
        make_probe_reply(pooled)
    )


def test_clone_packet_snapshots_fields_without_route():
    original = Packet(4, 0, 3, 17, 1500, PacketKind.DATA, path_id=1)
    _dirty(original)
    copy = clone_packet(original)
    assert copy is not original
    # Same wire-visible state...
    for name in Packet.__slots__:
        if name in ("route", "hop"):
            continue
        assert getattr(copy, name) == getattr(original, name), name
    # ...but no pinned route: the clone is a snapshot, not a live packet.
    assert copy.route == () and copy.hop == 0


# --------------------------------------------------------------------- #
# Release gating under hooks
# --------------------------------------------------------------------- #


def test_fast_path_flags_follow_hook_lifecycle():
    fabric = make_fabric()

    class _Tracer:
        def on_send(self, packet):
            pass

        def on_forward(self, packet):
            pass

        def on_flow_start(self, flow):
            pass

        def on_flow_finish(self, flow):
            pass

    ports = fabric.topology.all_ports()
    assert fabric._fast and all(not p._guarded for p in ports)
    fabric.hooks.attach(tracer=_Tracer())
    assert not fabric._fast and all(p._guarded for p in ports)
    fabric.hooks.detach(tracer=True)
    assert fabric._fast and all(not p._guarded for p in ports)


def test_drop_predicates_toggle_port_guard():
    fabric = make_fabric()
    port = fabric.topology.all_ports()[0]
    assert not port._guarded
    predicate = lambda packet, now: False
    port.drop_predicates.append(predicate)
    assert port._guarded
    port.drop_predicates.remove(predicate)
    assert not port._guarded


def test_recycling_happens_on_fast_path_runs():
    config = dataclasses.replace(
        golden.golden_configs()[0], validate=False, trace=False
    )
    result = run_experiment(config)
    stats = result.fabric.packet_pool.stats()
    assert stats["released"] > 0
    assert stats["reused"] > 0
    # Steady state: allocations are a small fraction of total traffic.
    assert stats["reused"] > stats["allocated"]


def test_recycling_suspended_under_validation():
    config = dataclasses.replace(golden.golden_configs()[0], validate=True)
    result = run_experiment(config)
    stats = result.fabric.packet_pool.stats()
    # The checker tracks packets by identity, so nothing may be released
    # back for reuse while it is attached.
    assert stats["released"] == 0
    assert stats["reused"] == 0


# --------------------------------------------------------------------- #
# Event pooling
# --------------------------------------------------------------------- #


def test_schedule_pooled_preserves_dispatch_order():
    def workload(sim, pooled):
        order = []
        schedule = sim.schedule_pooled if pooled else sim.schedule
        for i in range(500):
            schedule((i * 131) % 977, order.append, i)
        sim.run()
        return order

    for engine in (Simulator, WheelSimulator):
        assert workload(engine(), True) == workload(engine(), False)


def test_fired_pooled_events_are_reused():
    for engine in (Simulator, WheelSimulator):
        sim = engine()
        for i in range(100):
            sim.schedule_pooled(i * 10, lambda: None)
        sim.run()
        assert len(sim._event_pool) == 100
        sim.schedule_pooled(5, lambda: None)
        assert len(sim._event_pool) == 99  # served from the free list


def test_rearmed_pooled_event_is_not_recycled():
    """A callback that re-arms its own event (the retained-handle timer
    pattern) must keep ownership — the seq snapshot detects the re-arm."""
    for engine in (Simulator, WheelSimulator):
        sim = engine()
        fires = []
        event = sim.schedule_pooled(10, lambda: None)

        def tick():
            fires.append(sim.now)
            if len(fires) < 5:
                sim.reschedule(event, 10)

        event.fn = tick
        sim.run()
        assert fires == [10, 20, 30, 40, 50]
        # Only after the final (non-re-armed) fire may it hit the pool.
        assert sim._event_pool == [event]


def test_cancelled_pooled_event_recycles_via_heap_skip():
    sim = Simulator()
    sim.schedule_pooled(10, lambda: None).cancel()
    live = sim.schedule(20, lambda: None)
    assert sim.run() == 1
    assert not live.cancelled
    assert len(sim._event_pool) == 1
