"""The always-on experiment service: queue, pool, HTTP API, SSE.

The centrepiece is the crash e2e: a job whose cell deterministically
kills its worker *process* (``REPRO_TEST_CRASH_SEED``) must still
complete — the grid runner restarts its pool, falls back to serial, and
the service's ``/healthz`` stays green throughout.  Around it: queue
backpressure and dedup, the job lifecycle state machine, worker-thread
respawn, and the SSE stream delivering job lifecycle + telemetry
events.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import bench_topology
from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    ExperimentService,
    JobQueue,
    JobTable,
    QueueFull,
    ServiceClient,
    ServiceError,
)
from repro.serve.state import InvalidTransition, UnknownJob

TOPO = bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2)


def _config(seed=1, load=0.5, n_flows=10):
    return ExperimentConfig(
        topology=TOPO,
        lb="ecmp",
        load=load,
        n_flows=n_flows,
        seed=seed,
        size_scale=0.05,
        time_scale=0.05,
    )


@pytest.fixture
def service():
    svc = ExperimentService(n_workers=1, queue_capacity=4, use_cache=False)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def http_service(service):
    httpd = service.start_http(port=0)
    port = httpd.server_address[1]
    yield service, ServiceClient(f"http://127.0.0.1:{port}", timeout_s=30.0)


class TestJobTable:
    def test_lifecycle_happy_path(self):
        table = JobTable()
        job = table.new_job([_config()], job_key="k")
        assert job.state == QUEUED
        table.transition(job.job_id, RUNNING)
        table.transition(job.job_id, DONE, results=[])
        final = table.get(job.job_id)
        assert final.state == DONE
        assert final.started_s is not None
        assert final.finished_s is not None

    def test_illegal_transitions_rejected(self):
        table = JobTable()
        job = table.new_job([_config()], job_key="k")
        with pytest.raises(InvalidTransition):
            table.transition(job.job_id, DONE)  # queued -> done skips running
        table.transition(job.job_id, RUNNING)
        with pytest.raises(InvalidTransition):
            table.transition(job.job_id, QUEUED)
        table.transition(job.job_id, FAILED, error="boom")
        with pytest.raises(InvalidTransition):
            table.transition(job.job_id, RUNNING)  # terminal is terminal

    def test_unknown_job(self):
        with pytest.raises(UnknownJob):
            JobTable().get("job-999999")


class TestJobQueue:
    def test_backpressure_rejects_past_capacity(self):
        table = JobTable()
        queue = JobQueue(table, capacity=2)
        queue.submit([_config(seed=1)])
        queue.submit([_config(seed=2)])
        with pytest.raises(QueueFull, match="capacity"):
            queue.submit([_config(seed=3)])
        # Draining one slot reopens the door.
        assert queue.pop(timeout=0.1) is not None
        queue.submit([_config(seed=3)])

    def test_priority_order_fifo_within(self):
        table = JobTable()
        queue = JobQueue(table, capacity=10)
        low1 = queue.submit([_config(seed=1)], priority=0).job.job_id
        high = queue.submit([_config(seed=2)], priority=5).job.job_id
        low2 = queue.submit([_config(seed=3)], priority=0).job.job_id
        assert queue.pop(timeout=0.1) == high
        assert queue.pop(timeout=0.1) == low1
        assert queue.pop(timeout=0.1) == low2

    def test_dedup_joins_live_job(self):
        table = JobTable()
        queue = JobQueue(table, capacity=10)
        first = queue.submit([_config(seed=1)])
        second = queue.submit([_config(seed=1)])
        assert not first.deduplicated
        assert second.deduplicated
        assert second.job.job_id == first.job.job_id
        assert queue.depth == 1
        # A genuinely different grid is new work.
        third = queue.submit([_config(seed=2)])
        assert not third.deduplicated

    def test_dedup_returns_finished_job(self):
        table = JobTable()
        queue = JobQueue(table, capacity=10)
        first = queue.submit([_config(seed=1)])
        queue.pop(timeout=0.1)
        table.transition(first.job.job_id, RUNNING)
        table.transition(first.job.job_id, DONE, results=[])
        again = queue.submit([_config(seed=1)])
        assert again.deduplicated
        assert again.job.job_id == first.job.job_id
        assert queue.depth == 0

    def test_cancel_queued_only(self):
        table = JobTable()
        queue = JobQueue(table, capacity=10)
        job_id = queue.submit([_config(seed=1)]).job.job_id
        assert queue.cancel(job_id)
        assert table.get(job_id).state == "cancelled"
        running_id = queue.submit([_config(seed=2)]).job.job_id
        queue.pop(timeout=0.1)
        assert not queue.cancel(running_id)


class TestServiceInProcess:
    def test_submit_runs_to_done(self, service):
        submission = service.submit(
            [_config(seed=1), _config(seed=2)], jobs_per_cell=1
        )
        status = service.wait(submission.job.job_id, timeout_s=60.0)
        assert status["state"] == DONE
        results = service.result(submission.job.job_id)
        assert len(results) == 2
        assert all(r.error is None for r in results)
        assert results[0].stats.count == 10

    def test_result_before_done_raises(self, service):
        submission = service.submit([_config(seed=1)], jobs_per_cell=1)
        try:
            service.result(submission.job.job_id)
        except RuntimeError:
            pass  # still queued/running — expected when we beat the worker
        service.wait(submission.job.job_id, timeout_s=60.0)

    def test_worker_thread_respawn(self, service):
        """A dead worker thread is respawned by the health probe —
        restart-on-crash at the pool layer."""
        corpse = threading.Thread(target=lambda: None)
        corpse.start()
        corpse.join()
        with service.pool._lock:
            service.pool._threads[0] = corpse
        health = service.health()
        assert health["ok"]
        assert health["workers_alive"] == 1
        assert health["worker_restarts"] == 1
        # And the respawned worker actually works.
        submission = service.submit([_config(seed=3)], jobs_per_cell=1)
        assert service.wait(submission.job.job_id, timeout_s=60.0)["state"] == DONE


class TestCrashTolerance:
    def test_job_survives_worker_process_crash(self, service, monkeypatch):
        """The e2e acceptance: a cell that kills its worker process on
        every pool attempt still completes (pool restart, then serial
        fallback), the job reports done, and healthz stays green."""
        monkeypatch.setenv("REPRO_TEST_CRASH_SEED", "1")
        submission = service.submit(
            [_config(seed=1), _config(seed=2)], jobs_per_cell=2
        )
        status = service.wait(submission.job.job_id, timeout_s=120.0)
        assert status["state"] == DONE, status
        results = service.result(submission.job.job_id)
        assert [r.config.seed for r in results] == [1, 2]
        assert all(r.error is None for r in results)
        assert all(r.stats.finished_count > 0 for r in results)
        assert service.health()["ok"]

    def test_failed_job_is_bulkheaded(self, service):
        """A job that raises inside run_cells marks itself failed; the
        worker thread survives to run the next job."""
        bad = _config(seed=1)
        object.__setattr__(bad, "n_flows", 0)  # invalid at run time
        submission = service.submit([bad], jobs_per_cell=1)
        status = service.wait(submission.job.job_id, timeout_s=60.0)
        assert status["state"] == FAILED
        assert status["error"]
        follow_up = service.submit([_config(seed=2)], jobs_per_cell=1)
        assert (
            service.wait(follow_up.job.job_id, timeout_s=60.0)["state"] == DONE
        )


class TestHttpApi:
    def test_submit_status_result_roundtrip(self, http_service):
        service, client = http_service
        job = client.submit([_config(seed=1)], jobs_per_cell=1)
        assert job["state"] == QUEUED
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["state"] == DONE
        result = client.result(job["job_id"])
        assert len(result["cells"]) == 1
        cell = result["cells"][0]
        assert cell["flows"]["total"] == 10
        assert cell["percentile_estimators"]["p99"] == "exact"
        assert any(j["job_id"] == job["job_id"] for j in client.jobs())

    def test_dedup_over_http(self, http_service):
        _, client = http_service
        first = client.submit([_config(seed=1)], jobs_per_cell=1)
        client.wait(first["job_id"], timeout_s=60.0)
        second = client.submit([_config(seed=1)], jobs_per_cell=1)
        assert second["deduplicated"]
        assert second["job_id"] == first["job_id"]

    def test_backpressure_is_429(self, http_service, monkeypatch):
        from repro.serve import BackpressureError

        service, client = http_service
        # Wedge the single worker on a sleeping cell, then overfill.
        monkeypatch.setenv("REPRO_TEST_SLEEP", "901:3")
        client.submit([_config(seed=901), _config(seed=902)], jobs_per_cell=2)
        with pytest.raises(BackpressureError) as excinfo:
            for seed in range(903, 903 + 8):
                client.submit([_config(seed=seed)], jobs_per_cell=1)
        assert excinfo.value.status == 429

    def test_unknown_job_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-424242")
        assert excinfo.value.status == 404

    def test_healthz_and_metrics(self, http_service):
        _, client = http_service
        health = client.healthz()
        assert health["ok"]
        assert health["workers_alive"] >= 1
        metrics = client.metrics()
        assert "jobs" in metrics
        assert metrics["queue_depth"] >= 0

    def test_sse_delivers_lifecycle_and_telemetry(self, http_service):
        """The SSE acceptance: a watched job's stream carries its
        lifecycle transitions and per-cell telemetry events, then ends
        when the job does."""
        service, client = http_service
        events = []
        started = threading.Event()

        def listen():
            # Unfiltered subscription must exist before the submit so
            # the 'submitted' event is not lost.
            for event in client.events(timeout_s=30.0):
                events.append(event)
                if event.get("kind") == "job" and event.get("state") in (
                    DONE,
                    FAILED,
                ):
                    return

        listener = threading.Thread(target=listen, daemon=True)
        listener.start()
        time.sleep(0.3)  # let the subscription attach
        job = client.submit([_config(seed=11)], jobs_per_cell=1)
        client.wait(job["job_id"], timeout_s=60.0)
        listener.join(timeout=30.0)
        assert not listener.is_alive()
        kinds = {(e.get("kind"), e.get("event")) for e in events}
        assert ("job", "submitted") in kinds
        assert ("job", RUNNING) in kinds
        assert ("job", DONE) in kinds
        assert ("telemetry", "cell") in kinds
        cell = next(e for e in events if e.get("kind") == "telemetry")
        assert cell["job_id"] == job["job_id"]
        assert cell["mean_fct_ms"] is not None
